//! # nlft — node-level fault tolerance for distributed real-time systems
//!
//! A from-scratch Rust reproduction of *“A Framework for Node-Level Fault
//! Tolerance in Distributed Real-time Systems”* (Aidemark, Folkesson,
//! Karlsson — DSN 2005): light-weight node-level fault tolerance (NLFT)
//! masks transient faults *inside* each node by temporal error masking
//! (TEM — run critical tasks twice, compare, recover with a third copy and
//! a majority vote), so the distributed system only ever sees well-behaved
//! omission or fail-silent failures.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`sim`] — deterministic discrete-event substrate (clock, events, RNG
//!   streams, statistics).
//! * [`machine`] — a simulated COTS processor (TM32) with the hardware
//!   error-detection mechanisms of the paper's Table 1 and a seedable
//!   fault injector.
//! * [`kernel`] — the real-time kernel: fixed-priority scheduling, TEM,
//!   budget timers, data-integrity checks and fault-tolerant
//!   response-time analysis.
//! * [`net`] — time-triggered communication: TDMA/FlexRay-style bus,
//!   membership, duplex replication, state resynchronisation.
//! * [`core`] — the NLFT framework proper: node policies and
//!   fault-injection campaigns estimating `C_D`, `P_T`, `P_OM`, `P_FS`.
//! * [`engine`] — the fleet-scale campaign engine: a work-stealing trial
//!   executor with panic isolation, trial watchdogs, streaming statistics
//!   and checkpoint/resume, deterministic at any worker count.
//! * [`reliability`] — SHARPE-style analysis: Markov chains, reliability
//!   block diagrams, BDD fault trees, hierarchical composition.
//! * [`bbw`] — the brake-by-wire case study: the paper's analytic models
//!   (Figures 12–14), a Monte-Carlo cross-validation and an executable
//!   six-node cluster.
//!
//! # Examples
//!
//! Mask a transient CPU fault inside a brake controller:
//!
//! ```
//! use nlft::kernel::tem::{InjectionPlan, TemConfig, TemExecutor};
//! use nlft::machine::fault::{FaultTarget, TransientFault};
//! use nlft::machine::workloads;
//!
//! let pid = workloads::pid_controller();
//! let (_, wcet) = pid.golden_run(&[1000, 900]);
//! let tem = TemExecutor::new(TemConfig::with_budget(wcet * 2));
//! let mut machine = pid.instantiate();
//! let plan = InjectionPlan {
//!     copy: 1,
//!     at_cycle: 4,
//!     fault: TransientFault { target: FaultTarget::Sp, mask: 1 << 14 },
//! };
//! let report = tem.run_job(&mut machine, &pid, &[1000, 900], Some(plan));
//! assert!(report.outcome.delivered());
//! ```
//!
//! Reproduce the paper's headline dependability result:
//!
//! ```
//! use nlft::bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
//! use nlft::bbw::params::BbwParams;
//! use nlft::reliability::model::ReliabilityModel;
//!
//! let p = BbwParams::paper();
//! let fs = BbwSystem::new(&p, Policy::FailSilent, Functionality::Degraded);
//! let nlft = BbwSystem::new(&p, Policy::Nlft, Functionality::Degraded);
//! assert!(nlft.reliability(HOURS_PER_YEAR) > 1.4 * fs.reliability(HOURS_PER_YEAR));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nlft_bbw as bbw;
pub use nlft_core as core;
pub use nlft_engine as engine;
pub use nlft_kernel as kernel;
pub use nlft_machine as machine;
pub use nlft_net as net;
pub use nlft_reliability as reliability;
pub use nlft_sim as sim;
