//! Property-based tests for the discrete-event substrate.

use nlft_sim::event::EventQueue;
use nlft_sim::rng::RngStream;
use nlft_sim::stats::{OnlineStats, Proportion, SurvivalCurve};
use nlft_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always come out sorted by time regardless of insertion order.
    #[test]
    fn event_queue_emits_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i).unwrap();
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Equal timestamps preserve insertion (FIFO) order.
    #[test]
    fn event_queue_fifo_on_ties(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_nanos(t), i).unwrap();
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation_subset(
        times in prop::collection::vec(0u64..10_000, 1..100),
        mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_nanos(t), i).unwrap()))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in &ids {
            if mask[*i % mask.len()] {
                q.cancel(*id);
            } else {
                kept.push(*i);
            }
        }
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        seen.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(seen, kept);
    }

    /// Forked streams reproduce exactly for equal (seed, label).
    #[test]
    fn rng_fork_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let mut a = RngStream::new(seed).fork(&label);
        let mut b = RngStream::new(seed).fork(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Exponential draws are strictly positive and finite for any sane rate.
    #[test]
    fn rng_exponential_positive(seed in any::<u64>(), rate in 1e-9f64..1e9) {
        let mut s = RngStream::new(seed);
        for _ in 0..64 {
            let x = s.exponential(rate);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    /// Online statistics merge is equivalent to sequential accumulation.
    #[test]
    fn stats_merge_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.record(x); }
        let mut l = OnlineStats::new();
        let mut r = OnlineStats::new();
        for &x in &xs[..split] { l.record(x); }
        for &x in &xs[split..] { r.record(x); }
        l.merge(&r);
        prop_assert_eq!(l.count(), whole.count());
        if !xs.is_empty() {
            prop_assert!((l.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!(
                (l.sample_variance() - whole.sample_variance()).abs()
                    <= 1e-6 * (1.0 + whole.sample_variance())
            );
        }
    }

    /// Wilson intervals always contain the point estimate and stay in [0,1].
    #[test]
    fn wilson_contains_estimate(s in 0u64..500, extra in 0u64..500) {
        let p = Proportion::from_counts(s, s + extra.max(1));
        let (lo, hi) = p.wilson_interval(Default::default());
        prop_assert!(lo <= p.estimate() + 1e-12);
        prop_assert!(hi >= p.estimate() - 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
    }

    /// Reliability curves are non-increasing in time.
    #[test]
    fn survival_curve_monotone(
        failures in prop::collection::vec(0.0f64..100.0, 0..100),
        survivors in 0u64..50,
    ) {
        let mut c = SurvivalCurve::new(vec![10.0, 25.0, 50.0, 75.0, 99.0]);
        for &t in &failures { c.record_failure(t); }
        for _ in 0..survivors { c.record_survivor(); }
        let r = c.reliability();
        for w in r.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for v in r {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// SimDuration::div_ceil agrees with a f64 ceiling computation.
    #[test]
    fn div_ceil_matches_float(r in 1u64..1_000_000, t in 1u64..1_000_000) {
        let d = SimDuration::from_nanos(r).div_ceil(SimDuration::from_nanos(t));
        let expect = (r as f64 / t as f64).ceil() as u64;
        prop_assert_eq!(d, expect);
    }
}
