//! Property-based tests for the discrete-event substrate.

use nlft_sim::event::EventQueue;
use nlft_sim::rng::RngStream;
use nlft_sim::stats::{OnlineStats, Proportion, SurvivalCurve};
use nlft_sim::time::{SimDuration, SimTime};
use nlft_testkit::prop::{gens, Suite};
use nlft_testkit::rng::TkRng;
use nlft_testkit::{prop_assert, prop_assert_eq};

const SUITE: Suite = Suite::new(0x5EED_0051);

/// Events always come out sorted by time regardless of insertion order.
#[test]
fn event_queue_emits_sorted() {
    SUITE.check(
        "event_queue_emits_sorted",
        gens::vec(|r| r.range(0, 1_000_000), 1..200),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i).unwrap();
            }
            let mut last = SimTime::ZERO;
            let mut popped = 0usize;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
            Ok(())
        },
    );
}

/// Equal timestamps preserve insertion (FIFO) order.
#[test]
fn event_queue_fifo_on_ties() {
    SUITE.check(
        "event_queue_fifo_on_ties",
        |r: &mut TkRng| (r.usize_range(1, 100), r.range(0, 1000)),
        |&(n, t)| {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime::from_nanos(t), i).unwrap();
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
            Ok(())
        },
    );
}

/// Cancelling an arbitrary subset removes exactly that subset.
#[test]
fn event_queue_cancellation_subset() {
    SUITE.check(
        "event_queue_cancellation_subset",
        {
            let mut times = gens::vec(|r| r.range(0, 10_000), 1..100);
            let mut mask = gens::vec(|r| r.bool(), 100..101);
            move |r: &mut TkRng| (times(r), mask(r))
        },
        |(times, mask)| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (i, q.schedule(SimTime::from_nanos(t), i).unwrap()))
                .collect();
            let mut kept = Vec::new();
            for (i, id) in &ids {
                if mask[*i % mask.len()] {
                    q.cancel(*id);
                } else {
                    kept.push(*i);
                }
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            kept.sort_unstable();
            prop_assert_eq!(seen, kept);
            Ok(())
        },
    );
}

/// Forked streams reproduce exactly for equal (seed, label).
#[test]
fn rng_fork_reproducible() {
    SUITE.check(
        "rng_fork_reproducible",
        {
            let mut label = gens::string_from("abcdefghijklmnopqrstuvwxyz", 1..13);
            move |r: &mut TkRng| (r.next_u64(), label(r))
        },
        |(seed, label)| {
            let mut a = RngStream::new(*seed).fork(label);
            let mut b = RngStream::new(*seed).fork(label);
            for _ in 0..16 {
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }
            Ok(())
        },
    );
}

/// Exponential draws are strictly positive and finite for any sane rate.
#[test]
fn rng_exponential_positive() {
    SUITE.check(
        "rng_exponential_positive",
        |r: &mut TkRng| (r.next_u64(), r.f64_range(1e-9, 1e9)),
        |&(seed, rate)| {
            let mut s = RngStream::new(seed);
            for _ in 0..64 {
                let x = s.exponential(rate);
                prop_assert!(x > 0.0 && x.is_finite());
            }
            Ok(())
        },
    );
}

/// Online statistics merge is equivalent to sequential accumulation.
#[test]
fn stats_merge_associative() {
    SUITE.check(
        "stats_merge_associative",
        {
            let mut xs = gens::vec(|r| r.f64_range(-1e6, 1e6), 0..200);
            move |r: &mut TkRng| (xs(r), r.usize_range(0, 200))
        },
        |(xs, split)| {
            let split = (*split).min(xs.len());
            let mut whole = OnlineStats::new();
            for &x in xs {
                whole.record(x);
            }
            let mut l = OnlineStats::new();
            let mut r = OnlineStats::new();
            for &x in &xs[..split] {
                l.record(x);
            }
            for &x in &xs[split..] {
                r.record(x);
            }
            l.merge(&r);
            prop_assert_eq!(l.count(), whole.count());
            if !xs.is_empty() {
                prop_assert!((l.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
                prop_assert!(
                    (l.sample_variance() - whole.sample_variance()).abs()
                        <= 1e-6 * (1.0 + whole.sample_variance())
                );
            }
            Ok(())
        },
    );
}

/// Wilson intervals always contain the point estimate and stay in [0,1].
#[test]
fn wilson_contains_estimate() {
    SUITE.check(
        "wilson_contains_estimate",
        |r: &mut TkRng| (r.range(0, 500), r.range(0, 500)),
        |&(s, extra)| {
            let p = Proportion::from_counts(s, s + extra.max(1));
            let (lo, hi) = p.wilson_interval(Default::default());
            prop_assert!(lo <= p.estimate() + 1e-12);
            prop_assert!(hi >= p.estimate() - 1e-12);
            prop_assert!((0.0..=1.0).contains(&lo));
            prop_assert!((0.0..=1.0).contains(&hi));
            Ok(())
        },
    );
}

/// Reliability curves are non-increasing in time.
#[test]
fn survival_curve_monotone() {
    SUITE.check(
        "survival_curve_monotone",
        {
            let mut failures = gens::vec(|r| r.f64_range(0.0, 100.0), 0..100);
            move |r: &mut TkRng| (failures(r), r.range(0, 50))
        },
        |(failures, survivors)| {
            let mut c = SurvivalCurve::new(vec![10.0, 25.0, 50.0, 75.0, 99.0]);
            for &t in failures {
                c.record_failure(t);
            }
            for _ in 0..*survivors {
                c.record_survivor();
            }
            let r = c.reliability();
            for w in r.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
            for v in r {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            Ok(())
        },
    );
}

/// SimDuration::div_ceil agrees with a f64 ceiling computation.
#[test]
fn div_ceil_matches_float() {
    SUITE.check(
        "div_ceil_matches_float",
        |r: &mut TkRng| (r.range(1, 1_000_000), r.range(1, 1_000_000)),
        |&(r, t)| {
            let d = SimDuration::from_nanos(r).div_ceil(SimDuration::from_nanos(t));
            let expect = (r as f64 / t as f64).ceil() as u64;
            prop_assert_eq!(d, expect);
            Ok(())
        },
    );
}
