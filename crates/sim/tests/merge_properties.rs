//! Merge-algebra property suite for the four `sim::stats` accumulators.
//!
//! The campaign engine folds per-trial accumulators into block partials
//! and block partials into the campaign total, so its determinism
//! guarantee rests on two algebraic facts checked here across 10 000
//! random cases (8 properties × 1 250 cases each):
//!
//! * **merge associativity** — `(a ⊕ b) ⊕ c` equals `a ⊕ (b ⊕ c)`;
//! * **shard-split invariance** — recording a stream sequentially equals
//!   splitting it at arbitrary cut points (empty shards included) and
//!   merging the shard accumulators in order.
//!
//! Counters are compared bit-for-bit; `OnlineStats` moments (mean, M2)
//! are compared to 1e-9 relative tolerance since float addition is only
//! approximately associative.

use nlft_sim::stats::{Histogram, OnlineStats, Proportion, SurvivalCurve};
use nlft_testkit::prop::Suite;
use nlft_testkit::rng::TkRng;
use nlft_testkit::{prop_assert, prop_assert_eq};

const SUITE: Suite = Suite::new(0x10E6_A16E).cases(1250);

/// Random sample stream spanning the histogram range plus both flows.
fn samples(r: &mut TkRng, max_len: usize) -> Vec<f64> {
    let n = r.usize_range(0, max_len + 1);
    (0..n).map(|_| r.f64_range(-25.0, 125.0)).collect()
}

/// A stream plus sorted cut points (duplicates allowed, so empty shards
/// occur and the empty-merge identity is exercised).
fn split_case(r: &mut TkRng) -> (Vec<f64>, Vec<usize>) {
    let xs = samples(r, 240);
    let k = r.usize_range(0, 9);
    let mut cuts: Vec<usize> = (0..k).map(|_| r.usize_range(0, xs.len() + 1)).collect();
    cuts.sort_unstable();
    (xs, cuts)
}

/// Three independent streams for the associativity triple.
fn triple_case(r: &mut TkRng) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    (samples(r, 80), samples(r, 80), samples(r, 80))
}

fn shards<'a>(xs: &'a [f64], cuts: &[usize]) -> Vec<&'a [f64]> {
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut prev = 0;
    for &c in cuts {
        out.push(&xs[prev..c]);
        prev = c;
    }
    out.push(&xs[prev..]);
    out
}

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn online(xs: &[f64]) -> OnlineStats {
    let mut s = OnlineStats::new();
    for &x in xs {
        s.record(x);
    }
    s
}

fn proportion(xs: &[f64]) -> Proportion {
    let mut p = Proportion::new();
    for &x in xs {
        p.record(x < 40.0);
    }
    p
}

fn histogram(xs: &[f64]) -> Histogram {
    let mut h = Histogram::new(0.0, 100.0, 16);
    for &x in xs {
        h.record(x);
    }
    h
}

fn survival(xs: &[f64]) -> SurvivalCurve {
    let mut c = SurvivalCurve::new(vec![10.0, 30.0, 60.0, 90.0]);
    for &x in xs {
        if x < 100.0 {
            c.record_failure(x);
        } else {
            c.record_survivor();
        }
    }
    c
}

/// Counters of two `OnlineStats` are bit-identical and moments agree to
/// 1e-9 relative tolerance.
fn online_agree(l: &OnlineStats, r: &OnlineStats) -> Result<(), String> {
    let (lc, lmean, lm2, lmin, lmax) = l.to_raw();
    let (rc, rmean, rm2, rmin, rmax) = r.to_raw();
    if lc != rc {
        return Err(format!("count {lc} != {rc}"));
    }
    if lc > 0 && (lmin.to_bits() != rmin.to_bits() || lmax.to_bits() != rmax.to_bits()) {
        return Err(format!("extrema ({lmin}, {lmax}) != ({rmin}, {rmax})"));
    }
    if !(rel_close(lmean, rmean) && rel_close(lm2, rm2)) {
        return Err(format!("moments ({lmean}, {lm2}) != ({rmean}, {rm2})"));
    }
    Ok(())
}

#[test]
fn online_stats_merge_is_associative() {
    SUITE.check(
        "online_stats_merge_is_associative",
        triple_case,
        |(a, b, c)| {
            let mut left = online(a);
            left.merge(&online(b));
            left.merge(&online(c));
            let mut bc = online(b);
            bc.merge(&online(c));
            let mut right = online(a);
            right.merge(&bc);
            if let Err(msg) = online_agree(&left, &right) {
                prop_assert!(false, "associativity violated: {msg}");
            }
            Ok(())
        },
    );
}

#[test]
fn online_stats_is_shard_split_invariant() {
    SUITE.check(
        "online_stats_is_shard_split_invariant",
        split_case,
        |(xs, cuts)| {
            let sequential = online(xs);
            let mut merged = OnlineStats::new();
            for shard in shards(xs, cuts) {
                merged.merge(&online(shard));
            }
            if let Err(msg) = online_agree(&sequential, &merged) {
                prop_assert!(false, "shard split changed the result: {msg}");
            }
            Ok(())
        },
    );
}

#[test]
fn proportion_merge_is_associative_bitwise() {
    SUITE.check(
        "proportion_merge_is_associative_bitwise",
        triple_case,
        |(a, b, c)| {
            let mut left = proportion(a);
            left.merge(&proportion(b));
            left.merge(&proportion(c));
            let mut bc = proportion(b);
            bc.merge(&proportion(c));
            let mut right = proportion(a);
            right.merge(&bc);
            prop_assert_eq!(left, right);
            Ok(())
        },
    );
}

#[test]
fn proportion_is_shard_split_invariant_bitwise() {
    SUITE.check(
        "proportion_is_shard_split_invariant_bitwise",
        split_case,
        |(xs, cuts)| {
            let sequential = proportion(xs);
            let mut merged = Proportion::new();
            for shard in shards(xs, cuts) {
                merged.merge(&proportion(shard));
            }
            prop_assert_eq!(sequential, merged);
            Ok(())
        },
    );
}

#[test]
fn histogram_merge_is_associative_bitwise() {
    SUITE.check(
        "histogram_merge_is_associative_bitwise",
        triple_case,
        |(a, b, c)| {
            let mut left = histogram(a);
            left.merge(&histogram(b));
            left.merge(&histogram(c));
            let mut bc = histogram(b);
            bc.merge(&histogram(c));
            let mut right = histogram(a);
            right.merge(&bc);
            prop_assert_eq!(left, right);
            Ok(())
        },
    );
}

#[test]
fn histogram_is_shard_split_invariant_bitwise() {
    SUITE.check(
        "histogram_is_shard_split_invariant_bitwise",
        split_case,
        |(xs, cuts)| {
            let sequential = histogram(xs);
            let mut merged = Histogram::new(0.0, 100.0, 16);
            for shard in shards(xs, cuts) {
                merged.merge(&histogram(shard));
            }
            prop_assert_eq!(sequential, merged);
            Ok(())
        },
    );
}

#[test]
fn survival_merge_is_associative_bitwise() {
    SUITE.check(
        "survival_merge_is_associative_bitwise",
        triple_case,
        |(a, b, c)| {
            let mut left = survival(a);
            left.merge(&survival(b));
            left.merge(&survival(c));
            let mut bc = survival(b);
            bc.merge(&survival(c));
            let mut right = survival(a);
            right.merge(&bc);
            prop_assert_eq!(left, right);
            Ok(())
        },
    );
}

#[test]
fn survival_is_shard_split_invariant_bitwise() {
    SUITE.check(
        "survival_is_shard_split_invariant_bitwise",
        split_case,
        |(xs, cuts)| {
            let sequential = survival(xs);
            let mut merged = SurvivalCurve::new(vec![10.0, 30.0, 60.0, 90.0]);
            for shard in shards(xs, cuts) {
                merged.merge(&survival(shard));
            }
            prop_assert_eq!(sequential, merged);
            Ok(())
        },
    );
}
