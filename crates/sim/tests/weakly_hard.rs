//! Property suite for the weakly-hard (m,k) window monitor.
//!
//! The monitor's O(1) ring-bitset update is checked against a naive
//! O(k) reference window on ten thousand random streams, plus the edge
//! cases a shift-register implementation classically gets wrong: k = 1,
//! m = k, all-miss streams, alternating streams, and outcome counters
//! far past 2³² (ring wraparound with a 64-bit counter).

use nlft_sim::weakly_hard::{WeaklyHard, WindowVerdict};
use nlft_testkit::prop::Suite;
use nlft_testkit::prop_assert_eq;
use nlft_testkit::rng::TkRng;
use std::collections::VecDeque;

const SUITE: Suite = Suite::new(0x5EED_A11D).cases(10_000);

/// The trusted O(k) reference: keep the last `k` outcomes verbatim and
/// recount on every record.
struct NaiveWindow {
    m: u32,
    k: usize,
    window: VecDeque<bool>,
    consecutive: u32,
    observed: u64,
}

impl NaiveWindow {
    fn new(m: u32, k: u32) -> Self {
        NaiveWindow {
            m,
            k: k as usize,
            window: VecDeque::new(),
            consecutive: 0,
            observed: 0,
        }
    }

    fn record(&mut self, miss: bool) -> WindowVerdict {
        if self.window.len() == self.k {
            self.window.pop_front();
        }
        self.window.push_back(miss);
        self.consecutive = if miss { self.consecutive + 1 } else { 0 };
        self.observed += 1;
        let misses = self.window.iter().filter(|&&b| b).count() as u32;
        WindowVerdict {
            violated: misses >= self.m,
            misses_in_window: misses,
            margin: self.m.saturating_sub(misses),
            consecutive_misses: self.consecutive,
        }
    }
}

/// Ten thousand random (m, k, stream) triples: the ring bitset agrees
/// with the naive reference on every single outcome. Window lengths
/// cross the 64-bit word boundary so multi-word rings are exercised.
#[test]
fn monitor_matches_naive_reference_on_random_streams() {
    SUITE.check(
        "monitor_matches_naive_reference_on_random_streams",
        |r: &mut TkRng| {
            let k = r.range(1, 131) as u32;
            let m = r.range(1, u64::from(k) + 1) as u32;
            let len = r.usize_range(0, 300);
            // Mix stream densities: mostly-hit, mostly-miss and fair.
            let miss_bias = [0.05, 0.5, 0.95][r.usize_range(0, 3)];
            let stream: Vec<bool> = (0..len).map(|_| r.f64() < miss_bias).collect();
            (m, k, stream)
        },
        |(m, k, stream)| {
            let mut fast = WeaklyHard::new(*m, *k);
            let mut naive = NaiveWindow::new(*m, *k);
            for &miss in stream {
                let got = fast.record(miss);
                let want = naive.record(miss);
                prop_assert_eq!(got, want);
                prop_assert_eq!(fast.verdict(), want);
                prop_assert_eq!(fast.observed(), naive.observed);
            }
            Ok(())
        },
    );
}

/// `record_hits(n)` is indistinguishable from `n` explicit hits, for
/// `n` below, at and above the window length.
#[test]
fn record_hits_is_equivalent_to_explicit_hits() {
    SUITE.check(
        "record_hits_is_equivalent_to_explicit_hits",
        |r: &mut TkRng| {
            let k = r.range(1, 100) as u32;
            let m = r.range(1, u64::from(k) + 1) as u32;
            let prefix = r.usize_range(0, 150);
            let hits = r.range(0, 2 * u64::from(k) + 3);
            let seed = r.next_u64();
            (m, k, prefix, hits, seed)
        },
        |&(m, k, prefix, hits, seed)| {
            let mut r = TkRng::new(seed);
            let mut fast = WeaklyHard::new(m, k);
            for _ in 0..prefix {
                fast.record(r.bool());
            }
            let mut explicit = fast.clone();
            fast.record_hits(hits);
            for _ in 0..hits {
                explicit.record(false);
            }
            prop_assert_eq!(&fast, &explicit);
            // Behaviour stays identical after the fast-forward.
            for _ in 0..k {
                let miss = r.bool();
                prop_assert_eq!(fast.record(miss), explicit.record(miss));
            }
            Ok(())
        },
    );
}

/// k = 1: the window is a single outcome — violated exactly on misses.
#[test]
fn window_of_one_tracks_the_latest_outcome() {
    let mut w = WeaklyHard::new(1, 1);
    for i in 0..100 {
        let miss = i % 3 != 0;
        let v = w.record(miss);
        assert_eq!(v.violated, miss);
        assert_eq!(v.misses_in_window, u32::from(miss));
        assert_eq!(v.margin, u32::from(!miss));
    }
}

/// m = k: only a fully missed window violates, and a single hit heals.
#[test]
fn m_equals_k_requires_an_all_miss_window() {
    for k in [1u32, 2, 7, 64, 65, 130] {
        let mut w = WeaklyHard::new(k, k);
        for i in 0..k {
            let v = w.record(true);
            assert_eq!(
                v.violated,
                i + 1 == k,
                "k={k}: violation only once every slot is a miss"
            );
            assert_eq!(v.consecutive_misses, i + 1);
        }
        assert!(
            w.record(false).margin == 1,
            "k={k}: one hit restores margin"
        );
        assert!(!w.is_violated());
    }
}

/// All-miss streams: the window fills, saturates at k misses and stays
/// violated forever after the m-th outcome.
#[test]
fn all_miss_stream_saturates_and_stays_violated() {
    let (m, k) = (3u32, 70u32);
    let mut w = WeaklyHard::new(m, k);
    for i in 1..=(3 * k) {
        let v = w.record(true);
        assert_eq!(v.misses_in_window, i.min(k));
        assert_eq!(v.violated, i >= m);
        assert_eq!(v.consecutive_misses, i);
    }
}

/// Alternating streams: a steady-state window holds exactly half its
/// slots as misses (rounded by phase), never more.
#[test]
fn alternating_stream_holds_half_the_window() {
    let k = 12u32;
    let mut w = WeaklyHard::new(7, k);
    for i in 0..1_000u32 {
        w.record(i % 2 == 0);
        if i >= k {
            assert_eq!(w.misses_in_window(), k / 2);
            assert!(!w.is_violated(), "6 of 12 never reaches the threshold 7");
        }
        assert!(w.consecutive_misses() <= 1);
    }
}

/// Streams far past 2³² outcomes: `record_hits` fast-forwards the
/// 64-bit counter beyond the 32-bit boundary and the ring arithmetic
/// keeps agreeing with the naive reference afterwards.
#[test]
fn wraparound_past_two_to_the_32_stays_exact() {
    for k in [1u32, 5, 64, 127] {
        let m = (k / 2).max(1);
        let mut fast = WeaklyHard::new(m, k);
        // A dirty prefix so the ring is mid-phase before the jump.
        let mut r = TkRng::new(0xB16_u64 ^ u64::from(k));
        for _ in 0..(k + 3) {
            fast.record(r.bool());
        }
        fast.record_hits(u64::from(u32::MAX) + 10);
        assert!(fast.observed() > u64::from(u32::MAX));
        assert_eq!(fast.misses_in_window(), 0, "window is clean after the jump");
        // From here the naive reference starts from an all-hit window.
        let mut naive = NaiveWindow::new(m, k);
        for _ in 0..k {
            naive.record(false);
        }
        for _ in 0..(4 * k) {
            let miss = r.bool();
            let got = fast.record(miss);
            let want = naive.record(miss);
            assert_eq!(
                (got.violated, got.misses_in_window, got.consecutive_misses),
                (
                    want.violated,
                    want.misses_in_window,
                    want.consecutive_misses
                ),
                "k={k}: divergence after the 2^32 wrap"
            );
        }
    }
}
