//! Simulation time types.
//!
//! All simulators in this workspace share a single discrete notion of time:
//! an unsigned number of *nanoseconds* since the start of the simulation.
//! Nanosecond resolution is fine enough for the instruction-level machine
//! simulator (which advances in cycles of a configurable nanosecond length)
//! while `u64` still spans more than 580 years of simulated time, which
//! comfortably covers the one-year reliability horizons used by the
//! Monte-Carlo dependability experiments.
//!
//! Two newtypes are provided ([C-NEWTYPE]): [`SimTime`] is a point on the
//! simulation clock and [`SimDuration`] is a length of simulated time.
//! Arithmetic between them mirrors `std::time::{Instant, Duration}`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulated time, measured in nanoseconds from simulation start.
///
/// # Examples
///
/// ```
/// use nlft_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use nlft_sim::time::SimDuration;
///
/// let d = SimDuration::from_micros(250) * 4;
/// assert_eq!(d, SimDuration::from_millis(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_HOUR: u64 = 3_600 * NANOS_PER_SEC;

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "never" sentinel by schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Raw nanosecond count since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Hours since simulation start as a float (used by reliability models).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_HOUR as f64
    }

    /// Creates a time from a floating-point number of hours.
    ///
    /// Saturates at [`SimTime::MAX`]; negative or NaN inputs map to zero.
    pub fn from_hours_f64(hours: f64) -> Self {
        let nanos = hours * NANOS_PER_HOUR as f64;
        if nanos.is_nan() || nanos <= 0.0 {
            SimTime::ZERO
        } else if nanos >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(nanos as u64)
        }
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * NANOS_PER_HOUR)
    }

    /// Creates a duration from a floating-point number of seconds.
    ///
    /// Saturates at [`SimDuration::MAX`]; negative or NaN inputs map to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        let nanos = secs * NANOS_PER_SEC as f64;
        if nanos.is_nan() || nanos <= 0.0 {
            SimDuration::ZERO
        } else if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// Creates a duration from a floating-point number of hours.
    ///
    /// Saturates like [`SimDuration::from_secs_f64`].
    pub fn from_hours_f64(hours: f64) -> Self {
        SimDuration::from_secs_f64(hours * 3_600.0)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Hours as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_HOUR as f64
    }

    /// `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    pub fn checked_mul(self, k: u64) -> Option<SimDuration> {
        self.0.checked_mul(k).map(SimDuration)
    }

    /// Integer ceiling division: how many intervals of `other` cover `self`.
    ///
    /// This is the `⌈R/T⌉` operator of response-time analysis.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_ceil(self, other: SimDuration) -> u64 {
        assert!(!other.is_zero(), "division by zero duration");
        self.0.div_ceil(other.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Rem for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= NANOS_PER_SEC {
            write!(f, "{:.3}s", ns as f64 / NANOS_PER_SEC as f64)
        } else if ns >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", ns as f64 / NANOS_PER_MILLI as f64)
        } else if ns >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", ns as f64 / NANOS_PER_MICRO as f64)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_hours(2).as_secs_f64(), 7_200.0);
    }

    #[test]
    fn arithmetic_matches_std_conventions() {
        let t0 = SimTime::from_millis(10);
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1 - t0, SimDuration::from_millis(5));
        assert_eq!(t1 - SimDuration::from_millis(15), SimTime::ZERO);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn div_ceil_is_response_time_ceiling() {
        let r = SimDuration::from_micros(250);
        let t = SimDuration::from_micros(100);
        assert_eq!(r.div_ceil(t), 3);
        assert_eq!(SimDuration::from_micros(200).div_ceil(t), 2);
        assert_eq!(SimDuration::ZERO.div_ceil(t), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_ceil_rejects_zero_divisor() {
        let _ = SimDuration::from_micros(1).div_ceil(SimDuration::ZERO);
    }

    #[test]
    fn hours_round_trip_within_tolerance() {
        let t = SimTime::from_hours_f64(8_760.0); // one year
        assert!((t.as_hours_f64() - 8_760.0).abs() < 1e-6);
    }

    #[test]
    fn float_constructors_handle_pathological_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimTime::from_hours_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn display_picks_human_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn checked_ops_detect_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimDuration::MAX.checked_mul(2).is_none());
        assert_eq!(
            SimDuration::from_nanos(4).checked_mul(2),
            Some(SimDuration::from_nanos(8))
        );
    }
}
