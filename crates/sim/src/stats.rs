//! Online statistics for simulation output analysis.
//!
//! The Monte-Carlo dependability experiments need three things: running
//! moments with confidence intervals ([`OnlineStats`]), binomial proportion
//! intervals for pass/fail outcome counts ([`Proportion`]), and an empirical
//! survival-curve estimator for reliability-versus-time plots
//! ([`SurvivalCurve`]). A fixed-bin [`Histogram`] rounds out the toolkit for
//! latency-style distributions (e.g. recovery times).

use std::fmt;

/// Two-sided confidence level for interval estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Confidence {
    /// 90% two-sided interval (z = 1.6449).
    C90,
    /// 95% two-sided interval (z = 1.9600).
    #[default]
    C95,
    /// 99% two-sided interval (z = 2.5758).
    C99,
}

impl Confidence {
    /// The standard-normal quantile for the two-sided level.
    pub fn z(self) -> f64 {
        match self {
            Confidence::C90 => 1.644_853_626_951,
            Confidence::C95 => 1.959_963_984_540,
            Confidence::C99 => 2.575_829_303_549,
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Confidence::C90 => write!(f, "90%"),
            Confidence::C95 => write!(f, "95%"),
            Confidence::C99 => write!(f, "99%"),
        }
    }
}

/// Welford online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use nlft_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n-1` denominator); 0 with fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation half-width of the mean's confidence interval.
    pub fn ci_half_width(&self, level: Confidence) -> f64 {
        if self.count < 2 {
            return f64::INFINITY;
        }
        level.z() * self.std_dev() / (self.count as f64).sqrt()
    }

    /// Raw accumulator state `(count, mean, m2, min, max)`, for
    /// checkpoint serialisation. Round-trips exactly through
    /// [`OnlineStats::from_raw`].
    pub fn to_raw(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`OnlineStats::to_raw`] output.
    pub fn from_raw(raw: (u64, f64, f64, f64, f64)) -> Self {
        let (count, mean, m2, min, max) = raw;
        OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Binomial proportion estimate with Wilson score intervals.
///
/// Used for coverage/outcome probabilities estimated from fault-injection
/// campaigns (e.g. "90.3% of injected transients were masked").
///
/// # Examples
///
/// ```
/// use nlft_sim::stats::{Proportion, Confidence};
///
/// let mut p = Proportion::new();
/// for i in 0..1000 { p.record(i % 10 != 0); } // 90% successes
/// assert!((p.estimate() - 0.9).abs() < 1e-12);
/// let (lo, hi) = p.wilson_interval(Confidence::C95);
/// assert!(lo < 0.9 && 0.9 < hi);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

impl Proportion {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Proportion::default()
    }

    /// Creates a counter from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn from_counts(successes: u64, trials: u64) -> Self {
        assert!(successes <= trials, "successes exceed trials");
        Proportion { successes, trials }
    }

    /// Records one Bernoulli outcome.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of recorded successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Point estimate `successes / trials`; 0 when empty.
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wilson score interval — well behaved even at p near 0 or 1, where the
    /// naive normal interval collapses.
    pub fn wilson_interval(&self, level: Confidence) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.estimate();
        let z = level.z();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        ((centre - half).max(0.0), (centre + half).min(1.0))
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Proportion) {
        self.successes += other.successes;
        self.trials += other.trials;
    }
}

/// Fixed-width-bin histogram over `[low, high)` with overflow/underflow bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`, either bound is non-finite, or `bins == 0`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        assert!(low < high, "low must be below high");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let frac = (x - self.low) / (self.high - self.low);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bin counts (excludes under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower bound of the binned range.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper (exclusive) bound of the binned range.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Rebuilds a histogram from raw state (checkpoint deserialisation).
    ///
    /// # Panics
    ///
    /// Panics on an invalid grid (see [`Histogram::new`]) or if `count`
    /// does not equal the sum of all bins plus under/overflow.
    pub fn from_raw(
        low: f64,
        high: f64,
        bins: Vec<u64>,
        underflow: u64,
        overflow: u64,
        count: u64,
    ) -> Self {
        let mut h = Histogram::new(low, high, bins.len());
        let total = bins
            .iter()
            .fold(underflow.saturating_add(overflow), |t, &b| {
                t.saturating_add(b)
            });
        assert_eq!(total, count, "histogram count inconsistent with bins");
        h.bins = bins;
        h.underflow = underflow;
        h.overflow = overflow;
        h.count = count;
        h
    }

    /// Merges another histogram collected over the identical bin grid.
    ///
    /// All counters add saturating, so two near-full under/overflow
    /// counters degrade to `u64::MAX` instead of wrapping.
    ///
    /// # Panics
    ///
    /// Panics if the bin grids differ (bounds compared bit-for-bit,
    /// same bin count).
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.low.to_bits() == other.low.to_bits()
                && self.high.to_bits() == other.high.to_bits()
                && self.bins.len() == other.bins.len(),
            "histogram bin grids differ: [{}, {}) x{} vs [{}, {}) x{}",
            self.low,
            self.high,
            self.bins.len(),
            other.low,
            other.high,
            other.bins.len()
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a = a.saturating_add(*b);
        }
        self.underflow = self.underflow.saturating_add(other.underflow);
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.count = self.count.saturating_add(other.count);
    }

    /// Approximate quantile (0..=1) by linear walk over the bins.
    ///
    /// Returns `None` when empty. Under/overflow observations count toward
    /// the extreme bin boundaries.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.low);
        }
        let width = (self.high - self.low) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.low + width * (i as f64 + 1.0));
            }
        }
        Some(self.high)
    }
}

/// Empirical survival (reliability) curve from observed failure times.
///
/// For a fixed mission grid `t_1 < … < t_k`, each Monte-Carlo replication
/// contributes either its failure time or "survived past the horizon". The
/// estimator at `t_i` is then simply the fraction of replications that
/// survive beyond `t_i` — every replication is observed for the full
/// horizon, so no censoring corrections are needed.
///
/// # Examples
///
/// ```
/// use nlft_sim::stats::SurvivalCurve;
///
/// let mut c = SurvivalCurve::new(vec![1.0, 2.0, 3.0]);
/// c.record_failure(1.5);
/// c.record_survivor();
/// assert_eq!(c.reliability(), vec![1.0, 0.5, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalCurve {
    grid: Vec<f64>,
    /// survivors[i] = number of replications alive strictly beyond grid[i].
    survivors: Vec<u64>,
    replications: u64,
}

impl SurvivalCurve {
    /// Creates a curve evaluated at the given strictly increasing time grid.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or not strictly increasing.
    pub fn new(grid: Vec<f64>) -> Self {
        assert!(!grid.is_empty(), "grid must not be empty");
        assert!(
            grid.windows(2).all(|w| w[0] < w[1]),
            "grid must be strictly increasing"
        );
        let n = grid.len();
        SurvivalCurve {
            grid,
            survivors: vec![0; n],
            replications: 0,
        }
    }

    /// Records a replication that failed at time `t`.
    pub fn record_failure(&mut self, t: f64) {
        self.replications += 1;
        for (i, &g) in self.grid.iter().enumerate() {
            if t > g {
                self.survivors[i] += 1;
            }
        }
    }

    /// Records a replication that survived the whole horizon.
    pub fn record_survivor(&mut self) {
        self.replications += 1;
        for s in &mut self.survivors {
            *s += 1;
        }
    }

    /// The evaluation grid.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// Number of replications recorded.
    pub fn replications(&self) -> u64 {
        self.replications
    }

    /// Raw survivor counts per grid point (checkpoint serialisation).
    pub fn survivors(&self) -> &[u64] {
        &self.survivors
    }

    /// Rebuilds a curve from raw state (checkpoint deserialisation).
    ///
    /// # Panics
    ///
    /// Panics on an invalid grid (see [`SurvivalCurve::new`]), a
    /// survivor vector of the wrong length, or any survivor count
    /// exceeding `replications`.
    pub fn from_raw(grid: Vec<f64>, survivors: Vec<u64>, replications: u64) -> Self {
        let mut c = SurvivalCurve::new(grid);
        assert_eq!(
            survivors.len(),
            c.grid.len(),
            "survivor vector length mismatch"
        );
        assert!(
            survivors.iter().all(|&s| s <= replications),
            "survivors exceed replications"
        );
        c.survivors = survivors;
        c.replications = replications;
        c
    }

    /// Estimated reliability at each grid point.
    ///
    /// All-ones when no replications have been recorded.
    pub fn reliability(&self) -> Vec<f64> {
        if self.replications == 0 {
            return vec![1.0; self.grid.len()];
        }
        self.survivors
            .iter()
            .map(|&s| s as f64 / self.replications as f64)
            .collect()
    }

    /// Wilson confidence band at each grid point.
    pub fn confidence_band(&self, level: Confidence) -> Vec<(f64, f64)> {
        self.survivors
            .iter()
            .map(|&s| Proportion::from_counts(s, self.replications).wilson_interval(level))
            .collect()
    }

    /// Merges another curve with the identical grid.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn merge(&mut self, other: &SurvivalCurve) {
        assert_eq!(self.grid, other.grid, "survival grids differ");
        for (a, b) in self.survivors.iter_mut().zip(&other.survivors) {
            *a += b;
        }
        self.replications += other.replications;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.0, 2.5, -3.0, 4.0, 10.0, 0.5];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.record(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-10);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.record((i % 3) as f64);
        }
        for i in 0..10_000 {
            large.record((i % 3) as f64);
        }
        assert!(large.ci_half_width(Confidence::C95) < small.ci_half_width(Confidence::C95));
    }

    #[test]
    fn wilson_interval_contains_estimate_and_is_proper() {
        let p = Proportion::from_counts(9, 10);
        let (lo, hi) = p.wilson_interval(Confidence::C95);
        assert!(lo < 0.9 && 0.9 < hi);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        // Extreme case p = 1 stays bounded.
        let (lo1, hi1) = Proportion::from_counts(10, 10).wilson_interval(Confidence::C95);
        assert!(lo1 > 0.6 && hi1 <= 1.0);
    }

    #[test]
    fn wilson_interval_of_empty_is_vacuous() {
        assert_eq!(
            Proportion::new().wilson_interval(Confidence::C99),
            (0.0, 1.0)
        );
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.999, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record((i % 100) as f64);
        }
        let q25 = h.quantile(0.25).unwrap();
        let q50 = h.quantile(0.50).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q25 <= q50 && q50 <= q99);
        assert!((q50 - 50.0).abs() <= 2.0);
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        let mut combined = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.5, 3.0] {
            a.record(x);
            combined.record(x);
        }
        for x in [3.5, 9.9, 12.0, 42.0] {
            b.record(x);
            combined.record(x);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, combined);
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.underflow(), 1);
        assert_eq!(merged.overflow(), 2);
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.record(0.3);
        let before = a.clone();
        a.merge(&Histogram::new(0.0, 1.0, 4));
        assert_eq!(a, before);
        let mut empty = Histogram::new(0.0, 1.0, 4);
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_merge_saturates_flows() {
        let mut a = Histogram::from_raw(0.0, 1.0, vec![0], u64::MAX - 1, u64::MAX, u64::MAX);
        let mut b = Histogram::new(0.0, 1.0, 1);
        b.record(-1.0);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.underflow(), u64::MAX);
        assert_eq!(a.overflow(), u64::MAX);
        assert_eq!(a.count(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "bin grids differ")]
    fn histogram_merge_rejects_mismatched_grid() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn raw_round_trips() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.5, -3.0] {
            s.record(x);
        }
        assert_eq!(OnlineStats::from_raw(s.to_raw()), s);

        let mut h = Histogram::new(-5.0, 5.0, 10);
        for x in [-9.0, -4.9, 0.0, 4.9, 5.0] {
            h.record(x);
        }
        let rebuilt = Histogram::from_raw(
            h.low(),
            h.high(),
            h.bins().to_vec(),
            h.underflow(),
            h.overflow(),
            h.count(),
        );
        assert_eq!(rebuilt, h);

        let mut c = SurvivalCurve::new(vec![1.0, 2.0]);
        c.record_failure(1.5);
        c.record_survivor();
        let rebuilt =
            SurvivalCurve::from_raw(c.grid().to_vec(), c.survivors().to_vec(), c.replications());
        assert_eq!(rebuilt, c);
    }

    #[test]
    fn survival_curve_basic() {
        let mut c = SurvivalCurve::new(vec![10.0, 20.0, 30.0]);
        c.record_failure(5.0); // fails before every grid point
        c.record_failure(25.0); // survives 10, 20
        c.record_survivor();
        let r = c.reliability();
        assert_eq!(r, vec![2.0 / 3.0, 2.0 / 3.0, 1.0 / 3.0]);
    }

    #[test]
    fn survival_failure_exactly_on_grid_point_counts_as_failed() {
        let mut c = SurvivalCurve::new(vec![10.0]);
        c.record_failure(10.0);
        assert_eq!(c.reliability(), vec![0.0]);
    }

    #[test]
    fn survival_merge_matches_combined() {
        let grid = vec![1.0, 2.0];
        let mut a = SurvivalCurve::new(grid.clone());
        let mut b = SurvivalCurve::new(grid.clone());
        a.record_failure(0.5);
        b.record_survivor();
        b.record_failure(1.5);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.replications(), 3);
        assert_eq!(merged.reliability(), vec![2.0 / 3.0, 1.0 / 3.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn survival_rejects_unsorted_grid() {
        SurvivalCurve::new(vec![2.0, 1.0]);
    }
}
