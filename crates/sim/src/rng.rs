//! Reproducible random-number streams for simulation experiments.
//!
//! Every stochastic experiment in this workspace is parameterised by a single
//! `u64` master seed. [`RngStream`] wraps an in-repo xoshiro256++ core
//! (seeded through splitmix64, as Vigna recommends) and adds:
//!
//! * **forking** — [`RngStream::fork`] derives an independent child stream
//!   from a string label, so e.g. each node in a Monte-Carlo run owns its own
//!   stream and adding a node never perturbs the others' draws;
//! * the handful of **distributions** the dependability models need
//!   (exponential inter-arrival times, Bernoulli trials, uniform ranges),
//!   implemented by inverse transform so that nothing beyond `std` is
//!   required.
//!
//! The stream is **bit-stable**: the exact draw sequence for a given seed is
//! pinned by golden-value tests below, because every fault-injection
//! campaign and Monte-Carlo figure in this reproduction is defined by its
//! master seed. Changing the generator invalidates every recorded number,
//! so it must never happen silently.

use crate::time::SimDuration;

/// SplitMix64 step, used to hash labels and decorrelate fork seeds.
///
/// This is the standard finalizer from Vigna's `splitmix64`; it is a
/// bijection on `u64` with excellent avalanche behaviour, which is all that
/// seed derivation needs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_label(seed: u64, label: &str) -> u64 {
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    for byte in label.bytes() {
        state ^= u64::from(byte);
        splitmix64(&mut state);
    }
    splitmix64(&mut state)
}

/// A seedable, forkable random stream.
///
/// # Examples
///
/// ```
/// use nlft_sim::rng::RngStream;
///
/// let mut root = RngStream::new(42);
/// let mut node_a = root.fork("node-a");
/// let mut node_b = root.fork("node-b");
/// // Independent streams: same label + seed always reproduces the same draws.
/// assert_ne!(node_a.next_u64(), node_b.next_u64());
/// assert_eq!(RngStream::new(42).fork("node-a").next_u64(),
///            RngStream::new(42).fork("node-a").next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    seed: u64,
    state: [u64; 4],
}

impl RngStream {
    /// Creates the root stream for a master seed.
    ///
    /// The four xoshiro256++ state words are expanded from the seed with
    /// consecutive splitmix64 outputs, which guarantees a non-zero state
    /// and decorrelates nearby seeds.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        RngStream { seed, state }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream from a label.
    ///
    /// Forking depends only on `(self.seed, label)` — not on how many values
    /// have been drawn from `self` — so components can be wired up in any
    /// order without perturbing each other's randomness.
    pub fn fork(&self, label: &str) -> RngStream {
        RngStream::new(hash_label(self.seed, label))
    }

    /// Derives an independent child stream from an index (e.g. replica id).
    pub fn fork_indexed(&self, label: &str, index: u64) -> RngStream {
        let mut state = hash_label(self.seed, label) ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        RngStream::new(splitmix64(&mut state))
    }

    /// Next raw 64-bit value (one xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits, the standard double-precision recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[low, high)`, debiased with Lemire's widening
    /// multiply so every value is exactly equally likely.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range [{low}, {high})");
        let span = high - low;
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(span);
            if m as u64 >= threshold {
                return low + (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// `p` is clamped to `[0, 1]`; NaN counts as 0.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p.is_nan() || p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.uniform_f64() < p
    }

    /// Exponentially distributed value with the given `rate` (events per
    /// unit), via inverse transform. Mean is `1/rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "exponential rate must be positive and finite, got {rate}"
        );
        // 1 - U is in (0, 1], so ln never sees zero.
        -(1.0 - self.uniform_f64()).ln() / rate
    }

    /// Exponentially distributed simulated duration, with `rate_per_hour`
    /// events per hour. This is the shape in which fault and repair rates
    /// appear in the paper (faults/hour, repairs/hour).
    pub fn exponential_hours(&mut self, rate_per_hour: f64) -> SimDuration {
        SimDuration::from_hours_f64(self.exponential(rate_per_hour))
    }

    /// Picks one index in `[0, weights.len())` with probability proportional
    /// to the weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "weighted_index needs at least one weight"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut x = self.uniform_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1 // floating-point slack lands on the last bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values: the raw stream for seed 42 is pinned bit-for-bit.
    /// Every campaign figure in EXPERIMENTS.md is defined by a master
    /// seed, so the generator must never change silently — if this test
    /// fails, the change invalidates all recorded numbers and must be
    /// called out loudly in the changelog instead.
    #[test]
    fn golden_raw_stream_seed_42() {
        let mut s = RngStream::new(42);
        let draws: [u64; 4] = std::array::from_fn(|_| s.next_u64());
        assert_eq!(
            draws, GOLDEN_SEED_42,
            "xoshiro256++ stream for seed 42 changed"
        );
    }

    const GOLDEN_SEED_42: [u64; 4] = [
        0xD076_4D4F_4476_689F,
        0x519E_4174_576F_3791,
        0xFBE0_7CFB_0C24_ED8C,
        0xB37D_9F60_0CD8_35B8,
    ];

    /// Golden values: forking and the derived distributions are pinned.
    #[test]
    fn golden_fork_and_distributions() {
        let root = RngStream::new(0x2005_0D5A);
        let mut node = root.fork("node-a");
        assert_eq!(node.next_u64(), GOLDEN_FORK);
        let mut idx = root.fork_indexed("replication", 3);
        assert_eq!(idx.uniform_range(0, 1_000_000), GOLDEN_RANGE);
        let mut dist = root.fork("dist");
        assert_eq!(dist.uniform_f64().to_bits(), GOLDEN_F64_BITS);
        assert_eq!(dist.exponential(2.5).to_bits(), GOLDEN_EXP_BITS);
    }

    const GOLDEN_FORK: u64 = 0x564C_8A8D_5047_4482;
    const GOLDEN_RANGE: u64 = 887_492;
    const GOLDEN_F64_BITS: u64 = 0x3FE8_2519_0BD6_503C;
    const GOLDEN_EXP_BITS: u64 = 0x3FE9_4BA3_D477_175A;

    /// Prints the golden constants; run with
    /// `cargo test -p nlft-sim print_golden -- --ignored --nocapture`
    /// after an intentional generator change, and paste the output above.
    #[test]
    #[ignore = "generator for the golden constants, not a check"]
    fn print_golden() {
        let mut s = RngStream::new(42);
        let draws: Vec<String> = (0..4).map(|_| format!("{:#018X}", s.next_u64())).collect();
        println!("const GOLDEN_SEED_42: [u64; 4] = [{}];", draws.join(", "));
        let root = RngStream::new(0x2005_0D5A);
        println!(
            "const GOLDEN_FORK: u64 = {:#018X};",
            root.fork("node-a").next_u64()
        );
        println!(
            "const GOLDEN_RANGE: u64 = {};",
            root.fork_indexed("replication", 3)
                .uniform_range(0, 1_000_000)
        );
        let mut dist = root.fork("dist");
        println!(
            "const GOLDEN_F64_BITS: u64 = {:#018X};",
            dist.uniform_f64().to_bits()
        );
        println!(
            "const GOLDEN_EXP_BITS: u64 = {:#018X};",
            dist.exponential(2.5).to_bits()
        );
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RngStream::new(7);
        let mut b = RngStream::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_order_independent() {
        let root = RngStream::new(99);
        let mut f1 = root.fork("x");
        let _ = root.fork("y");
        let mut f2 = RngStream::new(99).fork("x");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn fork_indexed_distinguishes_indices() {
        let root = RngStream::new(1);
        let a = root.fork_indexed("node", 0).next_u64();
        let b = root.fork_indexed("node", 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut s = RngStream::new(3);
        for _ in 0..10_000 {
            let u = s.uniform_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut s = RngStream::new(11);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| s.exponential(rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "sample mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut s = RngStream::new(5);
        assert!(!s.bernoulli(0.0));
        assert!(s.bernoulli(1.0));
        assert!(!s.bernoulli(f64::NAN));
        assert!(!s.bernoulli(-0.5));
        assert!(s.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut s = RngStream::new(13);
        let hits = (0..100_000).filter(|_| s.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut s = RngStream::new(17);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[s.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket must never be drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        RngStream::new(1).exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn weighted_index_rejects_all_zero() {
        RngStream::new(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn exponential_hours_produces_duration() {
        let mut s = RngStream::new(23);
        // With rate 1e-4 per hour the mean is 1e4 hours; a single draw is
        // overwhelmingly likely to be positive and below 1e6 hours (u64 safe).
        let d = s.exponential_hours(1e-4);
        assert!(d > SimDuration::ZERO);
    }
}
