//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] is the heart of every simulator in this workspace: the
//! network simulator, the Monte-Carlo dependability models and the failure
//! injection campaigns all drive their state machines from one of these
//! queues. Determinism matters — an experiment must be exactly reproducible
//! from its seed — so ties in timestamps are broken by insertion order
//! (FIFO), never by heap internals.
//!
//! Events can be cancelled in O(1) via the [`EventId`] returned at schedule
//! time; cancelled entries are dropped lazily when they surface.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::time::SimTime;

/// Handle identifying a scheduled event, usable to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Order by (time, seq): earliest first, FIFO among equal times.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A future-event list with a monotone clock.
///
/// The queue owns the notion of "now": popping an event advances the clock
/// to that event's timestamp. Scheduling into the past is rejected.
///
/// # Examples
///
/// ```
/// use nlft_sim::event::EventQueue;
/// use nlft_sim::time::{SimTime, SimDuration};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "late")?;
/// q.schedule(SimTime::from_millis(1), "early")?;
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_millis(1), "early"));
/// assert_eq!(q.now(), SimTime::from_millis(1));
/// # Ok::<(), nlft_sim::event::ScheduleError>(())
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Sequence numbers scheduled but not yet popped or cancelled.
    live: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
}

/// Error returned when an event cannot be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The requested timestamp lies before the current simulation time.
    InPast {
        /// The current clock value.
        now: SimTime,
        /// The rejected timestamp.
        requested: SimTime,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InPast { now, requested } => write!(
                f,
                "cannot schedule event at {requested} before current time {now}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not cancelled) events still pending.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InPast`] when `at` is earlier than
    /// [`EventQueue::now`]. Scheduling *at* the current time is allowed and
    /// the event will be delivered after all already-queued events with the
    /// same timestamp.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> Result<EventId, ScheduleError> {
        if at < self.now {
            return Err(ScheduleError::InPast {
                now: self.now,
                requested: at,
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            payload,
        }));
        Ok(EventId(seq))
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was pending, `false` if it already fired,
    /// was already cancelled, or never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id.0)
    }

    /// Removes and returns the next live event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if !self.live.remove(&entry.seq) {
                continue; // cancelled: drop lazily
            }
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the peek is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if !self.live.contains(&entry.seq) {
                self.heap.pop();
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Removes and returns the next event only if it fires at or before
    /// `deadline`; the clock never advances past `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Advances the clock to `at` without delivering events.
    ///
    /// # Panics
    ///
    /// Panics if `at` would move the clock backwards or jump over a pending
    /// event — both indicate a simulator bug.
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "clock cannot move backwards");
        if let Some(t) = self.peek_time() {
            assert!(at <= t, "cannot advance past a pending event at {t}");
        }
        self.now = at;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at_ms(30), 'c').unwrap();
        q.schedule(at_ms(10), 'a').unwrap();
        q.schedule(at_ms(20), 'b').unwrap();
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(at_ms(5), i).unwrap();
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(at_ms(7), ()).unwrap();
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), at_ms(7));
    }

    #[test]
    fn scheduling_in_past_is_rejected() {
        let mut q = EventQueue::new();
        q.schedule(at_ms(10), ()).unwrap();
        q.pop();
        let err = q.schedule(at_ms(5), ()).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::InPast {
                now: at_ms(10),
                requested: at_ms(5)
            }
        );
        // Scheduling exactly at `now` is fine.
        assert!(q.schedule(at_ms(10), ()).is_ok());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(at_ms(1), 'a').unwrap();
        q.schedule(at_ms(2), 'b').unwrap();
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(at_ms(1), 'a').unwrap();
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let b = q.schedule(at_ms(2), 'b').unwrap();
        q.pop();
        assert!(!q.cancel(b), "cancel after fire reports false");
        assert!(!q.cancel(EventId(9999)), "unknown id reports false");
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(at_ms(5), 'a').unwrap();
        q.schedule(at_ms(15), 'b').unwrap();
        assert_eq!(q.pop_before(at_ms(10)).map(|(_, e)| e), Some('a'));
        assert_eq!(q.pop_before(at_ms(10)), None);
        assert_eq!(q.now(), at_ms(5), "clock stays at last delivered event");
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let a = q.schedule(at_ms(1), 'a').unwrap();
        q.schedule(at_ms(2), 'b').unwrap();
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(at_ms(2)));
    }

    #[test]
    fn advance_to_moves_clock_between_events() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(at_ms(10), ()).unwrap();
        q.advance_to(at_ms(4));
        assert_eq!(q.now(), at_ms(4));
        assert_eq!(q.now() + SimDuration::from_millis(6), at_ms(10));
    }

    #[test]
    #[should_panic(expected = "cannot advance past")]
    fn advance_past_pending_event_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(at_ms(10), ()).unwrap();
        q.advance_to(at_ms(11));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10).map(|i| q.schedule(at_ms(i), i).unwrap()).collect();
        for id in ids.iter().take(4) {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }
}
