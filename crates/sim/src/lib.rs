//! # nlft-sim — discrete-event simulation substrate
//!
//! Foundation crate for the NLFT (node-level fault tolerance) workspace: a
//! deterministic discrete-event core shared by the machine, kernel, network
//! and Monte-Carlo dependability simulators.
//!
//! The crate deliberately stays small and dependency-light:
//!
//! * [`time`] — [`SimTime`]/[`SimDuration`] newtypes (nanosecond resolution,
//!   spans > 580 years, so both instruction cycles and one-year reliability
//!   missions fit in the same clock).
//! * [`event`] — a deterministic future-event list with FIFO tie-breaking and
//!   O(1) cancellation.
//! * [`rng`] — seedable, forkable random streams with the distributions the
//!   dependability models need (exponential, Bernoulli, weighted choice).
//! * [`stats`] — online moments, Wilson proportion intervals, histograms and
//!   empirical survival curves for experiment output analysis.
//! * [`crc`] — the one table-driven CRC-32 (IEEE 802.3) shared by the
//!   network frames and the kernel's data-integrity seals.
//! * [`weakly_hard`] — the shared (m,k) weakly-hard window monitor used by
//!   membership hysteresis, sensor demotion and kernel task contracts.
//!
//! # Examples
//!
//! A minimal Poisson arrival loop, exactly reproducible from its seed:
//!
//! ```
//! use nlft_sim::event::EventQueue;
//! use nlft_sim::rng::RngStream;
//! use nlft_sim::stats::OnlineStats;
//! use nlft_sim::time::{SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! let mut rng = RngStream::new(0xC0FFEE).fork("arrivals");
//! let mut stats = OnlineStats::new();
//!
//! queue.schedule(SimTime::ZERO, ())?;
//! let horizon = SimTime::from_secs(60);
//! while let Some((now, ())) = queue.pop_before(horizon) {
//!     stats.record(now.as_secs_f64());
//!     let gap = SimDuration::from_secs_f64(rng.exponential(2.0));
//!     queue.schedule(now + gap, ())?;
//! }
//! assert!(stats.count() > 0);
//! # Ok::<(), nlft_sim::event::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
pub mod weakly_hard;

pub use event::{EventId, EventQueue, ScheduleError};
pub use rng::RngStream;
pub use stats::{Confidence, Histogram, OnlineStats, Proportion, SurvivalCurve};
pub use time::{SimDuration, SimTime};
pub use weakly_hard::{WeaklyHard, WindowVerdict};
