//! Shared table-driven CRC-32 (IEEE 802.3, reflected).
//!
//! One implementation serves both the network frames (`nlft-net`) and the
//! kernel's data-integrity seals (`nlft-kernel`); before this module each
//! carried its own bitwise 8-iterations-per-byte copy, which was both slow
//! (the CRC sits on the campaign hot path — every frame encode/decode and
//! every sealed-message check) and a maintenance hazard: two independently
//! maintained polynomials can drift apart silently.
//!
//! The variant is the classic CRC-32 ("CRC-32/ISO-HDLC"): polynomial
//! `0xEDB88320` (reflected), initial value and final XOR `0xFFFFFFFF`.
//! Its check value over the ASCII digits `"123456789"` is `0xCBF43926`,
//! pinned by known-answer tests here *and* at both call sites so the
//! convention can never silently regress.
//!
//! The implementation is slicing-by-four: four 256-entry tables, built at
//! compile time, let the inner loop consume one 32-bit word per iteration
//! instead of one bit. The result is bit-identical to the bitwise
//! definition (a property test below checks this against a reference
//! implementation on random buffers).

/// The reflected IEEE 802.3 generator polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The classic one-byte-at-a-time table: `TABLE[0][b]` advances the CRC
/// state by one input byte `b`.
const fn base_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Slicing-by-four tables: `TABLE[k][b]` is the CRC contribution of byte
/// `b` positioned `k` bytes before the end of a four-byte block.
const fn slice_tables() -> [[u32; 256]; 4] {
    let t0 = base_table();
    let mut tables = [[0u32; 256]; 4];
    tables[0] = t0;
    let mut i = 0;
    while i < 256 {
        let mut crc = t0[i];
        let mut k = 1;
        while k < 4 {
            crc = (crc >> 8) ^ t0[(crc & 0xFF) as usize];
            tables[k][i] = crc;
            k += 1;
        }
        i += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 4] = slice_tables();

/// Advances a raw (pre-inverted) CRC state by one aligned 32-bit block
/// given as a little-endian word.
#[inline]
fn step_word(crc: u32, word: u32) -> u32 {
    let x = crc ^ word;
    TABLES[3][(x & 0xFF) as usize]
        ^ TABLES[2][((x >> 8) & 0xFF) as usize]
        ^ TABLES[1][((x >> 16) & 0xFF) as usize]
        ^ TABLES[0][(x >> 24) as usize]
}

/// Advances a raw (pre-inverted) CRC state by one input byte.
#[inline]
fn step_byte(crc: u32, byte: u8) -> u32 {
    (crc >> 8) ^ TABLES[0][((crc ^ u32::from(byte)) & 0xFF) as usize]
}

/// CRC-32 (IEEE 802.3, reflected) over raw bytes, one word at a time.
///
/// # Examples
///
/// ```
/// use nlft_sim::crc::crc32;
///
/// assert_eq!(crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(4);
    for chunk in chunks.by_ref() {
        let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        crc = step_word(crc, word);
    }
    for &b in chunks.remainder() {
        crc = step_byte(crc, b);
    }
    !crc
}

/// CRC-32 over 32-bit words, each contributing its four bytes in
/// little-endian order: `crc32_words(&[w])` equals
/// [`crc32`]`(&w.to_le_bytes())`.
///
/// Because the byte stream is word-aligned by construction, this is the
/// pure word-at-a-time path — no per-byte tail.
pub fn crc32_words(words: &[u32]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &w in words {
        crc = step_word(crc, w);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;

    /// The bitwise textbook definition the tables must reproduce.
    fn crc32_bitwise(bytes: &[u8]) -> u32 {
        let mut crc: u32 = 0xFFFF_FFFF;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb != 0 {
                    crc ^= POLY;
                }
            }
        }
        !crc
    }

    #[test]
    fn ieee_known_answer() {
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn zeros_known_answer() {
        assert_eq!(crc32(&[0u8; 32]), 0x190A55AD);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(&[]), crc32_bitwise(&[]));
        assert_eq!(crc32_words(&[]), crc32(&[]));
    }

    #[test]
    fn table_matches_bitwise_on_random_buffers() {
        let mut rng = RngStream::new(0x51C3).fork("crc-prop");
        for len in 0..64usize {
            let buf: Vec<u8> = (0..len).map(|_| rng.uniform_range(0, 256) as u8).collect();
            assert_eq!(crc32(&buf), crc32_bitwise(&buf), "len={len} buf={buf:?}");
        }
        // A longer buffer exercises many word blocks plus every tail size.
        for tail in 0..4usize {
            let buf: Vec<u8> = (0..1021 + tail)
                .map(|_| rng.uniform_range(0, 256) as u8)
                .collect();
            assert_eq!(crc32(&buf), crc32_bitwise(&buf), "tail={tail}");
        }
    }

    #[test]
    fn words_match_bytes() {
        let mut rng = RngStream::new(0xC4C).fork("crc-words");
        let words: Vec<u32> = (0..37)
            .map(|_| rng.uniform_range(0, 1 << 32) as u32)
            .collect();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        assert_eq!(crc32_words(&words), crc32(&bytes));
    }

    #[test]
    fn single_bit_sensitivity() {
        let base = crc32(b"node-level fault tolerance");
        let mut buf = b"node-level fault tolerance".to_vec();
        buf[7] ^= 0x01;
        assert_ne!(crc32(&buf), base);
    }
}
