//! Weakly-hard (m,k) window monitoring.
//!
//! A weakly-hard constraint bounds how *densely* failures may occur
//! rather than forbidding them outright: "at most m misses in any window
//! of k consecutive outcomes". The workspace uses the shape in three
//! places — membership hysteresis (a node missing m of its last k slots
//! is excluded), pedal-channel demotion (m implausible cycles in k demote
//! the channel), and per-task deadline-miss contracts enforced by the
//! kernel executive. All three share this monitor instead of hand-rolling
//! their own shift-register windows.
//!
//! The monitor keeps the last `k` outcomes in a ring bitset, so one
//! [`WeaklyHard::record`] call is O(1) for any window length: the bit
//! falling out of the window is subtracted from the running miss count,
//! the new bit is added. A 64-bit outcome counter means streams far past
//! 2³² jobs wrap the ring without losing count — property-tested against
//! a naive reference window.
//!
//! Besides the violation verdict the monitor reports the **margin** — the
//! number of further misses the current window absorbs before violating,
//! the "distance to violation" that degradation policies act on *before*
//! the contract is broken.
//!
//! # Examples
//!
//! ```
//! use nlft_sim::weakly_hard::WeaklyHard;
//!
//! // Violated when 3 of the last 8 outcomes are misses.
//! let mut w = WeaklyHard::new(3, 8);
//! assert!(!w.record(true).violated);
//! assert!(!w.record(true).violated);
//! assert_eq!(w.margin(), 1, "one more miss violates");
//! let v = w.record(true);
//! assert!(v.violated);
//! assert_eq!(v.misses_in_window, 3);
//! // Eight clean outcomes later the window has fully recovered.
//! for _ in 0..8 {
//!     w.record(false);
//! }
//! assert!(!w.is_violated());
//! assert_eq!(w.margin(), 3);
//! ```

/// The verdict of one recorded outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowVerdict {
    /// Whether the constraint is violated after this outcome: at least
    /// `m` of the last `k` outcomes are misses.
    pub violated: bool,
    /// Misses currently inside the window.
    pub misses_in_window: u32,
    /// Misses the window still absorbs before violating (0 = violated).
    pub margin: u32,
    /// Trailing run of consecutive misses ending at this outcome.
    pub consecutive_misses: u32,
}

/// An (m,k) weakly-hard window monitor: **violated** while at least
/// `m` of the last `k` recorded outcomes are misses.
///
/// The consecutive-miss rule "n misses in a row" is the special case
/// `m = k = n` (n misses within a window of n *is* n consecutive
/// misses); [`WeaklyHard::consecutive`] builds exactly that, and every
/// monitor also tracks the trailing consecutive-miss run directly for
/// callers that combine both rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeaklyHard {
    /// Miss threshold `m` (violation at ≥ m misses in the window).
    misses: u32,
    /// Window length `k`.
    window: u32,
    /// Ring bitset over the last `window` outcomes, 1 = miss.
    bits: Vec<u64>,
    /// Total outcomes recorded since construction or the last reset.
    observed: u64,
    /// Misses currently inside the window (maintained incrementally).
    in_window: u32,
    /// Trailing consecutive misses.
    consecutive: u32,
}

impl WeaklyHard {
    /// Creates a monitor violated at `misses` misses within any
    /// `window` consecutive outcomes.
    ///
    /// # Panics
    ///
    /// Panics when `misses` is zero, `window` is zero, or
    /// `misses > window`.
    pub fn new(misses: u32, window: u32) -> Self {
        assert!(misses > 0, "window_misses must be positive");
        assert!(window > 0, "window_cycles must be positive");
        assert!(
            misses <= window,
            "window_misses must be at most window_cycles"
        );
        WeaklyHard {
            misses,
            window,
            bits: vec![0; window.div_ceil(64) as usize],
            observed: 0,
            in_window: 0,
            consecutive: 0,
        }
    }

    /// Creates a consecutive-miss monitor: violated by `n` misses in a
    /// row (the `(m, k) = (n, n)` special case).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn consecutive(n: u32) -> Self {
        WeaklyHard::new(n, n)
    }

    /// The miss threshold `m`.
    pub fn miss_threshold(&self) -> u32 {
        self.misses
    }

    /// The window length `k`.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Records one outcome (`miss = true` for a miss) in O(1) and
    /// returns the verdict for the updated window.
    pub fn record(&mut self, miss: bool) -> WindowVerdict {
        let slot = (self.observed % u64::from(self.window)) as u32;
        let (word, bit) = (slot / 64, slot % 64);
        let mask = 1u64 << bit;
        // Once the ring has wrapped, the slot holds the outcome falling
        // out of the window: subtract it from the running count.
        if self.observed >= u64::from(self.window) && self.bits[word as usize] & mask != 0 {
            self.in_window -= 1;
        }
        if miss {
            self.bits[word as usize] |= mask;
            self.in_window += 1;
            self.consecutive += 1;
        } else {
            self.bits[word as usize] &= !mask;
            self.consecutive = 0;
        }
        self.observed += 1;
        self.verdict()
    }

    /// Fast-forwards `n` consecutive hits: equivalent to `n` calls of
    /// `record(false)` but O(min(n, k)) — healthy streams running for
    /// billions of jobs need not be replayed outcome by outcome.
    pub fn record_hits(&mut self, n: u64) {
        let k = u64::from(self.window);
        if n >= k {
            // The window is entirely hits afterwards; only the counter
            // position matters for subsequent records.
            self.bits.fill(0);
            self.in_window = 0;
            self.consecutive = 0;
            self.observed += n;
        } else {
            for _ in 0..n {
                self.record(false);
            }
        }
    }

    /// Clears the window and both counters — the "clean slate" a
    /// readmitted node or restarted task starts from. The total
    /// [`WeaklyHard::observed`] count restarts too.
    pub fn reset(&mut self) {
        self.bits.fill(0);
        self.observed = 0;
        self.in_window = 0;
        self.consecutive = 0;
    }

    /// Total outcomes recorded since construction or the last reset.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Misses currently inside the window.
    pub fn misses_in_window(&self) -> u32 {
        self.in_window
    }

    /// Trailing run of consecutive misses.
    pub fn consecutive_misses(&self) -> u32 {
        self.consecutive
    }

    /// Whether the window currently violates the constraint.
    pub fn is_violated(&self) -> bool {
        self.in_window >= self.misses
    }

    /// Distance to violation: further misses absorbed before the
    /// constraint breaks (0 when already violated).
    pub fn margin(&self) -> u32 {
        self.misses.saturating_sub(self.in_window)
    }

    /// The verdict for the current window without recording anything.
    pub fn verdict(&self) -> WindowVerdict {
        WindowVerdict {
            violated: self.is_violated(),
            misses_in_window: self.in_window,
            margin: self.margin(),
            consecutive_misses: self.consecutive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_misses_within_the_window() {
        let mut w = WeaklyHard::new(4, 16);
        for i in 0..16 {
            let v = w.record(i % 2 == 0);
            assert_eq!(v.violated, v.misses_in_window >= 4);
        }
        // Alternating stream holds 8 misses in a 16-window: violated.
        assert!(w.is_violated());
        assert_eq!(w.misses_in_window(), 8);
    }

    #[test]
    fn old_outcomes_fall_out_of_the_window() {
        let mut w = WeaklyHard::new(2, 4);
        w.record(true);
        w.record(false);
        w.record(false);
        w.record(false);
        assert_eq!(w.misses_in_window(), 1);
        w.record(false); // the original miss leaves the window
        assert_eq!(w.misses_in_window(), 0);
        assert_eq!(w.margin(), 2);
    }

    #[test]
    fn consecutive_is_m_equals_k() {
        let mut w = WeaklyHard::consecutive(3);
        assert!(!w.record(true).violated);
        assert!(!w.record(true).violated);
        assert!(!w.record(false).violated);
        assert!(!w.record(true).violated);
        assert!(!w.record(true).violated);
        let v = w.record(true);
        assert!(v.violated, "3 misses in a row violate");
        assert_eq!(v.consecutive_misses, 3);
    }

    #[test]
    fn reset_gives_a_clean_slate() {
        let mut w = WeaklyHard::new(2, 8);
        w.record(true);
        w.record(true);
        assert!(w.is_violated());
        w.reset();
        assert!(!w.is_violated());
        assert_eq!(w.observed(), 0);
        assert_eq!(w.margin(), 2);
        assert!(!w.record(true).violated, "old misses must not count");
    }

    #[test]
    fn windows_longer_than_64_are_supported() {
        let mut w = WeaklyHard::new(5, 200);
        for i in 0..1000u32 {
            w.record(i % 50 == 0);
        }
        // 200-window covers 4 misses (every 50th outcome): not violated.
        assert_eq!(w.misses_in_window(), 4);
        assert!(!w.is_violated());
    }

    #[test]
    fn record_hits_matches_explicit_hits() {
        let mut a = WeaklyHard::new(3, 10);
        let mut b = a.clone();
        for i in 0..7 {
            a.record(i % 3 == 0);
            b.record(i % 3 == 0);
        }
        a.record_hits(25);
        for _ in 0..25 {
            b.record(false);
        }
        assert_eq!(a, b);
        a.record(true);
        b.record(true);
        assert_eq!(a.verdict(), b.verdict());
    }

    #[test]
    #[should_panic(expected = "window_misses must be positive")]
    fn zero_misses_rejected() {
        WeaklyHard::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "window_misses must be at most window_cycles")]
    fn misses_above_window_rejected() {
        WeaklyHard::new(9, 8);
    }

    #[test]
    #[should_panic(expected = "window_cycles must be positive")]
    fn zero_window_rejected() {
        WeaklyHard::new(1, 0);
    }
}
