//! # nlft-testkit — the workspace's own test substrate
//!
//! Every build of this workspace is hermetic: no crate outside the
//! repository may appear in the dependency graph (see `tests/hermetic.rs`
//! at the workspace root). That rules out `proptest` and `criterion`, so
//! this crate provides the two pieces of test machinery the workspace
//! needs, built on `std` alone:
//!
//! * [`prop`] — a seeded property-testing harness. Each suite owns a fixed
//!   master seed; every property and case derives its stream from it, so a
//!   failure report always carries the exact seed that reproduces it.
//! * [`mod@bench`] — a wall-clock benchmark runner (warmup, calibrated batch
//!   sizes, median/p95 over timed samples) with machine-readable JSON
//!   reports, driven by the `harness = false` bench binaries in
//!   `crates/bench/benches/`.
//! * [`json`] — a minimal JSON value type and writer used by the bench
//!   reports and the figure-regeneration artifacts.
//! * [`rng`] — the xoshiro256++ generator behind the property harness.
//!   Deliberately independent of `nlft-sim`'s `RngStream` so the test
//!   substrate cannot perturb (or be perturbed by) the simulation streams
//!   it is exercising.
//!
//! ## Reproducing a property failure
//!
//! A failing property prints its case seed:
//!
//! ```text
//! property 'event_queue_emits_sorted' failed at case 17/256 (case seed 0x9E3779B97F4A7C15)
//! ```
//!
//! Re-run exactly that case with:
//!
//! ```text
//! NLFT_PROP_SEED=0x9E3779B97F4A7C15 cargo test -p nlft-sim event_queue_emits_sorted
//! ```
//!
//! `NLFT_PROP_CASES=<n>` overrides the per-suite case count (e.g. crank it
//! up for a soak run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;
