//! Wall-clock benchmark runner for `harness = false` bench binaries.
//!
//! The criterion replacement: each benchmark is warmed up, the iteration
//! count per sample is calibrated so one sample takes a few milliseconds,
//! then `samples` batches are timed and summarised as min / mean / median
//! / p95 per-iteration nanoseconds. `finish()` prints an aligned table and
//! writes a `BENCH_<group>.json` report next to the target directory.
//!
//! `cargo bench` passes `--bench` to the binary; without that flag (as
//! under `cargo test`, which also executes bench binaries) the runner
//! drops into *smoke mode* — every closure runs exactly once so the bench
//! stays compiled-and-correct without burning CI time.
//!
//! ```no_run
//! use nlft_testkit::bench::Bench;
//!
//! let mut b = Bench::new("fig12");
//! b.bench("build_system_model", || 2 + 2);
//! b.finish();
//! ```

use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Target duration of one timed sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(4);
/// Warmup budget per benchmark before calibration is trusted.
const WARMUP: Duration = Duration::from_millis(60);
/// Default number of timed samples.
const DEFAULT_SAMPLES: usize = 30;
/// Cap on iterations per sample (pathologically fast routines).
const MAX_ITERS_PER_SAMPLE: u64 = 1 << 22;

/// Summary of one benchmark.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark name within the group.
    pub name: String,
    /// Timed samples taken.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Fastest per-iteration time (ns).
    pub min_ns: f64,
    /// Mean per-iteration time (ns).
    pub mean_ns: f64,
    /// Median per-iteration time (ns).
    pub median_ns: f64,
    /// 95th-percentile per-iteration time (ns).
    pub p95_ns: f64,
    /// Optional elements processed per iteration (for throughput rates).
    pub elements: Option<u64>,
}

impl Record {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::from(self.name.clone())),
            ("samples".to_string(), Json::from(self.samples)),
            (
                "iters_per_sample".to_string(),
                Json::from(self.iters_per_sample),
            ),
            ("min_ns".to_string(), Json::from(self.min_ns)),
            ("mean_ns".to_string(), Json::from(self.mean_ns)),
            ("median_ns".to_string(), Json::from(self.median_ns)),
            ("p95_ns".to_string(), Json::from(self.p95_ns)),
        ];
        if let Some(e) = self.elements {
            fields.push(("elements".to_string(), Json::from(e)));
        }
        Json::Obj(fields)
    }
}

/// A benchmark group: the unit of reporting (one table, one JSON file).
#[derive(Debug)]
pub struct Bench {
    group: String,
    full: bool,
    samples: usize,
    records: Vec<Record>,
}

impl Bench {
    /// Creates a group, reading the mode from the process arguments:
    /// `--bench` selects full measurement (what `cargo bench` passes),
    /// anything else means smoke mode; `--samples <n>` overrides the
    /// sample count.
    pub fn new(group: &str) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let full = args.iter().any(|a| a == "--bench");
        let samples = args
            .iter()
            .position(|a| a == "--samples")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SAMPLES);
        Bench {
            group: group.to_string(),
            full,
            samples: samples.max(2),
            records: Vec::new(),
        }
    }

    /// `true` when running under `cargo bench` (full measurement), `false`
    /// in smoke mode.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Measures `routine`.
    pub fn bench<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) {
        self.run(name, None, &mut routine);
    }

    /// Measures `routine`, recording that each iteration processes
    /// `elements` items so the report can show a per-element rate.
    pub fn bench_throughput<T>(
        &mut self,
        name: &str,
        elements: u64,
        mut routine: impl FnMut() -> T,
    ) {
        self.run(name, Some(elements), &mut routine);
    }

    /// Measures `routine(setup())` where `setup` runs untimed before every
    /// iteration (the replacement for criterion's `iter_batched`).
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        if !self.full {
            black_box(routine(setup()));
            self.note_smoke(name);
            return;
        }
        // Setup cost forces sample-of-one timing: time each routine call
        // individually and treat every call as one sample batch.
        let mut times = Vec::with_capacity(self.samples);
        // Warmup.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            times.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        self.push_record(name, times, 1, None);
    }

    fn run<T>(&mut self, name: &str, elements: Option<u64>, routine: &mut impl FnMut() -> T) {
        if !self.full {
            black_box(routine());
            self.note_smoke(name);
            return;
        }
        // Calibration: double the batch size until one batch is long
        // enough to time reliably.
        let warm_start = Instant::now();
        let mut iters: u64 = 1;
        loop {
            let t = Self::time_batch(routine, iters);
            if t >= TARGET_SAMPLE || iters >= MAX_ITERS_PER_SAMPLE {
                break;
            }
            iters = iters.saturating_mul(2).min(MAX_ITERS_PER_SAMPLE);
        }
        // Spend the rest of the warmup budget at the final batch size so
        // caches and branch predictors settle before measurement.
        while warm_start.elapsed() < WARMUP {
            Self::time_batch(routine, iters);
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Self::time_batch(routine, iters);
            times.push(t.as_secs_f64() * 1e9 / iters as f64);
        }
        self.push_record(name, times, iters, elements);
    }

    fn time_batch<T>(routine: &mut impl FnMut() -> T, iters: u64) -> Duration {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        t0.elapsed()
    }

    fn note_smoke(&self, name: &str) {
        println!("bench {}/{name}: ok (smoke mode, 1 iteration)", self.group);
    }

    fn push_record(
        &mut self,
        name: &str,
        mut per_iter_ns: Vec<f64>,
        iters_per_sample: u64,
        elements: Option<u64>,
    ) {
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = per_iter_ns.len();
        let record = Record {
            name: name.to_string(),
            samples: n,
            iters_per_sample,
            min_ns: per_iter_ns[0],
            mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
            median_ns: if n % 2 == 1 {
                per_iter_ns[n / 2]
            } else {
                (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2.0
            },
            p95_ns: per_iter_ns[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1],
            elements,
        };
        println!(
            "bench {}/{}: median {} p95 {} ({} samples x {} iters){}",
            self.group,
            record.name,
            fmt_ns(record.median_ns),
            fmt_ns(record.p95_ns),
            record.samples,
            record.iters_per_sample,
            record
                .elements
                .map(|e| format!(", {:.1} ns/elem", record.median_ns / e as f64))
                .unwrap_or_default(),
        );
        self.records.push(record);
    }

    /// Prints the summary table and, in full mode, writes
    /// `BENCH_<group>.json` under `<target>/testkit/`.
    pub fn finish(self) {
        if !self.full {
            return;
        }
        println!("\ngroup {}: {} benchmarks", self.group, self.records.len());
        let report = Json::obj([
            ("group", Json::from(self.group.clone())),
            (
                "benchmarks",
                Json::Arr(self.records.iter().map(Record::to_json).collect()),
            ),
        ]);
        let path = artifact_path(&format!("BENCH_{}.json", self.group));
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, report.to_string()) {
            Ok(()) => println!("report written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

/// Where a named artifact lands: `NLFT_BENCH_OUT` if set, otherwise
/// `<target>/testkit/` next to the running executable, falling back to
/// `./target/testkit/`. Benches use it for their `BENCH_<group>.json`
/// reports; campaigns and experiments can drop their own JSON next to
/// them through the same resolution rules.
pub fn artifact_path(file_name: &str) -> PathBuf {
    if let Ok(dir) = std::env::var("NLFT_BENCH_OUT") {
        return PathBuf::from(dir).join(file_name);
    }
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name().is_some_and(|n| n == "target") {
                return dir.join("testkit").join(file_name);
            }
        }
    }
    PathBuf::from("target").join("testkit").join(file_name)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_bench(group: &str) -> Bench {
        Bench {
            group: group.to_string(),
            full: true,
            samples: 5,
            records: Vec::new(),
        }
    }

    #[test]
    fn records_capture_ordering_stats() {
        let mut b = full_bench("unit");
        b.push_record("x", vec![5.0, 1.0, 3.0, 2.0, 4.0], 1, None);
        let r = &b.records[0];
        assert_eq!(r.min_ns, 1.0);
        assert_eq!(r.median_ns, 3.0);
        assert_eq!(r.p95_ns, 5.0);
        assert!((r.mean_ns - 3.0).abs() < 1e-12);
    }

    #[test]
    fn even_sample_median_averages() {
        let mut b = full_bench("unit");
        b.push_record("x", vec![1.0, 2.0, 3.0, 4.0], 1, None);
        assert_eq!(b.records[0].median_ns, 2.5);
    }

    #[test]
    fn bench_measures_something() {
        let mut b = full_bench("unit");
        b.bench("count", || (0..100u64).sum::<u64>());
        assert_eq!(b.records.len(), 1);
        assert!(b.records[0].min_ns > 0.0);
        assert!(b.records[0].median_ns >= b.records[0].min_ns);
    }

    #[test]
    fn setup_variant_runs() {
        let mut b = full_bench("unit");
        b.samples = 3;
        b.bench_with_setup("sum", || vec![1u64; 64], |v| v.iter().sum::<u64>());
        assert_eq!(b.records[0].samples, 3);
    }

    #[test]
    fn json_report_shape() {
        let mut b = full_bench("unit");
        b.push_record("x", vec![1.0, 2.0, 3.0], 7, Some(10));
        let j = b.records[0].to_json().to_string();
        assert!(
            j.starts_with(r#"{"name":"x","samples":3,"iters_per_sample":7,"min_ns":1.0"#),
            "{j}"
        );
        assert!(j.contains(r#""elements":10"#));
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bench {
            group: "unit".into(),
            full: false,
            samples: 5,
            records: Vec::new(),
        };
        let mut calls = 0u32;
        b.bench("once", || calls += 1);
        // One call in smoke mode, nothing recorded.
        assert_eq!(calls, 1);
        assert!(b.records.is_empty());
    }
}
