//! Seeded property-testing harness.
//!
//! A suite is a fixed master seed plus a case count. Each property derives
//! its own stream from the suite seed and its name; each case derives its
//! stream from the property stream and the case index. Nothing depends on
//! wall clock, thread identity or test ordering, so a failure is always
//! reproducible from the printed case seed:
//!
//! ```text
//! NLFT_PROP_SEED=0x1234ABCD cargo test -p nlft-sim failing_property_name
//! ```
//!
//! # Example
//!
//! ```
//! use nlft_testkit::prop::{gens, Suite};
//! use nlft_testkit::prop_assert;
//!
//! const SUITE: Suite = Suite::new(0x5EED_CAFE);
//!
//! SUITE.check(
//!     "reverse_is_involutive",
//!     gens::vec(|r| r.range(0, 1_000), 0..50),
//!     |xs| {
//!         let mut twice = xs.clone();
//!         twice.reverse();
//!         twice.reverse();
//!         prop_assert!(&twice == xs, "double reverse changed the vec");
//!         Ok(())
//!     },
//! );
//! ```

use std::fmt::Debug;

use crate::rng::{splitmix64, TkRng};

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseError {
    /// The drawn input does not satisfy the property's precondition; the
    /// case is skipped (see [`prop_assume!`](crate::prop_assume)).
    Reject(String),
    /// The property is violated for this input.
    Fail(String),
}

/// Outcome of one property evaluation on one input.
pub type CaseResult = Result<(), CaseError>;

/// Default number of cases per property (matches proptest's default, the
/// floor the suites were originally written against).
pub const DEFAULT_CASES: u32 = 256;

fn hash_label(seed: u64, label: &str) -> u64 {
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    for byte in label.bytes() {
        state ^= u64::from(byte);
        splitmix64(&mut state);
    }
    splitmix64(&mut state)
}

fn parse_u64(text: &str) -> Option<u64> {
    let t = text.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// A property-test suite: a master seed and a case count.
///
/// Declare one `const` per test file so every property in the file draws
/// from the same reproducible root.
#[derive(Debug, Clone, Copy)]
pub struct Suite {
    seed: u64,
    cases: u32,
}

impl Suite {
    /// A suite with the given master seed and the default case count.
    pub const fn new(seed: u64) -> Self {
        Suite {
            seed,
            cases: DEFAULT_CASES,
        }
    }

    /// Overrides the number of cases per property.
    pub const fn cases(self, cases: u32) -> Self {
        Suite { cases, ..self }
    }

    /// The master seed.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Checks one property: draws `cases` inputs from `gen` and evaluates
    /// `prop` on each.
    ///
    /// Environment overrides:
    ///
    /// * `NLFT_PROP_SEED=<dec|0xhex>` — run a single case with exactly this
    ///   case seed (for reproducing a reported failure);
    /// * `NLFT_PROP_CASES=<n>` — run `n` cases instead of the suite count.
    ///
    /// # Panics
    ///
    /// Panics with a reproduction banner when the property fails, and when
    /// every case in the run was rejected by `prop_assume!` (a property
    /// that never executes is a test bug, not a pass).
    pub fn check<T, G, P>(&self, name: &str, mut gen: G, mut prop: P)
    where
        T: Debug,
        G: FnMut(&mut TkRng) -> T,
        P: FnMut(&T) -> CaseResult,
    {
        if let Some(seed) = std::env::var("NLFT_PROP_SEED")
            .ok()
            .as_deref()
            .and_then(parse_u64)
        {
            run_case(name, seed, 0, 1, &mut gen, &mut prop);
            return;
        }
        let cases = std::env::var("NLFT_PROP_CASES")
            .ok()
            .as_deref()
            .and_then(parse_u64)
            .map(|n| n.clamp(1, u64::from(u32::MAX)) as u32)
            .unwrap_or(self.cases);
        let prop_seed = hash_label(self.seed, name);
        let mut rejected = 0u32;
        for case in 0..cases {
            let mut state = prop_seed ^ u64::from(case).wrapping_mul(0xD6E8_FEB8_6659_FD93);
            let case_seed = splitmix64(&mut state);
            if !run_case(name, case_seed, case, cases, &mut gen, &mut prop) {
                rejected += 1;
            }
        }
        // A property whose precondition rejects everything is not testing
        // anything — surface that instead of passing silently.
        assert!(
            rejected < cases,
            "property '{name}': all {cases} cases were rejected by prop_assume!"
        );
    }
}

/// Runs one case; returns `false` if the input was rejected.
fn run_case<T, G, P>(
    name: &str,
    case_seed: u64,
    case: u32,
    cases: u32,
    gen: &mut G,
    prop: &mut P,
) -> bool
where
    T: Debug,
    G: FnMut(&mut TkRng) -> T,
    P: FnMut(&T) -> CaseResult,
{
    let mut rng = TkRng::new(case_seed);
    let input = gen(&mut rng);
    match prop(&input) {
        Ok(()) => true,
        Err(CaseError::Reject(_)) => false,
        Err(CaseError::Fail(msg)) => panic!(
            "property '{name}' failed at case {case}/{cases} (case seed {case_seed:#X})\n\
             \x20 input: {input:?}\n\
             \x20 error: {msg}\n\
             reproduce with: NLFT_PROP_SEED={case_seed:#X} cargo test {name}"
        ),
    }
}

/// Asserts a condition inside a property body; on failure the harness
/// reports the input and the reproducing seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::CaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::CaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::prop::CaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::prop::CaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts two expressions differ inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::prop::CaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::prop::CaseError::Fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), l
            )));
        }
    }};
}

/// Skips the case when its precondition does not hold (counts as neither
/// pass nor failure; a property whose every case is rejected fails).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::CaseError::Reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Generator combinators.
///
/// A generator is any `FnMut(&mut TkRng) -> T`; plain closures compose
/// naturally (draw parts, build the value), and the functions here cover
/// the collection shapes that are tedious to write inline.
pub mod gens {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::rng::TkRng;

    /// A vector of `len` items (bounds drawn uniformly from the range).
    pub fn vec<T>(
        mut item: impl FnMut(&mut TkRng) -> T,
        len: Range<usize>,
    ) -> impl FnMut(&mut TkRng) -> Vec<T> {
        assert!(!len.is_empty(), "empty length range {len:?}");
        move |r| {
            let n = r.usize_range(len.start, len.end);
            (0..n).map(|_| item(r)).collect()
        }
    }

    /// A set built from up to `size` draws (duplicates collapse, so the
    /// result can be smaller than the drawn target — as with proptest).
    pub fn btree_set<T: Ord>(
        mut item: impl FnMut(&mut TkRng) -> T,
        size: Range<usize>,
    ) -> impl FnMut(&mut TkRng) -> BTreeSet<T> {
        assert!(!size.is_empty(), "empty size range {size:?}");
        move |r| {
            let n = r.usize_range(size.start, size.end);
            (0..n).map(|_| item(r)).collect()
        }
    }

    /// A string of characters drawn uniformly from `charset`.
    pub fn string_from(
        charset: &'static str,
        len: Range<usize>,
    ) -> impl FnMut(&mut TkRng) -> String {
        let chars: Vec<char> = charset.chars().collect();
        assert!(!chars.is_empty(), "empty charset");
        assert!(!len.is_empty(), "empty length range {len:?}");
        move |r| {
            let n = r.usize_range(len.start, len.end);
            (0..n)
                .map(|_| chars[r.usize_range(0, chars.len())])
                .collect()
        }
    }

    /// One of the given values, uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> impl FnMut(&mut TkRng) -> T {
        assert!(!options.is_empty(), "select needs options");
        move |r| options[r.usize_range(0, options.len())].clone()
    }

    /// A boxed generator, as accepted by [`one_of`].
    pub type BoxedGen<T> = Box<dyn FnMut(&mut TkRng) -> T>;

    /// A value from one of the given generators, uniformly (the port of
    /// `prop_oneof!`).
    pub fn one_of<T>(mut variants: Vec<BoxedGen<T>>) -> impl FnMut(&mut TkRng) -> T {
        assert!(!variants.is_empty(), "one_of needs variants");
        move |r| {
            let i = r.usize_range(0, variants.len());
            variants[i](r)
        }
    }

    /// An abstract index, resolved against a collection length at use site
    /// (the port of `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub u64);

    impl Index {
        /// The index into a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "index into empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Generates an [`Index`].
    pub fn index() -> impl FnMut(&mut TkRng) -> Index {
        |r| Index(r.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;

    use super::*;

    const SUITE: Suite = Suite::new(0xC0FFEE).cases(64);

    #[test]
    fn passing_property_completes() {
        SUITE.check(
            "sum_commutes",
            |r| (r.range(0, 1000), r.range(0, 1000)),
            |&(a, b)| {
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_seed() {
        SUITE.check(
            "always_fails",
            |r| r.range(0, 10),
            |_| Err(CaseError::Fail("nope".into())),
        );
    }

    #[test]
    fn rejected_cases_are_skipped() {
        SUITE.check(
            "assume_filters",
            |r| r.range(0, 10),
            |&x| {
                prop_assume!(x % 2 == 0);
                prop_assert!(x % 2 == 0);
                Ok(())
            },
        );
    }

    #[test]
    #[should_panic(expected = "all 64 cases were rejected")]
    fn all_rejected_is_an_error() {
        SUITE.check(
            "assume_everything_away",
            |r| r.range(0, 10),
            |_| Err(CaseError::Reject("never valid".into())),
        );
    }

    #[test]
    fn same_suite_same_draws() {
        let collect = || {
            let seen = RefCell::new(Vec::new());
            SUITE.check(
                "deterministic",
                |r| r.next_u64(),
                |&x| {
                    seen.borrow_mut().push(x);
                    Ok(())
                },
            );
            seen.into_inner()
        };
        let first = collect();
        let second = collect();
        assert_eq!(first, second);
        assert_eq!(first.len(), 64);
    }

    #[test]
    fn properties_with_different_names_draw_differently() {
        let collect = |name: &str| {
            let seen = RefCell::new(Vec::new());
            SUITE.check(
                name,
                |r| r.next_u64(),
                |&x| {
                    seen.borrow_mut().push(x);
                    Ok(())
                },
            );
            seen.into_inner()
        };
        assert_ne!(collect("alpha"), collect("beta"));
    }

    #[test]
    fn gens_vec_respects_bounds() {
        SUITE.check("vec_bounds", gens::vec(|r| r.range(0, 5), 2..9), |v| {
            prop_assert!((2..9).contains(&v.len()), "len {} out of range", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
            Ok(())
        });
    }

    #[test]
    fn gens_string_uses_charset() {
        SUITE.check("string_charset", gens::string_from("ab", 1..5), |s| {
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            Ok(())
        });
    }

    #[test]
    fn gens_index_resolves_in_bounds() {
        SUITE.check("index_bounds", gens::index(), |ix| {
            for len in [1usize, 2, 7, 100] {
                prop_assert!(ix.index(len) < len);
            }
            Ok(())
        });
    }
}
