//! The generator behind the property harness: xoshiro256++ seeded through
//! splitmix64, exactly as Vigna recommends.
//!
//! This is intentionally a separate implementation from
//! `nlft_sim::rng::RngStream` — the test substrate must be able to change
//! its draw order without invalidating the simulation's pinned golden
//! values, and vice versa.

/// SplitMix64 step: a bijection on `u64` with strong avalanche behaviour,
/// used to expand a single seed word into the full xoshiro state.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator for test-case construction.
#[derive(Debug, Clone)]
pub struct TkRng {
    s: [u64; 4],
}

impl TkRng {
    /// Creates a generator from a single seed word.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        TkRng { s }
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, 1)` with 53 mantissa bits.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty f64 range [{lo}, {hi})");
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`, debiased (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(span);
            if m as u64 >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// Fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = TkRng::new(42);
        let mut b = TkRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(TkRng::new(1).next_u64(), TkRng::new(2).next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = TkRng::new(7);
        for _ in 0..10_000 {
            let v = r.range(10, 17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = TkRng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.range(0, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TkRng::new(11);
        for _ in 0..10_000 {
            let u = r.f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        TkRng::new(1).range(5, 5);
    }
}
