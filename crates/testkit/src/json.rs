//! A minimal JSON value type, writer and parser.
//!
//! Replaces the `serde`/`serde_json` pair for the workspace's report
//! artifacts. Objects preserve insertion order, so a hand-written
//! `to_json` emits fields exactly in declaration order — the same layout a
//! `#[derive(Serialize)]` produced, which keeps downstream consumers of
//! the `BENCH_*.json` and figure artifacts working unchanged. The parser
//! ([`Json::parse`]) reads those artifacts back — the bench-regression
//! tool compares a fresh run against the committed baseline with it.
//!
//! ```
//! use nlft_testkit::json::Json;
//!
//! let report = Json::obj([
//!     ("label", Json::from("NLFT/degraded")),
//!     ("points", Json::arr([Json::pair(0.0, 1.0), Json::pair(730.0, 0.97)])),
//!     ("mttf_years", Json::from(1.927)),
//! ]);
//! assert_eq!(
//!     report.to_string(),
//!     r#"{"label":"NLFT/degraded","points":[[0.0,1.0],[730.0,0.97]],"mttf_years":1.927}"#
//! );
//! ```

use std::fmt;

/// A JSON value. Objects keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer (emitted without a decimal point).
    UInt(u64),
    /// A floating-point number. Non-finite values serialise as `null`
    /// (JSON has no NaN/Infinity), matching `serde_json`'s lossy mode.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(field, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(fields: I) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A two-element number array — the serialisation of an `(f64, f64)`
    /// tuple, as in the figure point lists.
    pub fn pair(a: f64, b: f64) -> Json {
        Json::Arr(vec![Json::Num(a), Json::Num(b)])
    }

    /// Parses a JSON document (the inverse of [`Json::write`]).
    ///
    /// Integers without a fraction or exponent parse as [`Json::UInt`]
    /// when non-negative and [`Json::Int`] when negative; anything else
    /// numeric parses as [`Json::Num`]. Trailing non-whitespace after the
    /// document is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] carrying the byte offset and a
    /// description of what went wrong.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Looks up a field of an object; `None` for missing fields and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `f64` ([`Json::Int`], [`Json::UInt`] and
    /// [`Json::Num`]); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to a compact string (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Why a JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset where the parser stopped.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting depth beyond which the parser bails out rather than risking a
/// stack overflow on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Copy the full UTF-8 sequence starting here.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|b| b & 0xC0 == 0x80 && self.pos - start < 4)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let unit = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by \u + low.
        let code = if (0xD800..0xDC00).contains(&unit) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.error("invalid low surrogate"));
                }
                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
            } else {
                return Err(self.error("unpaired high surrogate"));
            }
        } else if (0xDC00..0xE000).contains(&unit) {
            return Err(self.error("unpaired low surrogate"));
        } else {
            unit
        };
        char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digit_start = self.pos;
        if self.digits()? > 1 && self.bytes[digit_start] == b'0' {
            return Err(self.error("leading zero"));
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }

    /// Consumes at least one digit; returns how many.
    fn digits(&mut self) -> Result<usize, JsonParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected digit"));
        }
        Ok(self.pos - start)
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` prints the shortest representation that round-trips; add `.0`
    // when it looks like an integer so the value stays typed as a float.
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Conversion to a [`Json`] value; the in-repo replacement for deriving
/// `serde::Serialize`. Implementations must emit fields in declaration
/// order to keep artifact layouts stable.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialise() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn float_round_trips() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -0.0007] {
            let s = Json::Num(x).to_string();
            let back: f64 = s.parse().unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::from("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let j = Json::obj([
            ("zeta", Json::from(1u64)),
            ("alpha", Json::from(2u64)),
            ("mid", Json::from(3u64)),
        ]);
        assert_eq!(j.to_string(), r#"{"zeta":1,"alpha":2,"mid":3}"#);
    }

    #[test]
    fn nested_structures() {
        let j = Json::obj([(
            "rows",
            Json::arr([Json::obj([("ci", Json::pair(0.1, 0.2))])]),
        )]);
        assert_eq!(j.to_string(), r#"{"rows":[{"ci":[0.1,0.2]}]}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj([
            ("group", Json::from("substrates")),
            (
                "benchmarks",
                Json::arr([Json::obj([
                    ("name", Json::from("pid_single_run")),
                    ("samples", Json::from(30u64)),
                    ("median_ns", Json::from(1044.5)),
                    ("neg", Json::Int(-3)),
                    ("flag", Json::Bool(true)),
                    ("none", Json::Null),
                ])]),
            ),
        ]);
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let j = Json::parse(" { \"a\\n\\\"b\" : [ 1 , -2.5e3 , \"\\u0041\\ud83d\\ude00\" ] } ")
            .unwrap();
        let arr = j.get("a\n\"b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::UInt(1));
        assert_eq!(arr[1], Json::Num(-2500.0));
        assert_eq!(arr[2].as_str().unwrap(), "A😀");
    }

    #[test]
    fn parse_number_typing() {
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Num(7.0));
        assert_eq!(
            Json::parse(&u64::MAX.to_string()).unwrap(),
            Json::UInt(u64::MAX)
        );
        // Too big for u64 and i64: falls back to float.
        assert!(matches!(
            Json::parse("99999999999999999999999").unwrap(),
            Json::Num(_)
        ));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "tru",
            "\"abc",
            "\"\\q\"",
            "1 2",
            "[1]]",
            "nul",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn accessors_navigate_reports() {
        let j = Json::parse(r#"{"benchmarks":[{"name":"x","median_ns":12.5}]}"#).unwrap();
        let b = &j.get("benchmarks").unwrap().as_arr().unwrap()[0];
        assert_eq!(b.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(b.get("median_ns").unwrap().as_f64(), Some(12.5));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
        assert_eq!(Json::Int(-2).as_f64(), Some(-2.0));
        assert_eq!(Json::UInt(2).as_f64(), Some(2.0));
        assert_eq!(Json::Null.as_f64(), None);
        assert_eq!(Json::Null.as_str(), None);
        assert_eq!(Json::Null.as_arr(), None);
    }

    #[test]
    fn vec_to_json_maps_elements() {
        struct P(u64);
        impl ToJson for P {
            fn to_json(&self) -> Json {
                Json::obj([("v", Json::UInt(self.0))])
            }
        }
        let v = vec![P(1), P(2)];
        assert_eq!(v.to_json().to_string(), r#"[{"v":1},{"v":2}]"#);
    }
}
