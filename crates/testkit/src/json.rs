//! A minimal JSON value type and writer.
//!
//! Replaces the `serde`/`serde_json` pair for the workspace's report
//! artifacts. Objects preserve insertion order, so a hand-written
//! `to_json` emits fields exactly in declaration order — the same layout a
//! `#[derive(Serialize)]` produced, which keeps downstream consumers of
//! the `BENCH_*.json` and figure artifacts working unchanged.
//!
//! ```
//! use nlft_testkit::json::Json;
//!
//! let report = Json::obj([
//!     ("label", Json::from("NLFT/degraded")),
//!     ("points", Json::arr([Json::pair(0.0, 1.0), Json::pair(730.0, 0.97)])),
//!     ("mttf_years", Json::from(1.927)),
//! ]);
//! assert_eq!(
//!     report.to_string(),
//!     r#"{"label":"NLFT/degraded","points":[[0.0,1.0],[730.0,0.97]],"mttf_years":1.927}"#
//! );
//! ```

use std::fmt;

/// A JSON value. Objects keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer (emitted without a decimal point).
    UInt(u64),
    /// A floating-point number. Non-finite values serialise as `null`
    /// (JSON has no NaN/Infinity), matching `serde_json`'s lossy mode.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(field, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(fields: I) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A two-element number array — the serialisation of an `(f64, f64)`
    /// tuple, as in the figure point lists.
    pub fn pair(a: f64, b: f64) -> Json {
        Json::Arr(vec![Json::Num(a), Json::Num(b)])
    }

    /// Serialises to a compact string (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` prints the shortest representation that round-trips; add `.0`
    // when it looks like an integer so the value stays typed as a float.
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Conversion to a [`Json`] value; the in-repo replacement for deriving
/// `serde::Serialize`. Implementations must emit fields in declaration
/// order to keep artifact layouts stable.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialise() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn float_round_trips() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -0.0007] {
            let s = Json::Num(x).to_string();
            let back: f64 = s.parse().unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::from("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let j = Json::obj([
            ("zeta", Json::from(1u64)),
            ("alpha", Json::from(2u64)),
            ("mid", Json::from(3u64)),
        ]);
        assert_eq!(j.to_string(), r#"{"zeta":1,"alpha":2,"mid":3}"#);
    }

    #[test]
    fn nested_structures() {
        let j = Json::obj([(
            "rows",
            Json::arr([Json::obj([("ci", Json::pair(0.1, 0.2))])]),
        )]);
        assert_eq!(j.to_string(), r#"{"rows":[{"ci":[0.1,0.2]}]}"#);
    }

    #[test]
    fn vec_to_json_maps_elements() {
        struct P(u64);
        impl ToJson for P {
            fn to_json(&self) -> Json {
                Json::obj([("v", Json::UInt(self.0))])
            }
        }
        let v = vec![P(1), P(2)];
        assert_eq!(v.to_json().to_string(), r#"[{"v":1},{"v":2}]"#);
    }
}
