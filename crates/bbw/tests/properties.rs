//! Property-based tests for the brake-by-wire models: the paper's
//! qualitative orderings must hold over the whole parameter space, not
//! just at the §3.3 point.

use nlft_bbw::analytic::{BbwSystem, Functionality, Policy};
use nlft_bbw::montecarlo::{run_monte_carlo, MonteCarloConfig};
use nlft_bbw::params::BbwParams;
use nlft_reliability::model::ReliabilityModel;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = BbwParams> {
    (
        1e-7f64..1e-4,   // lambda_p
        1.0f64..100.0,   // transient/permanent ratio
        0.5f64..1.0,     // coverage
        0.0f64..1.0,     // p_t raw
        0.0f64..1.0,     // p_om raw (normalised below)
        10.0f64..1e4,    // mu_r
        10.0f64..1e4,    // mu_om
    )
        .prop_map(|(lp, ratio, cov, a, b, mu_r, mu_om)| {
            // Normalise the split (p_t, p_om, p_fs) from two raw draws.
            let total = a + b + 0.05;
            let mut p = BbwParams::paper();
            p.lambda_p = lp;
            p.lambda_t = lp * ratio;
            p.coverage = cov;
            p.p_t = a / total;
            p.p_om = b / total;
            p.p_fs = 0.05 / total;
            p.mu_r = mu_r;
            p.mu_om = mu_om;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// System reliability is a valid, non-increasing function of time for
    /// any parameters.
    #[test]
    fn reliability_valid_and_monotone(params in arb_params(), policy in 0u8..2, func in 0u8..2) {
        prop_assume!(params.validate().is_ok());
        let policy = if policy == 0 { Policy::FailSilent } else { Policy::Nlft };
        let func = if func == 0 { Functionality::Full } else { Functionality::Degraded };
        let sys = BbwSystem::new(&params, policy, func);
        let mut last = 1.0f64;
        for i in 0..12 {
            let r = sys.reliability(i as f64 * 800.0);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
            prop_assert!(r <= last + 1e-9, "R increased: {last} -> {r}");
            last = r;
        }
    }

    /// NLFT nodes never hurt: for any parameters, the NLFT system is at
    /// least as reliable as the FS system in the same mode.
    #[test]
    fn nlft_never_worse_than_fs(params in arb_params(), func in 0u8..2, t in 10.0f64..9000.0) {
        prop_assume!(params.validate().is_ok());
        let func = if func == 0 { Functionality::Full } else { Functionality::Degraded };
        let fs = BbwSystem::new(&params, Policy::FailSilent, func);
        let nlft = BbwSystem::new(&params, Policy::Nlft, func);
        prop_assert!(
            nlft.reliability(t) >= fs.reliability(t) - 1e-9,
            "NLFT {} < FS {} at t={t}",
            nlft.reliability(t),
            fs.reliability(t)
        );
    }

    /// Degraded functionality never hurts either.
    #[test]
    fn degraded_never_worse_than_full(params in arb_params(), policy in 0u8..2, t in 10.0f64..9000.0) {
        prop_assume!(params.validate().is_ok());
        let policy = if policy == 0 { Policy::FailSilent } else { Policy::Nlft };
        let full = BbwSystem::new(&params, policy, Functionality::Full);
        let degraded = BbwSystem::new(&params, policy, Functionality::Degraded);
        prop_assert!(degraded.reliability(t) >= full.reliability(t) - 1e-9);
    }

    /// Better coverage never hurts.
    #[test]
    fn coverage_monotonicity(params in arb_params(), t in 10.0f64..9000.0, delta in 0.001f64..0.2) {
        prop_assume!(params.validate().is_ok());
        let low = params;
        let mut high = params;
        high.coverage = (params.coverage + delta).min(1.0);
        prop_assume!(high.validate().is_ok());
        let sys_low = BbwSystem::new(&low, Policy::Nlft, Functionality::Degraded);
        let sys_high = BbwSystem::new(&high, Policy::Nlft, Functionality::Degraded);
        prop_assert!(sys_high.reliability(t) >= sys_low.reliability(t) - 1e-9);
    }

    /// Subsystem product law holds everywhere (independence composition).
    #[test]
    fn system_is_product_of_subsystems(params in arb_params(), t in 0.0f64..9000.0) {
        prop_assume!(params.validate().is_ok());
        let sys = BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded);
        let product = sys.central_unit().reliability(t) * sys.wheel_subsystem().reliability(t);
        prop_assert!((sys.reliability(t) - product).abs() < 1e-9);
    }

    /// Monte-Carlo is deterministic in the seed and thread-count invariant
    /// for arbitrary seeds.
    #[test]
    fn montecarlo_thread_invariance(seed in any::<u64>()) {
        let mut cfg = MonteCarloConfig::one_year(Policy::Nlft, Functionality::Degraded, 150, seed);
        cfg.grid_hours = vec![4_000.0, 8_760.0];
        let seq = run_monte_carlo(&cfg);
        cfg.threads = 3;
        let par = run_monte_carlo(&cfg);
        prop_assert_eq!(seq.failures, par.failures);
        prop_assert_eq!(seq.reliability(), par.reliability());
    }
}
