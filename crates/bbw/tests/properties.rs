//! Property-based tests for the brake-by-wire models: the paper's
//! qualitative orderings must hold over the whole parameter space, not
//! just at the §3.3 point.

use nlft_bbw::analytic::{BbwSystem, Functionality, Policy};
use nlft_bbw::montecarlo::{run_monte_carlo, MonteCarloConfig};
use nlft_bbw::params::BbwParams;
use nlft_reliability::model::ReliabilityModel;
use nlft_testkit::prop::Suite;
use nlft_testkit::rng::TkRng;
use nlft_testkit::{prop_assert, prop_assert_eq, prop_assume};

const SUITE: Suite = Suite::new(0x5EED_00BB).cases(48);

fn arb_params(r: &mut TkRng) -> BbwParams {
    let lp = r.f64_range(1e-7, 1e-4); // lambda_p
    let ratio = r.f64_range(1.0, 100.0); // transient/permanent ratio
    let cov = r.f64_range(0.5, 1.0); // coverage
    let a = r.f64_range(0.0, 1.0); // p_t raw
    let b = r.f64_range(0.0, 1.0); // p_om raw (normalised below)
    let mu_r = r.f64_range(10.0, 1e4);
    let mu_om = r.f64_range(10.0, 1e4);
    // Normalise the split (p_t, p_om, p_fs) from two raw draws.
    let total = a + b + 0.05;
    let mut p = BbwParams::paper();
    p.lambda_p = lp;
    p.lambda_t = lp * ratio;
    p.coverage = cov;
    p.p_t = a / total;
    p.p_om = b / total;
    p.p_fs = 0.05 / total;
    p.mu_r = mu_r;
    p.mu_om = mu_om;
    p
}

/// System reliability is a valid, non-increasing function of time for
/// any parameters.
#[test]
fn reliability_valid_and_monotone() {
    SUITE.check(
        "reliability_valid_and_monotone",
        |r: &mut TkRng| (arb_params(r), r.range(0, 2) as u8, r.range(0, 2) as u8),
        |(params, policy, func)| {
            prop_assume!(params.validate().is_ok());
            let policy = if *policy == 0 { Policy::FailSilent } else { Policy::Nlft };
            let func = if *func == 0 { Functionality::Full } else { Functionality::Degraded };
            let sys = BbwSystem::new(params, policy, func);
            let mut last = 1.0f64;
            for i in 0..12 {
                let r = sys.reliability(i as f64 * 800.0);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
                prop_assert!(r <= last + 1e-9, "R increased: {last} -> {r}");
                last = r;
            }
            Ok(())
        },
    );
}

/// NLFT nodes never hurt: for any parameters, the NLFT system is at
/// least as reliable as the FS system in the same mode.
#[test]
fn nlft_never_worse_than_fs() {
    SUITE.check(
        "nlft_never_worse_than_fs",
        |r: &mut TkRng| (arb_params(r), r.range(0, 2) as u8, r.f64_range(10.0, 9000.0)),
        |(params, func, t)| {
            prop_assume!(params.validate().is_ok());
            // The paper's premise (§3.2): an omission window is at most as
            // long as a full restart. When omission recovery is *slower*
            // than a restart, an NLFT node lingers longer in the vulnerable
            // one-node-short state than an FS node would, and the ordering
            // genuinely inverts — that regime is outside the claim.
            prop_assume!(params.mu_om >= params.mu_r);
            let t = *t;
            let func = if *func == 0 { Functionality::Full } else { Functionality::Degraded };
            let fs = BbwSystem::new(params, Policy::FailSilent, func);
            let nlft = BbwSystem::new(params, Policy::Nlft, func);
            prop_assert!(
                nlft.reliability(t) >= fs.reliability(t) - 1e-9,
                "NLFT {} < FS {} at t={t}",
                nlft.reliability(t),
                fs.reliability(t)
            );
            Ok(())
        },
    );
}

/// Degraded functionality never hurts either.
#[test]
fn degraded_never_worse_than_full() {
    SUITE.check(
        "degraded_never_worse_than_full",
        |r: &mut TkRng| (arb_params(r), r.range(0, 2) as u8, r.f64_range(10.0, 9000.0)),
        |(params, policy, t)| {
            prop_assume!(params.validate().is_ok());
            let t = *t;
            let policy = if *policy == 0 { Policy::FailSilent } else { Policy::Nlft };
            let full = BbwSystem::new(params, policy, Functionality::Full);
            let degraded = BbwSystem::new(params, policy, Functionality::Degraded);
            prop_assert!(degraded.reliability(t) >= full.reliability(t) - 1e-9);
            Ok(())
        },
    );
}

/// Better coverage never hurts.
#[test]
fn coverage_monotonicity() {
    SUITE.check(
        "coverage_monotonicity",
        |r: &mut TkRng| (arb_params(r), r.f64_range(10.0, 9000.0), r.f64_range(0.001, 0.2)),
        |(params, t, delta)| {
            prop_assume!(params.validate().is_ok());
            let t = *t;
            let low = params.clone();
            let mut high = params.clone();
            high.coverage = (params.coverage + delta).min(1.0);
            prop_assume!(high.validate().is_ok());
            let sys_low = BbwSystem::new(&low, Policy::Nlft, Functionality::Degraded);
            let sys_high = BbwSystem::new(&high, Policy::Nlft, Functionality::Degraded);
            prop_assert!(sys_high.reliability(t) >= sys_low.reliability(t) - 1e-9);
            Ok(())
        },
    );
}

/// Subsystem product law holds everywhere (independence composition).
#[test]
fn system_is_product_of_subsystems() {
    SUITE.check(
        "system_is_product_of_subsystems",
        |r: &mut TkRng| (arb_params(r), r.f64_range(0.0, 9000.0)),
        |(params, t)| {
            prop_assume!(params.validate().is_ok());
            let t = *t;
            let sys = BbwSystem::new(params, Policy::Nlft, Functionality::Degraded);
            let product = sys.central_unit().reliability(t) * sys.wheel_subsystem().reliability(t);
            prop_assert!((sys.reliability(t) - product).abs() < 1e-9);
            Ok(())
        },
    );
}

/// Monte-Carlo is deterministic in the seed and thread-count invariant
/// for arbitrary seeds.
#[test]
fn montecarlo_thread_invariance() {
    SUITE.check(
        "montecarlo_thread_invariance",
        |r: &mut TkRng| r.next_u64(),
        |&seed| {
            let mut cfg = MonteCarloConfig::one_year(Policy::Nlft, Functionality::Degraded, 150, seed);
            cfg.grid_hours = vec![4_000.0, 8_760.0];
            let seq = run_monte_carlo(&cfg);
            cfg.threads = 3;
            let par = run_monte_carlo(&cfg);
            prop_assert_eq!(seq.failures, par.failures);
            prop_assert_eq!(seq.reliability(), par.reliability());
            Ok(())
        },
    );
}
