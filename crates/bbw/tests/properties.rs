//! Property-based tests for the brake-by-wire models: the paper's
//! qualitative orderings must hold over the whole parameter space, not
//! just at the §3.3 point — and the value-domain layers must mask or
//! detect *every* single injected fault, not just the hand-picked ones.

use nlft_bbw::actuator::{ActuatorFault, ActuatorMonitor, ActuatorMonitorConfig, WheelActuator};
use nlft_bbw::analytic::{BbwSystem, Functionality, Policy};
use nlft_bbw::cluster::BbwCluster;
use nlft_bbw::montecarlo::{run_monte_carlo, MonteCarloConfig};
use nlft_bbw::params::BbwParams;
use nlft_bbw::sensor::{PedalSensorArray, PedalVoterConfig, SensorFault, PEDAL_MAX};
use nlft_bbw::value_campaign::{run_value_domain_campaign, ValueDomainCampaignConfig};
use nlft_reliability::model::ReliabilityModel;
use nlft_sim::rng::RngStream;
use nlft_testkit::prop::Suite;
use nlft_testkit::rng::TkRng;
use nlft_testkit::{prop_assert, prop_assert_eq, prop_assume};

const SUITE: Suite = Suite::new(0x5EED_00BB).cases(48);

fn arb_params(r: &mut TkRng) -> BbwParams {
    let lp = r.f64_range(1e-7, 1e-4); // lambda_p
    let ratio = r.f64_range(1.0, 100.0); // transient/permanent ratio
    let cov = r.f64_range(0.5, 1.0); // coverage
    let a = r.f64_range(0.0, 1.0); // p_t raw
    let b = r.f64_range(0.0, 1.0); // p_om raw (normalised below)
    let mu_r = r.f64_range(10.0, 1e4);
    let mu_om = r.f64_range(10.0, 1e4);
    // Normalise the split (p_t, p_om, p_fs) from two raw draws.
    let total = a + b + 0.05;
    let mut p = BbwParams::paper();
    p.lambda_p = lp;
    p.lambda_t = lp * ratio;
    p.coverage = cov;
    p.p_t = a / total;
    p.p_om = b / total;
    p.p_fs = 0.05 / total;
    p.mu_r = mu_r;
    p.mu_om = mu_om;
    p
}

/// System reliability is a valid, non-increasing function of time for
/// any parameters.
#[test]
fn reliability_valid_and_monotone() {
    SUITE.check(
        "reliability_valid_and_monotone",
        |r: &mut TkRng| (arb_params(r), r.range(0, 2) as u8, r.range(0, 2) as u8),
        |(params, policy, func)| {
            prop_assume!(params.validate().is_ok());
            let policy = if *policy == 0 {
                Policy::FailSilent
            } else {
                Policy::Nlft
            };
            let func = if *func == 0 {
                Functionality::Full
            } else {
                Functionality::Degraded
            };
            let sys = BbwSystem::new(params, policy, func);
            let mut last = 1.0f64;
            for i in 0..12 {
                let r = sys.reliability(i as f64 * 800.0);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
                prop_assert!(r <= last + 1e-9, "R increased: {last} -> {r}");
                last = r;
            }
            Ok(())
        },
    );
}

/// NLFT nodes never hurt: for any parameters, the NLFT system is at
/// least as reliable as the FS system in the same mode.
#[test]
fn nlft_never_worse_than_fs() {
    SUITE.check(
        "nlft_never_worse_than_fs",
        |r: &mut TkRng| {
            (
                arb_params(r),
                r.range(0, 2) as u8,
                r.f64_range(10.0, 9000.0),
            )
        },
        |(params, func, t)| {
            prop_assume!(params.validate().is_ok());
            // The paper's premise (§3.2): an omission window is at most as
            // long as a full restart. When omission recovery is *slower*
            // than a restart, an NLFT node lingers longer in the vulnerable
            // one-node-short state than an FS node would, and the ordering
            // genuinely inverts — that regime is outside the claim.
            prop_assume!(params.mu_om >= params.mu_r);
            let t = *t;
            let func = if *func == 0 {
                Functionality::Full
            } else {
                Functionality::Degraded
            };
            let fs = BbwSystem::new(params, Policy::FailSilent, func);
            let nlft = BbwSystem::new(params, Policy::Nlft, func);
            prop_assert!(
                nlft.reliability(t) >= fs.reliability(t) - 1e-9,
                "NLFT {} < FS {} at t={t}",
                nlft.reliability(t),
                fs.reliability(t)
            );
            Ok(())
        },
    );
}

/// Degraded functionality never hurts either.
#[test]
fn degraded_never_worse_than_full() {
    SUITE.check(
        "degraded_never_worse_than_full",
        |r: &mut TkRng| {
            (
                arb_params(r),
                r.range(0, 2) as u8,
                r.f64_range(10.0, 9000.0),
            )
        },
        |(params, policy, t)| {
            prop_assume!(params.validate().is_ok());
            let t = *t;
            let policy = if *policy == 0 {
                Policy::FailSilent
            } else {
                Policy::Nlft
            };
            let full = BbwSystem::new(params, policy, Functionality::Full);
            let degraded = BbwSystem::new(params, policy, Functionality::Degraded);
            prop_assert!(degraded.reliability(t) >= full.reliability(t) - 1e-9);
            Ok(())
        },
    );
}

/// Better coverage never hurts.
#[test]
fn coverage_monotonicity() {
    SUITE.check(
        "coverage_monotonicity",
        |r: &mut TkRng| {
            (
                arb_params(r),
                r.f64_range(10.0, 9000.0),
                r.f64_range(0.001, 0.2),
            )
        },
        |(params, t, delta)| {
            prop_assume!(params.validate().is_ok());
            let t = *t;
            let low = *params;
            let mut high = *params;
            high.coverage = (params.coverage + delta).min(1.0);
            prop_assume!(high.validate().is_ok());
            let sys_low = BbwSystem::new(&low, Policy::Nlft, Functionality::Degraded);
            let sys_high = BbwSystem::new(&high, Policy::Nlft, Functionality::Degraded);
            prop_assert!(sys_high.reliability(t) >= sys_low.reliability(t) - 1e-9);
            Ok(())
        },
    );
}

/// Subsystem product law holds everywhere (independence composition).
#[test]
fn system_is_product_of_subsystems() {
    SUITE.check(
        "system_is_product_of_subsystems",
        |r: &mut TkRng| (arb_params(r), r.f64_range(0.0, 9000.0)),
        |(params, t)| {
            prop_assume!(params.validate().is_ok());
            let t = *t;
            let sys = BbwSystem::new(params, Policy::Nlft, Functionality::Degraded);
            let product = sys.central_unit().reliability(t) * sys.wheel_subsystem().reliability(t);
            prop_assert!((sys.reliability(t) - product).abs() < 1e-9);
            Ok(())
        },
    );
}

/// Draws one arbitrary sensor fault, wider than the campaign's ranges.
fn arb_sensor_fault(r: &mut TkRng) -> SensorFault {
    match r.range(0, 4) {
        0 => SensorFault::StuckAt(r.range(0, u64::from(PEDAL_MAX) + 1) as u32),
        1 => {
            let magnitude = r.range(1, 4000) as i64;
            SensorFault::Offset(if r.bool() { magnitude } else { -magnitude })
        }
        2 => SensorFault::Drift {
            per_cycle: r.range(1, 300) as i64,
        },
        _ => SensorFault::NoiseBurst {
            amplitude: r.range(1, 4000) as u32,
            cycles: r.range(1, 20) as u32,
        },
    }
}

/// An out-of-range pedal value never panics anything and is never
/// silent: the voted value stays in range and the boundary clamp raises
/// a flag the moment the physical value leaves `[0, PEDAL_MAX]`.
#[test]
fn out_of_range_pedal_is_clamped_and_flagged_never_panics() {
    Suite::new(0x5EED_0A11).cases(400).check(
        "out_of_range_pedal_is_clamped_and_flagged_never_panics",
        |r: &mut TkRng| {
            let truths: Vec<u32> = (0..24)
                .map(|_| {
                    if r.bool() {
                        r.range(0, u64::from(PEDAL_MAX) + 1) as u32
                    } else {
                        // Broken linkage / EMI: far outside the physical range.
                        r.range(u64::from(PEDAL_MAX) + 1, 4_000_000_000) as u32
                    }
                })
                .collect();
            let fault = if r.bool() {
                Some((
                    r.usize_range(0, 3),
                    arb_sensor_fault(r),
                    r.range(0, 12) as u32,
                ))
            } else {
                None
            };
            (truths, fault, r.next_u64())
        },
        |(truths, fault, seed)| {
            let mut array =
                PedalSensorArray::new(PedalVoterConfig::default(), RngStream::new(*seed).fork("p"));
            if let Some((channel, fault, onset)) = fault {
                array.attach_fault(*channel, *fault, *onset);
            }
            for (cycle, &truth) in truths.iter().enumerate() {
                let s = array.sample(cycle as u32, truth);
                prop_assert!(s.voted <= PEDAL_MAX, "voted {} out of range", s.voted);
                prop_assert!(
                    truth <= PEDAL_MAX || s.clamped,
                    "truth {truth} out of range but no clamp flag at cycle {cycle}"
                );
            }
            Ok(())
        },
    );
}

/// Coverage claim, sensor half: *any* single-channel fault is masked by
/// the median vote or detected by plausibility/demotion — the array
/// never delivers a silently wrong pedal value.
#[test]
fn any_single_sensor_fault_is_masked_or_detected() {
    Suite::new(0x5EED_0512).cases(5000).check(
        "any_single_sensor_fault_is_masked_or_detected",
        |r: &mut TkRng| {
            let start = r.range(0, 1000) as u32;
            let slope = r.range(0, 200) as u32;
            let cap = r.range(1000, u64::from(PEDAL_MAX) + 1) as u32;
            let channel = r.usize_range(0, 3);
            let onset = r.range(0, 20) as u32;
            (
                start,
                slope,
                cap,
                channel,
                arb_sensor_fault(r),
                onset,
                r.next_u64(),
            )
        },
        |&(start, slope, cap, channel, fault, onset, seed)| {
            let mut array =
                PedalSensorArray::new(PedalVoterConfig::default(), RngStream::new(seed).fork("p"));
            array.attach_fault(channel, fault, onset);
            for cycle in 0..48u32 {
                let truth = (start + slope * cycle).min(cap);
                let s = array.sample(cycle, truth);
                prop_assert!(s.voted <= PEDAL_MAX);
            }
            prop_assert_eq!(
                array.stats().undetected_error_cycles,
                0,
                "silent sensing failure under {:?} on channel {} at onset {}",
                fault,
                channel,
                onset
            );
            Ok(())
        },
    );
}

/// Coverage claim, actuator half: *any* single actuator fault is masked
/// (its force error stays within the monitor's tolerance) or detected
/// (the monitor trips within its m-in-k window) — a large error never
/// persists past the window with the monitor silent.
#[test]
fn any_single_actuator_fault_is_masked_or_detected() {
    Suite::new(0x5EED_0AC2).cases(5000).check(
        "any_single_actuator_fault_is_masked_or_detected",
        |r: &mut TkRng| {
            let start = r.range(0, 500) as u32;
            let slope = r.range(20, 80) as u32;
            let cap = r.range(1500, 3800) as u32;
            let fault = match r.range(0, 3) {
                0 => ActuatorFault::Stuck,
                1 => ActuatorFault::Runaway {
                    step: r.range(50, 800) as u32,
                },
                _ => {
                    let magnitude = r.range(20, 500) as i64;
                    ActuatorFault::Offset(if r.bool() { magnitude } else { -magnitude })
                }
            };
            (start, slope, cap, fault, r.range(0, 24) as u32)
        },
        |&(start, slope, cap, fault, onset)| {
            let config = ActuatorMonitorConfig::default();
            let mut act = WheelActuator::new();
            act.attach_fault(fault, onset);
            let mut mon = ActuatorMonitor::new(config);
            let mut overrun_streak = 0u32;
            for cycle in 0..60u32 {
                let demand = (start + slope * cycle).min(cap);
                let measured = act.apply(cycle, demand);
                let verdict = mon.observe(demand, measured);
                // Mirror the cluster's silent-failure accounting: with
                // the fault active and the monitor untripped, a force
                // error above tolerance must not persist beyond the
                // monitor's own window.
                let error = measured.abs_diff(demand);
                if cycle >= onset && !verdict.tripped && error > config.tolerance {
                    overrun_streak += 1;
                    prop_assert!(
                        overrun_streak <= config.window_cycles,
                        "silent actuator failure: {fault:?} at onset {onset}, demand \
                         {demand}, measured {measured}, streak {overrun_streak}"
                    );
                } else {
                    overrun_streak = 0;
                }
            }
            Ok(())
        },
    );
}

/// The end-to-end version on the executable cluster: a wildly
/// out-of-range pedal profile never panics the loop, the clamp is
/// reported, and the wheel forces stay inside the physical range.
#[test]
fn cluster_survives_out_of_range_pedal_profiles() {
    Suite::new(0x5EED_0C15).cases(8).check(
        "cluster_survives_out_of_range_pedal_profiles",
        |r: &mut TkRng| {
            (
                r.range(u64::from(PEDAL_MAX) + 1, 1_000_000_000) as u32,
                r.range(0, 100_000) as u32,
            )
        },
        |&(base, slope)| {
            let mut cluster = BbwCluster::new();
            let report = cluster.run(16, move |c| base.saturating_add(slope * c));
            prop_assert!(
                report.value.pedal_clamped_cycles > 0,
                "clamp must be visible"
            );
            for record in &report.records {
                for force in record.wheel_force.iter().flatten() {
                    prop_assert!(*force <= PEDAL_MAX, "force {force} out of range");
                }
            }
            Ok(())
        },
    );
}

/// System-level coverage claim for arbitrary seeds (the lib test pins
/// one seed; this sweeps them): a single value-domain fault per trial is
/// never silent and never costs braking service.
#[test]
fn single_fault_campaigns_have_no_silent_failures_for_any_seed() {
    Suite::new(0x5EED_0CA3).cases(10).check(
        "single_fault_campaigns_have_no_silent_failures_for_any_seed",
        |r: &mut TkRng| r.next_u64(),
        |&seed| {
            let mut cfg = ValueDomainCampaignConfig::single_fault(6, seed);
            cfg.cycles = 20;
            let result = run_value_domain_campaign(&cfg);
            prop_assert_eq!(
                result.outcomes.undetected,
                0,
                "silent trial under seed {}",
                seed
            );
            prop_assert_eq!(result.outcomes.service_lost, 0);
            prop_assert_eq!(result.undetected_value_failures, 0);
            Ok(())
        },
    );
}

/// Monte-Carlo is deterministic in the seed and thread-count invariant
/// for arbitrary seeds.
#[test]
fn montecarlo_thread_invariance() {
    SUITE.check(
        "montecarlo_thread_invariance",
        |r: &mut TkRng| r.next_u64(),
        |&seed| {
            let mut cfg =
                MonteCarloConfig::one_year(Policy::Nlft, Functionality::Degraded, 150, seed);
            cfg.grid_hours = vec![4_000.0, 8_760.0];
            let seq = run_monte_carlo(&cfg);
            cfg.threads = 3;
            let par = run_monte_carlo(&cfg);
            prop_assert_eq!(seq.failures, par.failures);
            prop_assert_eq!(seq.reliability(), par.reliability());
            Ok(())
        },
    );
}
