//! The scenario zoo's executable guarantees: every zoo file runs
//! through the DSL pipeline bit-identically at 1, 2 and 5 threads and
//! matches its golden pin, and the two reference scenarios are proven
//! equivalent — same verdict counts — to their pre-existing hand-wired
//! campaign counterparts.

use std::path::PathBuf;

use nlft_bbw::cluster_campaign::{run_net_storm_campaign, NetStormCampaignConfig};
use nlft_bbw::scenario::{check_accept, run_scenario};
use nlft_core::multicore_campaign::{run_multicore_campaign, MulticoreCampaignConfig};
use nlft_reliability::scenario::{parse_scenario, ScenarioSpec};

fn zoo() -> Vec<(String, ScenarioSpec)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("scenarios");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("scenarios/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let file = p.file_name().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&p).expect("zoo file readable");
            let spec = parse_scenario(&source).unwrap_or_else(|e| panic!("{file}: {e}"));
            (file, spec)
        })
        .collect()
}

fn by_name(name: &str) -> ScenarioSpec {
    zoo()
        .into_iter()
        .map(|(_, s)| s)
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario `{name}` in the zoo"))
}

/// The CI contract: every zoo scenario is thread-count invariant and
/// bit-identical to its golden pin, and its acceptance clause holds.
#[test]
fn zoo_pins_hold_at_1_2_and_5_threads() {
    for (file, spec) in zoo() {
        let one = run_scenario(&spec, 1).unwrap_or_else(|e| panic!("{file}: {e}"));
        let two = run_scenario(&spec, 2).unwrap_or_else(|e| panic!("{file}: {e}"));
        let five = run_scenario(&spec, 5).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(one, two, "{file}: 2-thread run diverged");
        assert_eq!(one, five, "{file}: 5-thread run diverged");
        let failures = check_accept(&spec, &one);
        assert!(failures.is_empty(), "{file}: {failures:?}");
    }
}

/// Equivalence proof #1: the DSL's `net-storm-nominal` is the same
/// experiment as the hand-wired golden-pinned storm campaign.
#[test]
fn net_storm_nominal_equals_hand_wired_campaign() {
    let spec = by_name("net-storm-nominal");
    let outcome = run_scenario(&spec, 1).expect("scenario runs");

    let mut config = NetStormCampaignConfig::new(spec.trials, spec.seed);
    config.cycles = 20;
    let direct = run_net_storm_campaign(&config);

    assert_eq!(
        outcome.counter("split_membership"),
        Some(direct.outcomes.split_membership)
    );
    assert_eq!(
        outcome.counter("service_lost"),
        Some(direct.outcomes.service_lost)
    );
    assert_eq!(
        outcome.counter("degraded_episode"),
        Some(direct.outcomes.degraded_episode)
    );
    assert_eq!(
        outcome.counter("omission_only"),
        Some(direct.outcomes.omission_only)
    );
    assert_eq!(
        outcome.counter("unaffected"),
        Some(direct.outcomes.unaffected)
    );
    assert_eq!(outcome.counter("injected"), Some(direct.injected.total()));
    assert_eq!(outcome.counter("crc_rejects"), Some(direct.crc_rejects));
    assert_eq!(
        outcome.counter("guardian_blocks"),
        Some(direct.guardian_blocks)
    );
}

/// Equivalence proof #2: the DSL's `core-death-mid-section` is the same
/// experiment as the hand-wired multicore core-death campaign.
#[test]
fn core_death_mid_section_equals_hand_wired_campaign() {
    let spec = by_name("core-death-mid-section");
    let outcome = run_scenario(&spec, 1).expect("scenario runs");

    let config = MulticoreCampaignConfig::new(spec.trials, spec.seed);
    let direct = run_multicore_campaign(&config);

    assert_eq!(outcome.counter("crash"), Some(direct.crash_trials));
    assert_eq!(outcome.counter("escalated"), Some(direct.escalated_trials));
    assert_eq!(
        outcome.counter("lock_failed_crash"),
        Some(direct.lock_failed_crash_trials)
    );
    assert_eq!(
        outcome.counter("leftrs_clean"),
        Some(direct.leftrs_clean_trials)
    );
    assert_eq!(outcome.counter("lock_misses"), Some(direct.lock_misses));
    assert_eq!(
        outcome.counter("escalation_events"),
        Some(direct.escalation_events)
    );
}
