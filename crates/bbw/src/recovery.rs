//! Recovery-escalation scenarios and campaigns on the executable cluster.
//!
//! Three seeded scenarios demonstrate the three diagnoses end to end at
//! the system boundary:
//!
//! * [`transient_storm_scenario`] — a spread of one-shot transients is
//!   masked by TEM with *zero* escalation: no suspicion, no restarts,
//!   full membership throughout;
//! * [`intermittent_wheel_scenario`] — a wheel node with a recurring
//!   fault is silenced by its supervisor, restarts under the capped
//!   backoff, survives a probation relapse, and reintegrates into the
//!   bus membership within a bounded number of rounds;
//! * [`permanent_cu_scenario`] — a central-unit replica with a stuck-at
//!   processor fault is retired; the duplex selection re-forms around the
//!   surviving replica and braking continues on a single CU.
//!
//! [`run_recovery_cluster_campaign`] randomises over the three fault
//! classes; like the storm campaign it is deterministic in its seed and
//! bit-identical for any thread count.

use nlft_core::diagnosis::AlphaCountConfig;
use nlft_kernel::escalation::{EscalationPolicy, NodeHealth};
use nlft_machine::fault::{FaultTarget, IntermittentFault, StuckAtFault, TransientFault};
use nlft_net::frame::NodeId;
use nlft_sim::rng::RngStream;

use crate::cluster::{BbwCluster, ClusterInjection, ClusterReport, CU_A, CU_B, WHEELS};

const ALL_NODES: [NodeId; 6] = [CU_A, CU_B, WHEELS[0], WHEELS[1], WHEELS[2], WHEELS[3]];

/// A processor fault that essentially always activates: a flipped high PC
/// bit sends execution into unmapped memory.
fn pc_fault() -> TransientFault {
    TransientFault {
        target: FaultTarget::Pc,
        mask: 1 << 20,
    }
}

/// A storm of one-shot transients across the cluster, every node under
/// supervision. Spaced strikes never build an error streak, so the whole
/// storm must be masked with zero escalation events and zero restarts.
pub fn transient_storm_scenario(seed: u64) -> ClusterReport {
    let mut rng = RngStream::new(seed).fork("transient-storm");
    let mut cluster = BbwCluster::new();
    cluster.supervise_all(AlphaCountConfig::default(), EscalationPolicy::default());
    // One strike per node, at least three cycles apart.
    for (i, &node) in ALL_NODES.iter().enumerate() {
        cluster.inject(ClusterInjection {
            cycle: 2 + 3 * i as u32,
            node,
            copy: rng.uniform_range(0, 2) as u32,
            at_cycle: rng.uniform_range(1, 40),
            fault: pc_fault(),
        });
    }
    cluster.run(30, |_| 1200)
}

/// A wheel node developing an intermittent fault: recurrence 0.9 over a
/// 12-job burst. Returns the report and the victim so callers can check
/// its event stream. The wheel must go fail-silent, restart (possibly
/// more than once — probation relapses are expected while the burst
/// lasts), reintegrate and end the run healthy and in the membership.
pub fn intermittent_wheel_scenario(seed: u64) -> (ClusterReport, NodeId) {
    let victim = WHEELS[1];
    let mut cluster = BbwCluster::new();
    cluster.supervise_all(AlphaCountConfig::default(), EscalationPolicy::default());
    cluster.attach_intermittent(
        victim,
        IntermittentFault {
            fault: pc_fault(),
            recurrence: 0.9,
            burst_jobs: 12,
        },
        RngStream::new(seed).fork("intermittent-wheel"),
    );
    let report = cluster.run(45, |_| 1200);
    (report, victim)
}

/// A central-unit replica with a permanent stuck-at fault on its
/// processor (a high PC bit stuck at one): every job of every copy dies
/// in unmapped memory, restarts cannot help, and the supervisor must
/// retire the node with the duplex pair re-formed around `CU_B`.
pub fn permanent_cu_scenario(seed: u64) -> ClusterReport {
    let _ = seed; // the scenario is fully deterministic
    let mut cluster = BbwCluster::new();
    cluster.supervise_all(AlphaCountConfig::default(), EscalationPolicy::default());
    cluster.attach_stuck_at(
        CU_A,
        StuckAtFault {
            target: FaultTarget::Pc,
            bit: 1 << 20,
            stuck_high: true,
        },
    );
    cluster.run(40, |_| 1200)
}

/// Configuration of the randomised recovery campaign.
#[derive(Debug, Clone)]
pub struct RecoveryClusterCampaignConfig {
    /// Number of independent cluster runs.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Communication cycles per run. Must leave room for the full ladder
    /// (the default policy needs 25 job slots to retirement).
    pub cycles: u32,
    /// Worker threads; results are identical for any value.
    pub threads: usize,
}

impl RecoveryClusterCampaignConfig {
    /// A standard recovery campaign.
    pub fn new(trials: u64, seed: u64) -> Self {
        RecoveryClusterCampaignConfig {
            trials,
            seed,
            cycles: 40,
            threads: 1,
        }
    }
}

/// Per-trial verdicts of the recovery campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryClusterOutcomes {
    /// Trials run.
    pub trials: u64,
    /// Transient trials handled with zero escalation.
    pub masked_transient: u64,
    /// Intermittent trials whose victim restarted (or calmed down) and
    /// ended the run healthy.
    pub recovered: u64,
    /// Permanent trials whose victim was retired.
    pub retired: u64,
    /// Non-permanent trials ending in a retirement (misclassification).
    pub false_retirement: u64,
    /// Permanent trials whose victim was still in service at the end —
    /// stuck-ats that TEM's identical copies cannot distinguish.
    pub missed_permanent: u64,
    /// Braking service lost at any point.
    pub service_lost: u64,
    /// Everything else (trial ended mid-ladder).
    pub unresolved: u64,
}

impl RecoveryClusterOutcomes {
    fn merge(&mut self, other: &RecoveryClusterOutcomes) {
        self.trials += other.trials;
        self.masked_transient += other.masked_transient;
        self.recovered += other.recovered;
        self.retired += other.retired;
        self.false_retirement += other.false_retirement;
        self.missed_permanent += other.missed_permanent;
        self.service_lost += other.service_lost;
        self.unresolved += other.unresolved;
    }
}

/// Runs the randomised recovery campaign: each trial picks a fault class
/// (one-shot transient, intermittent wheel, stuck-at node), runs a
/// supervised cluster and classifies what the vehicle saw. Deterministic
/// in the seed and invariant in the thread count.
///
/// # Panics
///
/// Panics if `trials` is zero or `cycles < 30` (the ladder needs room).
pub fn run_recovery_cluster_campaign(
    config: &RecoveryClusterCampaignConfig,
) -> RecoveryClusterOutcomes {
    assert!(config.trials > 0, "need trials");
    assert!(
        config.cycles >= 30,
        "the escalation ladder needs >= 30 cycles"
    );
    let c = config.clone();
    let campaign = nlft_engine::indexed_campaign(
        "bbw-recovery-cluster",
        "recovery-cluster-trial",
        config.trials,
        RecoveryClusterOutcomes::default,
        move |trial, _ctx, result: &mut RecoveryClusterOutcomes| {
            result.merge(&run_recovery_shard(&c, trial, trial + 1));
        },
        |into, from| into.merge(&from),
    );
    let engine = nlft_engine::EngineConfig::with_workers(config.threads.max(1));
    nlft_engine::run_trials(campaign, &engine).acc
}

fn run_recovery_shard(
    config: &RecoveryClusterCampaignConfig,
    start: u64,
    end: u64,
) -> RecoveryClusterOutcomes {
    let root = RngStream::new(config.seed);
    let mut result = RecoveryClusterOutcomes::default();
    for trial in start..end {
        let mut rng = root.fork_indexed("recovery-cluster-trial", trial);
        let mut cluster = BbwCluster::new();
        cluster.supervise_all(AlphaCountConfig::default(), EscalationPolicy::default());
        let kind = rng.uniform_range(0, 3);
        let victim = match kind {
            0 => {
                // One-shot transient on a random node.
                let node = ALL_NODES[rng.uniform_range(0, ALL_NODES.len() as u64) as usize];
                cluster.inject(ClusterInjection {
                    cycle: rng.uniform_range(1, 10) as u32,
                    node,
                    copy: rng.uniform_range(0, 2) as u32,
                    at_cycle: rng.uniform_range(1, 40),
                    fault: pc_fault(),
                });
                node
            }
            1 => {
                // Intermittent fault on a random wheel.
                let node = WHEELS[rng.uniform_range(0, 4) as usize];
                cluster.attach_intermittent(
                    node,
                    IntermittentFault {
                        fault: pc_fault(),
                        recurrence: 0.9,
                        burst_jobs: 12,
                    },
                    rng.fork("victim-intermittent"),
                );
                node
            }
            _ => {
                // Permanent stuck-at on a random node.
                let node = ALL_NODES[rng.uniform_range(0, ALL_NODES.len() as u64) as usize];
                cluster.attach_stuck_at(
                    node,
                    StuckAtFault {
                        target: FaultTarget::Pc,
                        bit: 1 << 20,
                        stuck_high: true,
                    },
                );
                node
            }
        };
        let report = cluster.run(config.cycles, |_| 1200);
        let health = cluster.node_health(victim).expect("victim is supervised");
        result.trials += 1;
        if report.service_lost {
            result.service_lost += 1;
            continue;
        }
        let victim_retired = report.retired_nodes.contains(&victim);
        match kind {
            0 => {
                if report.escalations.is_empty() && report.restarts == 0 {
                    result.masked_transient += 1;
                } else if victim_retired {
                    result.false_retirement += 1;
                } else if health == NodeHealth::Healthy {
                    result.recovered += 1;
                } else {
                    result.unresolved += 1;
                }
            }
            1 => {
                if victim_retired {
                    result.false_retirement += 1;
                } else if health == NodeHealth::Healthy {
                    result.recovered += 1;
                } else {
                    result.unresolved += 1;
                }
            }
            _ => {
                if victim_retired {
                    result.retired += 1;
                } else {
                    result.missed_permanent += 1;
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlft_kernel::escalation::EscalationEvent;
    use nlft_net::membership::MembershipEvent;

    #[test]
    fn transient_storm_is_masked_with_zero_restarts() {
        let report = transient_storm_scenario(0x7EA5);
        assert!(!report.service_lost);
        assert_eq!(report.restarts, 0, "one-shot transients must not restart");
        assert!(
            report.escalations.is_empty(),
            "spaced one-shot strikes must not escalate: {:?}",
            report.escalations
        );
        assert!(report.retired_nodes.is_empty());
        assert_eq!(report.records.last().unwrap().members, 6);
    }

    #[test]
    fn intermittent_wheel_restarts_and_reintegrates() {
        let (report, victim) = intermittent_wheel_scenario(0x1E7E);
        assert!(!report.service_lost, "three wheels keep braking");
        let events = report.escalations_for(victim);
        assert!(
            events.contains(&EscalationEvent::WentSilent),
            "the burst must silence the wheel: {events:?}"
        );
        assert!(report.restarts >= 1, "recovery must spend a restart");
        assert!(
            events.contains(&EscalationEvent::Restarted),
            "the restart window must complete: {events:?}"
        );
        assert!(
            events.contains(&EscalationEvent::Recovered),
            "the wheel must graduate probation: {events:?}"
        );
        assert!(report.retired_nodes.is_empty(), "no retirement: {events:?}");
        // And the *membership* takes it back: an exclusion followed by a
        // reintegration, with full membership restored at the end.
        let membership_events: Vec<_> = report
            .records
            .iter()
            .flat_map(|r| r.events.iter())
            .collect();
        assert!(membership_events
            .iter()
            .any(|e| matches!(e, MembershipEvent::Excluded(n) if *n == victim)));
        assert!(membership_events
            .iter()
            .any(|e| matches!(e, MembershipEvent::Reintegrated(n) if *n == victim)));
        assert_eq!(report.records.last().unwrap().members, 6);
        assert!(!report.reintegration_latencies.is_empty());
    }

    #[test]
    fn permanent_cu_is_retired_and_duplex_reforms() {
        let report = permanent_cu_scenario(0);
        assert!(!report.service_lost, "CU_B alone must keep the service up");
        assert_eq!(report.retired_nodes, vec![CU_A]);
        let events = report.escalations_for(CU_A);
        assert!(events.contains(&EscalationEvent::Retired));
        // Restarts were tried before giving up (the budget is 3).
        assert!(report.restarts >= 1 && report.restarts <= 3);
        // After retirement the pair is permanently single.
        let last = report.records.last().unwrap();
        assert!(last.cu_single, "duplex must re-form around CU_B");
        assert_eq!(last.members, 5, "the retired replica stays excluded");
        // Wheels keep braking on CU_B's set-points.
        assert!(last.wheel_force.iter().all(|f| f.is_some()));
    }

    #[test]
    fn recovery_campaign_identical_across_thread_counts() {
        let mut cfg = RecoveryClusterCampaignConfig::new(12, 0x3E5C);
        cfg.threads = 1;
        let one = run_recovery_cluster_campaign(&cfg);
        cfg.threads = 2;
        let two = run_recovery_cluster_campaign(&cfg);
        cfg.threads = 5;
        let five = run_recovery_cluster_campaign(&cfg);
        assert_eq!(one, two, "2 threads diverged from 1");
        assert_eq!(one, five, "5 threads diverged from 1");
        // Golden pin: any change to the RNG fork labels, the fault draw
        // order, the supervisor thresholds or the cluster's cycle
        // structure shows up here.
        assert_eq!(
            (
                one.trials,
                one.masked_transient,
                one.recovered,
                one.retired,
                one.false_retirement,
                one.missed_permanent,
                one.service_lost,
                one.unresolved,
            ),
            (12, 3, 4, 5, 0, 0, 0, 0),
            "golden outcome distribution moved: {one:?}"
        );
    }

    #[test]
    fn recovery_campaign_covers_the_three_diagnoses() {
        let cfg = RecoveryClusterCampaignConfig::new(30, 0x3E5C);
        let r = run_recovery_cluster_campaign(&cfg);
        assert_eq!(r.trials, 30);
        assert!(r.masked_transient > 0, "{r:?}");
        assert!(r.recovered > 0, "{r:?}");
        assert!(r.retired > 0, "{r:?}");
        assert_eq!(r.false_retirement, 0, "{r:?}");
        assert_eq!(
            r.service_lost, 0,
            "single-node faults never lose braking: {r:?}"
        );
        let total = r.masked_transient
            + r.recovered
            + r.retired
            + r.false_retirement
            + r.missed_permanent
            + r.service_lost
            + r.unresolved;
        assert_eq!(total, r.trials);
    }
}
