//! Braking-distance degradation scoring for deadline-miss patterns.
//!
//! A weakly-hard contract talks about misses; the driver cares about
//! metres. This module closes that gap with a deterministic, integer
//! longitudinal braking model: the vehicle starts at an initial speed,
//! the brake controller job runs once per control cycle demanding a
//! ramping force, and every cycle the applied force sheds speed while
//! the remaining speed accrues stopping distance. A *missed* control
//! job cannot update the force command, so the wheel either holds the
//! last commanded force ([`MissPolicy::HoldLast`] — the BBW cluster's
//! hold-last-safe window) or releases to zero ([`MissPolicy::ZeroForce`]
//! — a fail-silent omission with no hold window).
//!
//! Scoring a miss pattern means braking twice — once with the pattern
//! (repeated cyclically until the vehicle stops), once with the all-hit
//! clean twin — and reporting the **excess stopping distance**. That is
//! the functional number the miss-pattern storm campaign attaches to
//! every pattern it finds: not "2 misses in 8" but "0.4% longer
//! stopping distance".
//!
//! Everything is integer arithmetic on `u64`, so scores are exactly
//! reproducible across platforms and thread counts.

/// What a wheel does on a cycle whose control job missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissPolicy {
    /// Keep braking on the last commanded force (hold-last-safe).
    HoldLast,
    /// Release to zero force until the next successful job.
    ZeroForce,
}

/// The deterministic longitudinal braking model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrakingModel {
    /// Initial speed in distance units per cycle.
    pub initial_speed: u32,
    /// Speed shed per cycle is `force / force_gain`.
    pub force_gain: u32,
    /// Give up after this many cycles (a run that cannot stop).
    pub max_cycles: u32,
}

impl BrakingModel {
    /// The campaign's vehicle: stops from full speed in roughly 120
    /// cycles under the clean demand ramp.
    pub fn nominal() -> Self {
        BrakingModel {
            initial_speed: 30_000,
            force_gain: 8,
            max_cycles: 2_000,
        }
    }

    /// The demand ramp the brake controller commands: the same shape as
    /// the storm campaigns' pedal profile, ramping to full force.
    pub fn demand(cycle: u32) -> u32 {
        (400 + 60 * cycle).min(3_500)
    }

    /// Brakes under `pattern` (true = the control job missed that
    /// cycle; the pattern repeats cyclically) and returns
    /// `(stopping distance, cycles, stopped)`. An empty pattern means
    /// all hits.
    pub fn brake(&self, pattern: &[bool], policy: MissPolicy) -> (u64, u32, bool) {
        let mut speed = u64::from(self.initial_speed);
        let mut distance = 0u64;
        let mut held_force = 0u32;
        let mut cycle = 0u32;
        while speed > 0 && cycle < self.max_cycles {
            distance += speed;
            let missed = !pattern.is_empty() && pattern[cycle as usize % pattern.len()];
            let applied = if missed {
                match policy {
                    MissPolicy::HoldLast => held_force,
                    MissPolicy::ZeroForce => 0,
                }
            } else {
                held_force = Self::demand(cycle);
                held_force
            };
            speed = speed.saturating_sub(u64::from(applied / self.force_gain.max(1)));
            cycle += 1;
        }
        (distance, cycle, speed == 0)
    }

    /// Scores a miss pattern against the all-hit clean twin.
    pub fn score(&self, pattern: &[bool], policy: MissPolicy) -> BrakingScore {
        let (clean_distance, clean_cycles, _) = self.brake(&[], policy);
        let (distance, cycles, stopped) = self.brake(pattern, policy);
        BrakingScore {
            clean_distance,
            distance,
            excess_distance: distance.saturating_sub(clean_distance),
            clean_stop_cycles: clean_cycles,
            stop_cycles: cycles,
            stopped,
        }
    }
}

/// The functional verdict on one miss pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrakingScore {
    /// Stopping distance of the all-hit twin.
    pub clean_distance: u64,
    /// Stopping distance under the pattern.
    pub distance: u64,
    /// Extra distance the misses cost (the headline number).
    pub excess_distance: u64,
    /// Cycles the clean twin needed to stop.
    pub clean_stop_cycles: u32,
    /// Cycles the degraded run needed (== `max_cycles` if it never
    /// stopped).
    pub stop_cycles: u32,
    /// Whether the degraded run stopped at all within the horizon.
    pub stopped: bool,
}

impl BrakingScore {
    /// Excess stopping distance as parts-per-million of the clean
    /// distance (integer, deterministic).
    pub fn excess_ppm(&self) -> u64 {
        if self.clean_distance == 0 {
            return 0;
        }
        self.excess_distance * 1_000_000 / self.clean_distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_twin_has_zero_excess() {
        let m = BrakingModel::nominal();
        let s = m.score(&[false; 8], MissPolicy::HoldLast);
        assert!(s.stopped);
        assert_eq!(s.excess_distance, 0);
        assert_eq!(s.stop_cycles, s.clean_stop_cycles);
    }

    #[test]
    fn all_miss_zero_force_never_stops() {
        let m = BrakingModel::nominal();
        let s = m.score(&[true], MissPolicy::ZeroForce);
        assert!(!s.stopped, "no force ever applied");
        assert_eq!(s.stop_cycles, m.max_cycles);
        assert!(s.excess_distance > s.clean_distance);
    }

    #[test]
    fn misses_cost_distance_and_hold_beats_release() {
        let m = BrakingModel::nominal();
        let pattern = [true, false, true, false, false, false, false, false];
        let hold = m.score(&pattern, MissPolicy::HoldLast);
        let zero = m.score(&pattern, MissPolicy::ZeroForce);
        assert!(hold.excess_distance > 0, "misses must cost distance");
        assert!(
            hold.excess_distance < zero.excess_distance,
            "hold-last-safe must beat releasing the brake"
        );
        assert!(hold.stopped && zero.stopped);
    }

    #[test]
    fn denser_patterns_cost_more() {
        let m = BrakingModel::nominal();
        let sparse = m.score(&[true, false, false, false], MissPolicy::HoldLast);
        let dense = m.score(&[true, true, false, false], MissPolicy::HoldLast);
        assert!(dense.excess_distance > sparse.excess_distance);
        assert!(dense.excess_ppm() > sparse.excess_ppm());
    }

    #[test]
    fn scores_are_pinned() {
        // Golden pin: the campaign's functional metric must stay
        // bit-identical; any model change shows up here first.
        let m = BrakingModel::nominal();
        let clean = m.score(&[], MissPolicy::HoldLast);
        assert_eq!(
            (clean.clean_distance, clean.clean_stop_cycles),
            (1_686_135, 92)
        );
        let s = m.score(&[true, false, true, false, true], MissPolicy::HoldLast);
        assert_eq!(
            (s.distance, s.stop_cycles, s.stopped),
            (1_710_598, 93, true)
        );
    }
}
