//! Monte-Carlo cross-validation of the analytic models.
//!
//! An independent, discrete-event simulation of the full six-node BBW
//! system: each node carries its own exponential fault process, faults are
//! classified by coverage and the TEM split exactly as §3.2.1 describes,
//! and repairs run at the paper's rates. Where the analytic route solves
//! two *independent* subsystem chains and multiplies, the simulation rolls
//! the joint system — agreement between the two validates both the chain
//! construction and the independence assumption.

use nlft_engine::checkpoint::{self, Checkpoint, TokenReader};
use nlft_engine::{
    run_trials_with, CampaignOptions, CampaignRun, EngineConfig, TrialCampaign, TrialCtx,
};
use nlft_sim::event::EventQueue;
use nlft_sim::rng::RngStream;
use nlft_sim::stats::{OnlineStats, SurvivalCurve};
use nlft_sim::time::{SimDuration, SimTime};

use crate::analytic::{Functionality, Policy};
use crate::params::BbwParams;

/// Number of nodes: two central-unit replicas + four wheel nodes.
pub const NUM_NODES: usize = 6;
const CU_NODES: [usize; 2] = [0, 1];
const WHEEL_NODES: [usize; 4] = [2, 3, 4, 5];

/// Monte-Carlo experiment configuration.
#[derive(Debug, Clone)]
pub struct MonteCarloConfig {
    /// Node dependability parameters.
    pub params: BbwParams,
    /// Node policy.
    pub policy: Policy,
    /// Wheel-subsystem requirement.
    pub functionality: Functionality,
    /// Mission horizon in hours.
    pub horizon_hours: f64,
    /// Number of replications.
    pub replications: u64,
    /// Master seed.
    pub seed: u64,
    /// Reliability evaluation grid (hours, strictly increasing).
    pub grid_hours: Vec<f64>,
    /// Worker threads (results independent of the count).
    pub threads: usize,
}

impl MonteCarloConfig {
    /// A one-year mission with a 12-point grid.
    pub fn one_year(
        policy: Policy,
        functionality: Functionality,
        replications: u64,
        seed: u64,
    ) -> Self {
        MonteCarloConfig {
            params: BbwParams::paper(),
            policy,
            functionality,
            horizon_hours: 8_760.0,
            replications,
            seed,
            grid_hours: (1..=12).map(|m| m as f64 * 730.0).collect(),
            threads: 1,
        }
    }
}

/// Monte-Carlo result.
#[derive(Debug, Clone)]
pub struct MonteCarloResult {
    /// Empirical reliability curve with confidence bands.
    pub curve: SurvivalCurve,
    /// Replications that failed within the horizon.
    pub failures: u64,
    /// Failure-time statistics over failed replications (hours). This is a
    /// *conditional* mean — with censoring it underestimates the true MTTF,
    /// so compare against analysis only when most replications fail.
    pub failure_times: OnlineStats,
}

impl MonteCarloResult {
    /// Empirical reliability at the grid points.
    pub fn reliability(&self) -> Vec<f64> {
        self.curve.reliability()
    }
}

impl Checkpoint for MonteCarloResult {
    fn encode(&self) -> String {
        let mut out = String::from("mc");
        out.push(' ');
        out.push_str(&self.curve.encode());
        checkpoint::push_u64(&mut out, self.failures);
        out.push(' ');
        out.push_str(&self.failure_times.encode());
        out
    }

    fn decode(reader: &mut TokenReader<'_>) -> Result<Self, String> {
        reader.expect_tag("mc")?;
        let curve = SurvivalCurve::decode(reader)?;
        let failures = reader.next_u64()?;
        let failure_times = OnlineStats::decode(reader)?;
        Ok(MonteCarloResult {
            curve,
            failures,
            failure_times,
        })
    }
}

/// The Monte-Carlo experiment as an engine campaign: one replication per
/// trial, each forking its labelled stream from `(seed, "replication",
/// trial)` exactly as the original sharded runner did.
#[derive(Debug, Clone)]
struct McCampaign {
    config: MonteCarloConfig,
}

impl TrialCampaign for McCampaign {
    type Acc = MonteCarloResult;

    fn trials(&self) -> u64 {
        self.config.replications
    }

    fn label(&self) -> String {
        "bbw-montecarlo".to_string()
    }

    fn rng_label(&self) -> String {
        "replication".to_string()
    }

    fn empty(&self) -> MonteCarloResult {
        MonteCarloResult {
            curve: SurvivalCurve::new(self.config.grid_hours.clone()),
            failures: 0,
            failure_times: OnlineStats::new(),
        }
    }

    fn run_trial(&self, trial: u64, _ctx: &TrialCtx<'_>, acc: &mut MonteCarloResult) {
        let mut rng = RngStream::new(self.config.seed).fork_indexed("replication", trial);
        match simulate_once(&self.config, &mut rng) {
            Some(t) => {
                acc.curve.record_failure(t);
                acc.failures += 1;
                acc.failure_times.record(t);
            }
            None => acc.curve.record_survivor(),
        }
    }

    fn merge(&self, into: &mut MonteCarloResult, from: MonteCarloResult) {
        into.curve.merge(&from.curve);
        into.failures += from.failures;
        into.failure_times.merge(&from.failure_times);
    }
}

/// Estimates the system MTTF by simulating replications to failure
/// (horizon capped at `max_years` to bound pathological runs; replications
/// still alive then are censored and reported).
///
/// Returns `(mean_hours, std_error_hours, censored)`.
///
/// # Panics
///
/// Panics on invalid configuration.
pub fn estimate_mttf(config: &MonteCarloConfig, max_years: f64) -> (f64, f64, u64) {
    let mut cfg = config.clone();
    cfg.horizon_hours = max_years * 8_760.0;
    cfg.grid_hours = vec![cfg.horizon_hours];
    let result = run_monte_carlo(&cfg);
    let censored = result.curve.replications() - result.failures;
    let mean = result.failure_times.mean();
    let se = result.failure_times.std_dev() / (result.failure_times.count().max(1) as f64).sqrt();
    (mean, se, censored)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Up,
    DownTransient,
    DownOmission,
    DownPermanent,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Fault(usize),
    Repair(usize),
}

/// Runs the Monte-Carlo experiment.
///
/// # Panics
///
/// Panics on invalid configuration (no replications, bad grid, bad params).
pub fn run_monte_carlo(config: &MonteCarloConfig) -> MonteCarloResult {
    let engine = EngineConfig::with_workers(config.threads.max(1));
    run_monte_carlo_with(config, &engine, CampaignOptions::default()).acc
}

/// Runs the Monte-Carlo experiment on the campaign engine with explicit
/// engine configuration and resume / checkpoint options.
///
/// Each replication forks its own stream from `(seed, index)`, and the
/// engine folds block partials in block order regardless of worker
/// count, so neither the thread count nor a checkpoint/resume split can
/// change any drawn value or any merged bit. At one worker (or below)
/// this runs on the in-thread sequential reference executor.
///
/// # Panics
///
/// Panics on invalid configuration (no replications, bad grid, bad
/// params).
pub fn run_monte_carlo_with(
    config: &MonteCarloConfig,
    engine: &EngineConfig,
    opts: CampaignOptions<'_, MonteCarloResult>,
) -> CampaignRun<MonteCarloResult> {
    config.params.validate().expect("valid parameters");
    assert!(config.replications > 0, "need replications");
    assert!(config.horizon_hours > 0.0, "need a positive horizon");
    let campaign = McCampaign {
        config: config.clone(),
    };
    run_trials_with(campaign, engine, opts)
}

/// Simulates one replication; returns the failure time in hours, or `None`
/// if the system survives the horizon.
fn simulate_once(config: &MonteCarloConfig, rng: &mut RngStream) -> Option<f64> {
    let p = &config.params;
    let horizon = SimTime::from_hours_f64(config.horizon_hours);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut states = [NodeState::Up; NUM_NODES];

    for node in 0..NUM_NODES {
        let dt = rng.exponential_hours(p.total_fault_rate());
        if let Some(at) = SimTime::ZERO.checked_add(dt) {
            if at <= horizon {
                queue
                    .schedule(at, Event::Fault(node))
                    .expect("within horizon");
            }
        }
    }

    while let Some((now, event)) = queue.pop_before(horizon) {
        match event {
            Event::Fault(node) => {
                debug_assert_eq!(states[node], NodeState::Up);
                // Uncovered errors crash the whole system (pessimistic §3.2.1).
                if !rng.bernoulli(p.coverage) {
                    return Some(now.as_hours_f64());
                }
                let permanent = rng.bernoulli(p.lambda_p / (p.lambda_p + p.lambda_t));
                if permanent {
                    states[node] = NodeState::DownPermanent;
                } else {
                    match config.policy {
                        Policy::FailSilent => {
                            states[node] = NodeState::DownTransient;
                            schedule_repair(&mut queue, rng, now, horizon, node, p.mu_r);
                        }
                        Policy::Nlft => {
                            let split = rng.weighted_index(&[p.p_t, p.p_om, p.p_fs]);
                            match split {
                                0 => {
                                    // Masked: node never leaves service.
                                    schedule_next_fault(&mut queue, rng, now, horizon, node, p);
                                    continue;
                                }
                                1 => {
                                    states[node] = NodeState::DownOmission;
                                    schedule_repair(&mut queue, rng, now, horizon, node, p.mu_om);
                                }
                                _ => {
                                    states[node] = NodeState::DownTransient;
                                    schedule_repair(&mut queue, rng, now, horizon, node, p.mu_r);
                                }
                            }
                        }
                    }
                }
                if system_failed(&states, config.functionality) {
                    return Some(now.as_hours_f64());
                }
            }
            Event::Repair(node) => {
                if states[node] != NodeState::DownPermanent {
                    states[node] = NodeState::Up;
                    schedule_next_fault(&mut queue, rng, now, horizon, node, p);
                }
            }
        }
    }
    None
}

fn schedule_repair(
    queue: &mut EventQueue<Event>,
    rng: &mut RngStream,
    now: SimTime,
    horizon: SimTime,
    node: usize,
    mu: f64,
) {
    let dt: SimDuration = rng.exponential_hours(mu);
    if let Some(at) = now.checked_add(dt) {
        if at <= horizon {
            queue
                .schedule(at, Event::Repair(node))
                .expect("within horizon");
        }
    }
}

fn schedule_next_fault(
    queue: &mut EventQueue<Event>,
    rng: &mut RngStream,
    now: SimTime,
    horizon: SimTime,
    node: usize,
    p: &BbwParams,
) {
    let dt = rng.exponential_hours(p.total_fault_rate());
    if let Some(at) = now.checked_add(dt) {
        if at <= horizon {
            queue
                .schedule(at, Event::Fault(node))
                .expect("within horizon");
        }
    }
}

fn system_failed(states: &[NodeState; NUM_NODES], functionality: Functionality) -> bool {
    let cu_up = CU_NODES
        .iter()
        .filter(|&&n| states[n] == NodeState::Up)
        .count();
    if cu_up == 0 {
        return true;
    }
    let wheels_up = WHEEL_NODES
        .iter()
        .filter(|&&n| states[n] == NodeState::Up)
        .count();
    match functionality {
        Functionality::Full => wheels_up < 4,
        Functionality::Degraded => wheels_up < 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::BbwSystem;
    use nlft_reliability::model::ReliabilityModel;
    use nlft_sim::stats::Confidence;

    #[test]
    fn deterministic_in_seed() {
        let cfg = MonteCarloConfig::one_year(Policy::Nlft, Functionality::Degraded, 200, 7);
        let a = run_monte_carlo(&cfg);
        let b = run_monte_carlo(&cfg);
        assert_eq!(a.reliability(), b.reliability());
        assert_eq!(a.failures, b.failures);
    }

    /// Golden values: the full Monte-Carlo outcome for a fixed seed is
    /// pinned bit-for-bit and must be identical at every thread count.
    /// Every published cross-validation number is defined by its master
    /// seed, so neither an RNG change nor a work-partitioning change may
    /// slip through silently — if this fails, either revert or treat it
    /// as a new experiment and regenerate every recorded figure.
    #[test]
    fn golden_outcome_pinned_across_thread_counts() {
        const GOLDEN_FAILURES: u64 = 114;
        const GOLDEN_R_BITS: [u64; 3] = [
            0x3FEE_E147_AE14_7AE1,
            0x3FEA_B851_EB85_1EB8,
            0x3FE6_E147_AE14_7AE1,
        ];
        for threads in [1, 2, 5] {
            let cfg = MonteCarloConfig {
                grid_hours: vec![2_000.0, 5_000.0, 8_760.0],
                threads,
                ..MonteCarloConfig::one_year(Policy::Nlft, Functionality::Degraded, 400, 0x2005)
            };
            let r = run_monte_carlo(&cfg);
            assert_eq!(r.failures, GOLDEN_FAILURES, "threads = {threads}");
            let bits: Vec<u64> = r.reliability().iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits, GOLDEN_R_BITS, "threads = {threads}");
        }
    }

    /// Prints the constants for `golden_outcome_pinned_across_thread_counts`.
    /// Run with `cargo test -p nlft-bbw --lib print_golden -- --ignored --nocapture`.
    #[test]
    #[ignore = "helper for regenerating the golden constants"]
    fn print_golden_monte_carlo() {
        let cfg = MonteCarloConfig {
            grid_hours: vec![2_000.0, 5_000.0, 8_760.0],
            ..MonteCarloConfig::one_year(Policy::Nlft, Functionality::Degraded, 400, 0x2005)
        };
        let r = run_monte_carlo(&cfg);
        println!("const GOLDEN_FAILURES: u64 = {};", r.failures);
        println!("const GOLDEN_R_BITS: [u64; 3] = [");
        for x in r.reliability() {
            println!("    {:#018X},", x.to_bits());
        }
        println!("];");
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut cfg = MonteCarloConfig::one_year(Policy::Nlft, Functionality::Degraded, 300, 9);
        let seq = run_monte_carlo(&cfg);
        cfg.threads = 4;
        let par = run_monte_carlo(&cfg);
        assert_eq!(seq.failures, par.failures);
        assert_eq!(seq.reliability(), par.reliability());
    }

    /// The simulation must reproduce the analytic Fig. 12 curves within its
    /// confidence band — the core cross-validation of this reproduction.
    #[test]
    fn agrees_with_analytic_model() {
        for (policy, functionality) in [
            (Policy::FailSilent, Functionality::Degraded),
            (Policy::Nlft, Functionality::Degraded),
        ] {
            let cfg = MonteCarloConfig {
                grid_hours: vec![2_000.0, 5_000.0, 8_760.0],
                ..MonteCarloConfig::one_year(policy, functionality, 3_000, 1234)
            };
            let mc = run_monte_carlo(&cfg);
            let analytic = BbwSystem::new(&cfg.params, policy, functionality);
            let bands = mc.curve.confidence_band(Confidence::C99);
            for (i, &t) in cfg.grid_hours.iter().enumerate() {
                let expect = analytic.reliability(t);
                let (lo, hi) = bands[i];
                assert!(
                    (lo..=hi).contains(&expect),
                    "{policy:?}/{functionality:?} at {t}h: analytic {expect} outside MC CI [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn nlft_survives_more_often_than_fs() {
        let fs = run_monte_carlo(&MonteCarloConfig::one_year(
            Policy::FailSilent,
            Functionality::Degraded,
            2_000,
            42,
        ));
        let nlft = run_monte_carlo(&MonteCarloConfig::one_year(
            Policy::Nlft,
            Functionality::Degraded,
            2_000,
            42,
        ));
        assert!(nlft.failures < fs.failures);
    }

    #[test]
    fn full_mode_fails_fast_for_fs() {
        let cfg = MonteCarloConfig::one_year(Policy::FailSilent, Functionality::Full, 500, 5);
        let r = run_monte_carlo(&cfg);
        // FS/full fails on effectively every replication within a year
        // (analytic R(1y) ≈ 0.0007).
        assert!(
            r.failures >= 490,
            "expected near-total failure, got {} of 500",
            r.failures
        );
    }

    #[test]
    fn short_horizon_rarely_fails() {
        let cfg = MonteCarloConfig {
            horizon_hours: 5.0,
            grid_hours: vec![1.0, 5.0],
            ..MonteCarloConfig::one_year(Policy::Nlft, Functionality::Degraded, 2_000, 77)
        };
        let r = run_monte_carlo(&cfg);
        let rel = r.reliability();
        assert!(rel[1] > 0.999, "R(5h) = {}", rel[1]);
    }

    #[test]
    fn mttf_estimate_matches_analytic() {
        // The paper's MTTF numbers, by simulation: run replications to
        // failure and compare with the analytic integral.
        for (policy, expect_years) in [(Policy::FailSilent, 1.195), (Policy::Nlft, 1.927)] {
            let cfg = MonteCarloConfig::one_year(policy, Functionality::Degraded, 2_000, 0x77);
            let (mean_h, se_h, censored) = estimate_mttf(&cfg, 40.0);
            assert!(
                censored <= 5,
                "{censored} of 2000 replications censored at 40 years"
            );
            let mean_years = mean_h / 8_760.0;
            let tol = 4.0 * se_h / 8_760.0 + 0.05;
            assert!(
                (mean_years - expect_years).abs() < tol,
                "{policy:?}: MC MTTF {mean_years:.3}y vs analytic {expect_years}y (tol {tol:.3})"
            );
        }
    }

    #[test]
    fn failure_time_stats_collected() {
        let cfg = MonteCarloConfig::one_year(Policy::FailSilent, Functionality::Full, 300, 3);
        let r = run_monte_carlo(&cfg);
        assert_eq!(r.failure_times.count(), r.failures);
        assert!(r.failure_times.mean() > 0.0);
        assert!(r.failure_times.max() <= 8_760.0);
    }
}
