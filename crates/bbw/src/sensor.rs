//! Triplicated pedal sensing with value-domain fault masking.
//!
//! The paper's Table 1 lists data-integrity and end-to-end checks as
//! first-class error-detection mechanisms, but a brake pedal is an
//! *input*: no amount of downstream TEM helps if the value entering the
//! system is already wrong. This module models the classic remedy —
//! sensor triplication with a median voter — hardened by per-channel
//! plausibility checks:
//!
//! * **range** — a reading outside `[0, PEDAL_MAX]` is clamped at the
//!   sensor boundary and flagged (the clamp is never silent);
//! * **rate** — a pedal is a human foot on a spring: a jump larger than
//!   [`PedalVoterConfig::max_rate`] counts per cycle is implausible;
//! * **deviation** — a channel further than
//!   [`PedalVoterConfig::max_deviation`] from the channel median is
//!   implausible.
//!
//! A channel accumulating `window_misses` implausible cycles within its
//! last `window_cycles` cycles (a per-channel
//! [`nlft_sim::weakly_hard::WeaklyHard`] m-in-k monitor, the same one the
//! membership hysteresis runs) is **demoted**: permanently removed from
//! the vote. Short noise bursts below the m-in-k threshold are tolerated
//! without demotion — bounded sensor noise must not cost a healthy
//! channel its seat.
//!
//! Fault models ([`SensorFault`]) are deterministic: stuck-at, offset and
//! drift evolve purely from the onset cycle; noise bursts draw from a
//! dedicated [`RngStream`] fork so experiments stay bit-reproducible.

use nlft_sim::rng::RngStream;
use nlft_sim::weakly_hard::WeaklyHard;

/// Full-scale pedal reading (12-bit ADC).
pub const PEDAL_MAX: u32 = 4095;

/// A value-domain fault attached to one pedal channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// The channel reports a constant value regardless of the pedal.
    StuckAt(u32),
    /// The channel reports the truth plus a constant offset (counts).
    Offset(i64),
    /// The channel's error grows by `per_cycle` counts every cycle after
    /// onset — a drifting bridge or reference.
    Drift {
        /// Error increment per cycle (may be negative).
        per_cycle: i64,
    },
    /// For `cycles` cycles after onset the reading jitters uniformly in
    /// `truth ± amplitude`; afterwards the channel is healthy again.
    NoiseBurst {
        /// Peak deviation in counts.
        amplitude: u32,
        /// Burst length in cycles.
        cycles: u32,
    },
}

/// One pedal channel's reading after the boundary clamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorReading {
    /// Clamped value in `[0, PEDAL_MAX]`.
    pub value: u32,
    /// Whether the raw value fell outside the range and was clamped —
    /// the clamp is explicit, never silent.
    pub clamped: bool,
}

/// One sensor channel: optional fault, onset cycle, and a dedicated
/// stream for its noise draws.
#[derive(Debug, Clone)]
struct PedalChannel {
    fault: Option<(SensorFault, u32)>,
    rng: RngStream,
    /// Last reading, for the rate-plausibility check.
    last: Option<u32>,
    /// Weakly-hard m-in-k window over implausible cycles.
    window: WeaklyHard,
    /// Implausible cycles observed in total.
    implausible: u32,
    /// Demoted channels never return to the vote.
    demoted: bool,
}

impl PedalChannel {
    fn new(rng: RngStream, window: WeaklyHard) -> Self {
        PedalChannel {
            fault: None,
            rng,
            last: None,
            window,
            implausible: 0,
            demoted: false,
        }
    }

    /// The faulty raw value before the boundary clamp, as a signed wide
    /// integer so offsets and drifts can run off both ends of the range.
    fn raw(&mut self, cycle: u32, truth: u32) -> i64 {
        let t = i64::from(truth);
        let Some((fault, onset)) = self.fault else {
            return t;
        };
        if cycle < onset {
            return t;
        }
        match fault {
            SensorFault::StuckAt(v) => i64::from(v),
            SensorFault::Offset(o) => t + o,
            SensorFault::Drift { per_cycle } => t + per_cycle * i64::from(cycle - onset + 1),
            SensorFault::NoiseBurst { amplitude, cycles } => {
                if cycle - onset < cycles {
                    let span = 2 * u64::from(amplitude) + 1;
                    t + self.rng.uniform_range(0, span) as i64 - i64::from(amplitude)
                } else {
                    t
                }
            }
        }
    }

    /// Reads the channel: fault model, then the explicit boundary clamp.
    fn read(&mut self, cycle: u32, truth: u32) -> SensorReading {
        let raw = self.raw(cycle, truth);
        let clamped = raw < 0 || raw > i64::from(PEDAL_MAX);
        SensorReading {
            value: raw.clamp(0, i64::from(PEDAL_MAX)) as u32,
            clamped,
        }
    }
}

/// Plausibility and demotion thresholds of the pedal voter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PedalVoterConfig {
    /// Largest plausible change per cycle (counts). The pedal is a human
    /// foot: full travel takes several communication cycles.
    pub max_rate: u32,
    /// Largest plausible deviation from the channel median (counts).
    pub max_deviation: u32,
    /// Implausible cycles within the window that demote a channel (`m`).
    pub window_misses: u32,
    /// Window length in cycles (`k`), at most 64.
    pub window_cycles: u32,
}

impl Default for PedalVoterConfig {
    /// `m = 4` implausible cycles in a `k = 16`-cycle window demote; rate
    /// bound 512 counts/cycle (full travel in 8 cycles), deviation bound
    /// 256 counts.
    fn default() -> Self {
        PedalVoterConfig {
            max_rate: 512,
            max_deviation: 256,
            window_misses: 4,
            window_cycles: 16,
        }
    }
}

/// The voter's decision for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PedalSample {
    /// The masked pedal value fed to the control application.
    pub voted: u32,
    /// Per-channel clamped readings this cycle.
    pub readings: [u32; 3],
    /// Which channels were flagged implausible this cycle.
    pub implausible: [bool; 3],
    /// Which channels are (still) in the vote after this cycle.
    pub active: [bool; 3],
    /// Whether any channel's raw value was clamped at the boundary.
    pub clamped: bool,
    /// Channel demoted in this cycle, if any.
    pub demoted_now: Option<usize>,
}

/// Per-run statistics of the sensing subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PedalStats {
    /// Implausible cycles per channel.
    pub implausible: [u32; 3],
    /// Demotions in cycle order: `(cycle, channel)`.
    pub demotions: Vec<(u32, usize)>,
    /// Cycles in which at least one raw reading was clamped.
    pub clamped_cycles: u32,
    /// Largest `|voted − truth|` seen in any cycle.
    pub max_voted_error: u32,
    /// Cycles in which `|voted − truth|` exceeded the deviation bound
    /// while *no* channel was flagged or demoted — a silent value
    /// failure of the sensing subsystem. Must be zero under any single
    /// channel fault.
    pub undetected_error_cycles: u32,
}

/// Triplicated pedal sensor with median vote, plausibility checks and
/// weakly-hard channel demotion.
///
/// # Examples
///
/// ```
/// use nlft_bbw::sensor::{PedalSensorArray, PedalVoterConfig, SensorFault};
/// use nlft_sim::rng::RngStream;
///
/// let mut array = PedalSensorArray::new(
///     PedalVoterConfig::default(),
///     RngStream::new(7).fork("pedal"),
/// );
/// // Channel 1 sticks at zero from cycle 0; the median masks it.
/// array.attach_fault(1, SensorFault::StuckAt(0), 0);
/// for cycle in 0..20 {
///     let s = array.sample(cycle, 1800);
///     assert_eq!(s.voted, 1800, "two healthy channels outvote the stuck one");
/// }
/// // The persistently implausible channel was demoted on the way.
/// assert!(!array.stats().demotions.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PedalSensorArray {
    channels: [PedalChannel; 3],
    config: PedalVoterConfig,
    stats: PedalStats,
    /// Last voted value, the fallback when every channel is demoted.
    last_voted: u32,
}

impl PedalSensorArray {
    /// Builds a healthy triplex. `rng` should be a dedicated fork of the
    /// experiment's master stream; each channel forks its own child so
    /// attaching a fault to one channel never perturbs another's noise.
    ///
    /// # Panics
    ///
    /// Panics if the config's window is invalid (see
    /// [`PedalVoterConfig`]).
    pub fn new(config: PedalVoterConfig, rng: RngStream) -> Self {
        assert!(config.window_misses > 0, "window_misses must be positive");
        assert!(
            config.window_cycles <= 64,
            "window_cycles must be at most 64"
        );
        assert!(
            config.window_misses <= config.window_cycles,
            "window_misses must be at most window_cycles"
        );
        let channels = std::array::from_fn(|i| {
            PedalChannel::new(
                rng.fork_indexed("pedal-channel", i as u64),
                WeaklyHard::new(config.window_misses, config.window_cycles),
            )
        });
        PedalSensorArray {
            channels,
            config,
            stats: PedalStats::default(),
            last_voted: 0,
        }
    }

    /// Attaches a fault to one channel from `onset` cycle on. A second
    /// call replaces the first.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= 3`.
    pub fn attach_fault(&mut self, channel: usize, fault: SensorFault, onset: u32) {
        self.channels[channel].fault = Some((fault, onset));
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &PedalStats {
        &self.stats
    }

    /// Channels still in the vote.
    pub fn active_channels(&self) -> usize {
        self.channels.iter().filter(|c| !c.demoted).count()
    }

    /// Reads all three channels, votes, and updates plausibility state.
    /// `truth` is the physical pedal position; the array only uses it
    /// through the (possibly faulty) channels, but records
    /// `|voted − truth|` so campaigns can score silent value failures.
    pub fn sample(&mut self, cycle: u32, truth: u32) -> PedalSample {
        let mut readings = [0u32; 3];
        let mut clamped = false;
        for (i, ch) in self.channels.iter_mut().enumerate() {
            let r = ch.read(cycle, truth);
            readings[i] = r.value;
            clamped |= r.clamped;
        }
        if clamped {
            self.stats.clamped_cycles += 1;
        }

        // Median over ALL channels (demoted ones excluded below): the
        // median of the active set is the vote; plausibility is judged
        // against it.
        let active_before: Vec<usize> = (0..3).filter(|&i| !self.channels[i].demoted).collect();
        let voted = match active_before.len() {
            0 => self.last_voted,
            1 => readings[active_before[0]],
            2 => {
                // Duplex sensing: the midpoint — neither survivor can
                // pull the vote further than half its own error.
                let a = readings[active_before[0]];
                let b = readings[active_before[1]];
                u32::midpoint(a, b)
            }
            _ => {
                let mut sorted = readings;
                sorted.sort_unstable();
                sorted[1]
            }
        };

        // Plausibility per channel.
        let mut implausible = [false; 3];
        let mut demoted_now = None;
        for (i, ch) in self.channels.iter_mut().enumerate() {
            if ch.demoted {
                continue;
            }
            let r = readings[i];
            let rate_bad = ch
                .last
                .is_some_and(|prev| r.abs_diff(prev) > self.config.max_rate);
            let dev_bad = r.abs_diff(voted) > self.config.max_deviation;
            // A clamped raw value is a range violation even though the
            // clamp pulled it back in range.
            let range_bad = {
                let raw = ch.raw(cycle, truth);
                raw < 0 || raw > i64::from(PEDAL_MAX)
            };
            let bad = rate_bad || dev_bad || range_bad;
            implausible[i] = bad;
            if bad {
                ch.implausible += 1;
                self.stats.implausible[i] += 1;
            }
            if ch.window.record(bad).violated {
                ch.demoted = true;
                demoted_now = Some(i);
                self.stats.demotions.push((cycle, i));
            }
            ch.last = Some(r);
        }

        // Undetected-error bookkeeping: a voted value far from the truth
        // with no detection active this cycle is a silent value failure.
        let err = voted.abs_diff(truth);
        self.stats.max_voted_error = self.stats.max_voted_error.max(err);
        let any_flag = implausible.iter().any(|&b| b)
            || demoted_now.is_some()
            || clamped
            || self.active_channels() < 3;
        if err > self.config.max_deviation && !any_flag {
            self.stats.undetected_error_cycles += 1;
        }

        self.last_voted = voted;
        let active = std::array::from_fn(|i| !self.channels[i].demoted);
        PedalSample {
            voted,
            readings,
            implausible,
            active,
            clamped,
            demoted_now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> PedalSensorArray {
        PedalSensorArray::new(
            PedalVoterConfig::default(),
            RngStream::new(0x5E50).fork("t"),
        )
    }

    #[test]
    fn healthy_triplex_votes_the_truth() {
        let mut a = array();
        for cycle in 0..30 {
            let truth = 100 * cycle;
            let s = a.sample(cycle, truth);
            assert_eq!(s.voted, truth);
            assert_eq!(s.implausible, [false; 3]);
            assert_eq!(s.active, [true; 3]);
        }
        assert_eq!(a.stats().max_voted_error, 0);
        assert_eq!(a.stats().undetected_error_cycles, 0);
    }

    #[test]
    fn stuck_channel_is_masked_then_demoted() {
        let mut a = array();
        a.attach_fault(2, SensorFault::StuckAt(3500), 5);
        let mut demoted_at = None;
        for cycle in 0..30 {
            let s = a.sample(cycle, 800);
            assert_eq!(s.voted, 800, "median masks the stuck channel");
            if let Some(ch) = s.demoted_now {
                assert_eq!(ch, 2);
                demoted_at = Some(cycle);
            }
        }
        // Demotion after exactly m = 4 implausible cycles (onset 5 → 8).
        assert_eq!(demoted_at, Some(8));
        assert_eq!(a.active_channels(), 2);
        assert_eq!(a.stats().undetected_error_cycles, 0);
    }

    #[test]
    fn small_offset_is_masked_without_demotion() {
        let mut a = array();
        a.attach_fault(0, SensorFault::Offset(100), 0);
        for cycle in 0..40 {
            let s = a.sample(cycle, 2000);
            assert_eq!(s.voted, 2000, "median of (2100, 2000, 2000)");
        }
        // 100 < max_deviation: plausible, never demoted.
        assert_eq!(a.active_channels(), 3);
        assert_eq!(a.stats().implausible, [0; 3]);
    }

    #[test]
    fn drift_is_caught_once_it_crosses_the_deviation_bound() {
        let mut a = array();
        a.attach_fault(1, SensorFault::Drift { per_cycle: 40 }, 0);
        let mut flagged = false;
        for cycle in 0..40 {
            let s = a.sample(cycle, 1500);
            assert_eq!(s.voted, 1500, "median holds while the channel drifts");
            flagged |= s.implausible[1];
        }
        assert!(flagged, "drift must eventually be implausible");
        assert_eq!(a.active_channels(), 2, "and the drifter demoted");
        assert_eq!(a.stats().undetected_error_cycles, 0);
    }

    #[test]
    fn short_noise_burst_tolerated_without_demotion() {
        let mut a = array();
        // A 2-cycle burst costs at most 3 implausible cycles (both burst
        // cycles plus the rate flag on the jump back to nominal), which
        // stays under m = 4: weakly-hard tolerance, channel stays.
        a.attach_fault(
            0,
            SensorFault::NoiseBurst {
                amplitude: 2000,
                cycles: 2,
            },
            10,
        );
        for cycle in 0..40 {
            let s = a.sample(cycle, 1000);
            assert_eq!(s.voted, 1000, "median rides out the burst");
        }
        assert_eq!(a.active_channels(), 3, "short burst must not demote");
        assert!(a.stats().implausible[0] <= 3);
    }

    #[test]
    fn long_noise_burst_demotes() {
        let mut a = array();
        a.attach_fault(
            0,
            SensorFault::NoiseBurst {
                amplitude: 3000,
                cycles: 20,
            },
            5,
        );
        for cycle in 0..40 {
            a.sample(cycle, 1000);
        }
        assert_eq!(a.active_channels(), 2, "sustained noise must demote");
    }

    #[test]
    fn out_of_range_is_clamped_and_flagged_never_silent() {
        let mut a = array();
        a.attach_fault(1, SensorFault::Offset(10_000), 0);
        let s = a.sample(0, 3000);
        assert_eq!(s.readings[1], PEDAL_MAX, "clamped at the boundary");
        assert!(s.clamped, "the clamp is flagged");
        assert!(s.implausible[1], "range violation is implausible");
        assert_eq!(s.voted, 3000);
    }

    #[test]
    fn duplex_then_simplex_after_two_demotions() {
        let mut a = array();
        a.attach_fault(0, SensorFault::StuckAt(0), 0);
        a.attach_fault(1, SensorFault::StuckAt(PEDAL_MAX), 0);
        for cycle in 0..30 {
            a.sample(cycle, 2000);
        }
        assert_eq!(a.active_channels(), 1, "both stuck channels demoted");
        // The survivor carries the vote alone.
        let s = a.sample(30, 2000);
        assert_eq!(s.voted, 2000);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let run = || {
            let mut a = PedalSensorArray::new(
                PedalVoterConfig::default(),
                RngStream::new(0xABCD).fork("pedal"),
            );
            a.attach_fault(
                2,
                SensorFault::NoiseBurst {
                    amplitude: 1000,
                    cycles: 30,
                },
                0,
            );
            (0..40).map(|c| a.sample(c, 1500).voted).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
