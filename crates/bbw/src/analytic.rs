//! The paper's analytic reliability models (§3.2), reconstructed.
//!
//! The paper prints the state sets of its Markov diagrams but not every
//! transition label; rates below are reconstructed from the §3.2.1 node
//! descriptions and §3.2.2 assumptions. Conventions (documented per model):
//!
//! * every **uncovered** error anywhere — rate `(λ_P+λ_T)(1−C_D)` per node —
//!   goes straight to system failure `F` (the paper's pessimistic
//!   assumption);
//! * FS nodes: every covered fault silences the node; NLFT nodes
//!   additionally mask covered transients with probability `P_T` (no
//!   transition), emit omissions with `P_OM` and fail silent with `P_FS`;
//! * while a subsystem is one node short, any non-masked fault on a
//!   remaining node is fatal: per-node rate `λ_P + λ_T` for FS and
//!   `λ_P + λ_T(1 − C_D·P_T)` for NLFT;
//! * the system (Fig. 5) fails when the central unit OR the wheel-node
//!   subsystem fails: `R_sys = R_CU · R_WN` under independence.

use std::sync::Arc;

use nlft_reliability::ctmc::{CtmcBuilder, CtmcError};
use nlft_reliability::faulttree::{FaultTreeBuilder, HierarchicalTree};
use nlft_reliability::model::{
    mttf_numeric, CoveredModel, CtmcReliability, Exponential, ReliabilityModel,
};

use crate::params::BbwParams;

/// Adds a transition unless its rate is zero (a zero rate means "no edge";
/// this arises for boundary parameters such as perfect coverage or a
/// degenerate `P_OM`/`P_FS` split).
fn transition_if_positive(
    b: &mut CtmcBuilder,
    from: nlft_reliability::ctmc::StateId,
    to: nlft_reliability::ctmc::StateId,
    rate: f64,
) {
    if rate > 0.0 {
        b.transition(from, to, rate).expect("positive finite rate");
    }
}

/// Node policy for the analytic models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Fail-silent nodes (Figs 6, 8, 9).
    FailSilent,
    /// Light-weight NLFT nodes (Figs 7, 10, 11).
    Nlft,
}

/// Functionality requirement on the wheel-node subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Functionality {
    /// All four wheel nodes must work.
    Full,
    /// At least three of four must work (degraded mode allowed).
    Degraded,
}

/// Central-unit subsystem model: a duplex pair (Fig. 6 for FS, Fig. 7 for
/// NLFT).
///
/// States (FS): `0` both up, `1` one permanently down, `2` one restarting
/// after a transient, `F` failed. NLFT adds state `3`: one node in an
/// omission-recovery window.
pub fn central_unit(params: &BbwParams, policy: Policy) -> CtmcReliability {
    params.validate().expect("valid parameters");
    let p = params;
    let mut b = CtmcBuilder::new();
    let s0 = b.state("both up");
    let s1 = b.state("one permanently down");
    let s2 = b.state("one restarting");
    let s3 = match policy {
        Policy::Nlft => Some(b.state("one in omission")),
        Policy::FailSilent => None,
    };
    let f = b.state("failure");

    // Both-up state: two nodes exposed.
    transition_if_positive(&mut b, s0, s1, 2.0 * p.lambda_p * p.coverage);
    transition_if_positive(&mut b, s0, f, 2.0 * p.uncovered_rate());
    match policy {
        Policy::FailSilent => {
            // Every covered transient silences the node for a restart.
            transition_if_positive(&mut b, s0, s2, 2.0 * p.lambda_t * p.coverage);
        }
        Policy::Nlft => {
            // Covered transients split: P_T masked (no transition),
            // P_FS restart, P_OM omission window.
            transition_if_positive(&mut b, s0, s2, 2.0 * p.lambda_t * p.coverage * p.p_fs);
            transition_if_positive(
                &mut b,
                s0,
                s3.expect("nlft"),
                2.0 * p.lambda_t * p.coverage * p.p_om,
            );
        }
    }

    // One-node-short states: the surviving node's non-masked faults are
    // fatal (a brake system cannot ride out its last CU pausing).
    let lone_fatal = match policy {
        Policy::FailSilent => p.total_fault_rate(),
        Policy::Nlft => p.nlft_unmasked_rate(),
    };
    transition_if_positive(&mut b, s1, f, lone_fatal);
    transition_if_positive(&mut b, s2, s0, p.mu_r);
    transition_if_positive(&mut b, s2, f, lone_fatal);
    if let Some(s3) = s3 {
        transition_if_positive(&mut b, s3, s0, p.mu_om);
        transition_if_positive(&mut b, s3, f, lone_fatal);
    }

    let n = match policy {
        Policy::FailSilent => 4,
        Policy::Nlft => 5,
    };
    let mut pi0 = vec![0.0; n];
    pi0[0] = 1.0;
    CtmcReliability::new(b.build(), pi0, vec![f])
}

/// Wheel-node subsystem (four simplex stations).
///
/// * **Full / FS** (Fig. 8): a series RBD of four exponential nodes; every
///   activated fault interrupts full functionality, so the per-node rate is
///   `λ_P + λ_T`. Expressed as a 2-state chain for a uniform interface.
/// * **Full / NLFT** (Fig. 10): 2-state chain, `0→F` at
///   `4(λ_P + λ_T(1 − C_D·P_T))` — masked transients preserve full
///   functionality.
/// * **Degraded / FS** (Fig. 9): states 0/1/2/F, repair `μ_R` from the
///   restarting state, second faults fatal at `3(λ_P+λ_T)`.
/// * **Degraded / NLFT** (Fig. 11): adds the omission state with repair
///   `μ_OM`; second faults fatal at `3(λ_P + λ_T(1−C_D·P_T))`.
pub fn wheel_subsystem(
    params: &BbwParams,
    policy: Policy,
    functionality: Functionality,
) -> CtmcReliability {
    params.validate().expect("valid parameters");
    let p = params;
    let mut b = CtmcBuilder::new();

    match functionality {
        Functionality::Full => {
            let s0 = b.state("all four up");
            let f = b.state("failure");
            let rate = match policy {
                Policy::FailSilent => 4.0 * p.total_fault_rate(),
                Policy::Nlft => 4.0 * p.nlft_unmasked_rate(),
            };
            transition_if_positive(&mut b, s0, f, rate);
            CtmcReliability::new(b.build(), vec![1.0, 0.0], vec![f])
        }
        Functionality::Degraded => {
            let s0 = b.state("all four up");
            let s1 = b.state("one permanently down");
            let s2 = b.state("one restarting");
            let s3 = match policy {
                Policy::Nlft => Some(b.state("one in omission")),
                Policy::FailSilent => None,
            };
            let f = b.state("failure");

            transition_if_positive(&mut b, s0, s1, 4.0 * p.lambda_p * p.coverage);
            transition_if_positive(&mut b, s0, f, 4.0 * p.uncovered_rate());
            match policy {
                Policy::FailSilent => {
                    transition_if_positive(&mut b, s0, s2, 4.0 * p.lambda_t * p.coverage);
                }
                Policy::Nlft => {
                    transition_if_positive(&mut b, s0, s2, 4.0 * p.lambda_t * p.coverage * p.p_fs);
                    transition_if_positive(
                        &mut b,
                        s0,
                        s3.expect("nlft"),
                        4.0 * p.lambda_t * p.coverage * p.p_om,
                    );
                }
            }

            // One wheel node down: three remain; a second non-masked fault
            // breaks the ≥3 requirement.
            let fatal = match policy {
                Policy::FailSilent => 3.0 * p.total_fault_rate(),
                Policy::Nlft => 3.0 * p.nlft_unmasked_rate(),
            };
            transition_if_positive(&mut b, s1, f, fatal);
            transition_if_positive(&mut b, s2, s0, p.mu_r);
            transition_if_positive(&mut b, s2, f, fatal);
            if let Some(s3) = s3 {
                transition_if_positive(&mut b, s3, s0, p.mu_om);
                transition_if_positive(&mut b, s3, f, fatal);
            }

            let n = match policy {
                Policy::FailSilent => 4,
                Policy::Nlft => 5,
            };
            let mut pi0 = vec![0.0; n];
            pi0[0] = 1.0;
            CtmcReliability::new(b.build(), pi0, vec![f])
        }
    }
}

/// A *single* station (one node, no partner) under a policy — the model
/// behind the paper's cost argument: "tolerating transient faults at the
/// node level may also reduce hardware costs, as fewer redundant nodes may
/// be required" (§1).
///
/// `omission_tolerant` decides whether short outage windows (restart /
/// omission states) count as survivable — §2.2 allows omissions in a
/// simplex configuration when the consumer can reuse a previous value or
/// ride out the delay. With tolerance, the station only *fails* on
/// permanent faults and uncovered errors (plus, for FS, nothing else;
/// NLFT masks change nothing here since masked transients were never
/// outages). Without tolerance, every non-masked event is fatal.
pub fn simplex_station(
    params: &BbwParams,
    policy: Policy,
    omission_tolerant: bool,
) -> CtmcReliability {
    params.validate().expect("valid parameters");
    let p = params;
    let mut b = CtmcBuilder::new();
    let s0 = b.state("up");
    if !omission_tolerant {
        // Strict service: first non-masked event of any kind is a failure.
        let f = b.state("failure");
        let rate = match policy {
            Policy::FailSilent => p.total_fault_rate(),
            Policy::Nlft => p.nlft_unmasked_rate(),
        };
        transition_if_positive(&mut b, s0, f, rate);
        return CtmcReliability::new(b.build(), vec![1.0, 0.0], vec![f]);
    }
    // Omission-tolerant: transient outages repair; permanents + uncovered kill.
    let s2 = b.state("restarting");
    let s3 = match policy {
        Policy::Nlft => Some(b.state("omission window")),
        Policy::FailSilent => None,
    };
    let f = b.state("failure");
    let fatal = p.lambda_p * p.coverage + p.uncovered_rate();
    transition_if_positive(&mut b, s0, f, fatal);
    match policy {
        Policy::FailSilent => {
            transition_if_positive(&mut b, s0, s2, p.lambda_t * p.coverage);
        }
        Policy::Nlft => {
            transition_if_positive(&mut b, s0, s2, p.lambda_t * p.coverage * p.p_fs);
            transition_if_positive(
                &mut b,
                s0,
                s3.expect("nlft"),
                p.lambda_t * p.coverage * p.p_om,
            );
        }
    }
    transition_if_positive(&mut b, s2, s0, p.mu_r);
    transition_if_positive(&mut b, s2, f, fatal);
    if let Some(s3) = s3 {
        transition_if_positive(&mut b, s3, s0, p.mu_om);
        transition_if_positive(&mut b, s3, f, fatal);
    }
    let n = match policy {
        Policy::FailSilent => 3,
        Policy::Nlft => 4,
    };
    let mut pi0 = vec![0.0; n];
    pi0[0] = 1.0;
    CtmcReliability::new(b.build(), pi0, vec![f])
}

/// The complete BBW system (Fig. 5): fault tree `F_sys = F_CU ∨ F_WN` over
/// the two subsystem models.
#[derive(Debug, Clone)]
pub struct BbwSystem {
    /// Policy used for all nodes.
    pub policy: Policy,
    /// Wheel-subsystem functionality requirement.
    pub functionality: Functionality,
    cu: Arc<CtmcReliability>,
    wn: Arc<CtmcReliability>,
    tree: HierarchicalTree,
}

impl BbwSystem {
    /// Builds the system model for a policy and functionality mode.
    pub fn new(params: &BbwParams, policy: Policy, functionality: Functionality) -> Self {
        let cu = Arc::new(central_unit(params, policy));
        let wn = Arc::new(wheel_subsystem(params, policy, functionality));
        let mut ft = FaultTreeBuilder::new();
        let cu_ev = ft.basic_event("central unit subsystem fails");
        let wn_ev = ft.basic_event("wheel node subsystem fails");
        let top = ft.or(vec![cu_ev, wn_ev]);
        let tree = HierarchicalTree::new(ft.build(top), vec![cu.clone() as _, wn.clone() as _]);
        BbwSystem {
            policy,
            functionality,
            cu,
            wn,
            tree,
        }
    }

    /// The central-unit subsystem model (for Fig. 13).
    pub fn central_unit(&self) -> &CtmcReliability {
        &self.cu
    }

    /// The wheel-node subsystem model (for Fig. 13).
    pub fn wheel_subsystem(&self) -> &CtmcReliability {
        &self.wn
    }

    /// System reliability over a time grid (hours) — one Fig. 12 curve.
    pub fn reliability_series(&self, grid_hours: &[f64]) -> Vec<f64> {
        grid_hours.iter().map(|&t| self.reliability(t)).collect()
    }

    /// System mean time to failure in hours, by numeric integration of
    /// `R(t)` (subsystems interact through the product, so no closed-form
    /// Markov MTTF exists at the system level).
    pub fn mttf_hours(&self) -> f64 {
        mttf_numeric(self, 1e-7)
    }

    /// Birnbaum importance of the two subsystems at mission time `t` —
    /// the quantitative version of Fig. 13's bottleneck observation.
    /// Returns `[("central unit…", I_B), ("wheel node…", I_B)]`.
    pub fn subsystem_importance(&self, t_hours: f64) -> Vec<(String, f64)> {
        self.tree.birnbaum_at(t_hours)
    }

    /// Subsystem MTTFs (CU, WN) in hours, exact from the Markov chains.
    ///
    /// # Errors
    ///
    /// Propagates [`CtmcError`] if a chain's MTTF diverges.
    pub fn subsystem_mttf_hours(&self) -> Result<(f64, f64), CtmcError> {
        Ok((self.cu.mttf()?, self.wn.mttf()?))
    }
}

impl ReliabilityModel for BbwSystem {
    fn reliability(&self, t_hours: f64) -> f64 {
        self.tree.reliability(t_hours)
    }
}

/// Hours in one year, as used by the paper's Fig. 12.
pub const HOURS_PER_YEAR: f64 = 8_760.0;

/// Value-domain parameters extending the Fig. 5 fault tree: failure
/// rates of the pedal-sensor channels and wheel actuators, and the
/// *measured* detection coverage of the value-domain layers (voter +
/// plausibility, divergence monitor) — the `c_v` that
/// [`crate::value_campaign::ValueDomainCampaignResult::detection_coverage`]
/// estimates by experiment instead of assuming.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueDomainParams {
    /// Failure rate of one pedal-sensor channel (per hour).
    pub lambda_sensor: f64,
    /// Failure rate of one wheel brake actuator (per hour).
    pub lambda_actuator: f64,
    /// Probability a sensor value fault is masked by the vote or
    /// detected by plausibility/demotion.
    pub sensor_coverage: f64,
    /// Probability an actuator value fault is caught by the divergence
    /// monitor and failed to safe release.
    pub actuator_coverage: f64,
}

impl ValueDomainParams {
    /// Nominal assignment: sensors an order of magnitude more reliable
    /// than processors, actuators electromechanical and worse, both
    /// detection layers near-perfect (the campaign measures ≈ 1.0).
    pub fn nominal() -> Self {
        ValueDomainParams {
            lambda_sensor: 2.0e-6,
            lambda_actuator: 5.0e-6,
            sensor_coverage: 0.99,
            actuator_coverage: 0.99,
        }
    }

    /// The same parameters with both coverages replaced.
    pub fn with_coverage(mut self, coverage: f64) -> Self {
        self.sensor_coverage = coverage;
        self.actuator_coverage = coverage;
        self
    }
}

/// The BBW system with the value domain in the fault tree: on top of the
/// Fig. 5 `F_sys = F_CU ∨ F_WN` structure,
///
/// * the triplicated pedal fails when **2 of 3** channels have failed
///   (redundancy exhausted — demotion makes this visible but cannot
///   replace lost channels), *or* when any single channel failure slips
///   past the voter/plausibility layer ([`CoveredModel`] leaves with
///   `1 − c_s`);
/// * the actuator set fails when **2 of 4** wheels have had their
///   (detected, failed-safe) actuator failures — matching the cluster's
///   `< 3` serving-wheels service rule — *or* when any single actuator
///   fault goes undetected by the divergence monitor (`1 − c_a`), a
///   runaway applying undemanded force.
///
/// Node-level policy (FS vs NLFT) only affects the CU/WN subtrees, so
/// comparing the two policies under decreasing value-domain coverage
/// shows the NLFT gain being eroded by a detection floor both share.
#[derive(Debug, Clone)]
pub struct ValueDomainSystem {
    /// Node-level policy used for CU and wheel nodes.
    pub policy: Policy,
    /// Value-domain parameter assignment.
    pub value: ValueDomainParams,
    tree: HierarchicalTree,
}

impl ValueDomainSystem {
    /// Builds the extended system model.
    ///
    /// # Panics
    ///
    /// Panics if a coverage parameter is outside `[0, 1]` or a rate is
    /// negative.
    pub fn new(
        params: &BbwParams,
        policy: Policy,
        functionality: Functionality,
        value: &ValueDomainParams,
    ) -> Self {
        let cu = Arc::new(central_unit(params, policy));
        let wn = Arc::new(wheel_subsystem(params, policy, functionality));
        let sensor = Exponential::new(value.lambda_sensor);
        let actuator = Exponential::new(value.lambda_actuator);
        let sensor_miss = CoveredModel::new(sensor, value.sensor_coverage);
        let actuator_miss = CoveredModel::new(actuator, value.actuator_coverage);

        let mut ft = FaultTreeBuilder::new();
        let cu_ev = ft.basic_event("central unit subsystem fails");
        let wn_ev = ft.basic_event("wheel node subsystem fails");
        let mut models: Vec<Arc<dyn ReliabilityModel + Send + Sync>> =
            vec![cu.clone() as _, wn.clone() as _];

        let sensor_chs: Vec<_> = (0..3)
            .map(|i| {
                models.push(Arc::new(sensor));
                ft.basic_event(format!("pedal channel {i} fails"))
            })
            .collect();
        let sensor_redundancy = ft.k_of_n(2, sensor_chs);
        let sensor_misses: Vec<_> = (0..3)
            .map(|i| {
                models.push(Arc::new(sensor_miss));
                ft.basic_event(format!("pedal channel {i} fault undetected"))
            })
            .collect();
        let mut sensor_children = vec![sensor_redundancy];
        sensor_children.extend(sensor_misses);
        let sensors = ft.or(sensor_children);

        let act_detected: Vec<_> = (0..4)
            .map(|w| {
                models.push(Arc::new(actuator));
                ft.basic_event(format!("wheel {w} actuator fails safe"))
            })
            .collect();
        let act_redundancy = ft.k_of_n(2, act_detected);
        let act_misses: Vec<_> = (0..4)
            .map(|w| {
                models.push(Arc::new(actuator_miss));
                ft.basic_event(format!("wheel {w} actuator fault undetected"))
            })
            .collect();
        let mut act_children = vec![act_redundancy];
        act_children.extend(act_misses);
        let actuators = ft.or(act_children);

        let top = ft.or(vec![cu_ev, wn_ev, sensors, actuators]);
        let tree = HierarchicalTree::new(ft.build(top), models);
        ValueDomainSystem {
            policy,
            value: *value,
            tree,
        }
    }

    /// Birnbaum importance of every basic event at mission time `t`:
    /// shows whether the node level or the value domain is the
    /// reliability bottleneck under a given coverage.
    pub fn importance(&self, t_hours: f64) -> Vec<(String, f64)> {
        self.tree.birnbaum_at(t_hours)
    }

    /// System mean time to failure in hours (numeric integration).
    pub fn mttf_hours(&self) -> f64 {
        mttf_numeric(self, 1e-7)
    }
}

impl ReliabilityModel for ValueDomainSystem {
    fn reliability(&self, t_hours: f64) -> f64 {
        self.tree.reliability(t_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(policy: Policy, functionality: Functionality) -> BbwSystem {
        BbwSystem::new(&BbwParams::paper(), policy, functionality)
    }

    #[test]
    fn reliability_starts_at_one_and_decreases() {
        for policy in [Policy::FailSilent, Policy::Nlft] {
            for func in [Functionality::Full, Functionality::Degraded] {
                let s = sys(policy, func);
                assert!((s.reliability(0.0) - 1.0).abs() < 1e-9);
                let r1 = s.reliability(1_000.0);
                let r2 = s.reliability(5_000.0);
                assert!(r1 > r2, "{policy:?}/{func:?} must decrease");
                assert!(r2 > 0.0);
            }
        }
    }

    #[test]
    fn degraded_beats_full_functionality() {
        for policy in [Policy::FailSilent, Policy::Nlft] {
            let full = sys(policy, Functionality::Full);
            let degraded = sys(policy, Functionality::Degraded);
            let t = HOURS_PER_YEAR;
            assert!(
                degraded.reliability(t) > full.reliability(t),
                "{policy:?}: allowing 3-of-4 must improve reliability"
            );
        }
    }

    #[test]
    fn nlft_beats_fs_in_every_mode() {
        for func in [Functionality::Full, Functionality::Degraded] {
            let fs = sys(Policy::FailSilent, func);
            let nlft = sys(Policy::Nlft, func);
            for &t in &[100.0, 1_000.0, HOURS_PER_YEAR] {
                assert!(
                    nlft.reliability(t) > fs.reliability(t),
                    "{func:?} at {t}h: NLFT {} <= FS {}",
                    nlft.reliability(t),
                    fs.reliability(t)
                );
            }
        }
    }

    /// The headline claim of the paper: degraded-mode reliability after one
    /// year improves by roughly 55% (0.45 → 0.70) with NLFT nodes.
    #[test]
    fn paper_figure12_headline_numbers() {
        let fs = sys(Policy::FailSilent, Functionality::Degraded);
        let nlft = sys(Policy::Nlft, Functionality::Degraded);
        let r_fs = fs.reliability(HOURS_PER_YEAR);
        let r_nlft = nlft.reliability(HOURS_PER_YEAR);
        // The paper reports 0.45 and 0.70; our reconstruction should land
        // near those (transition labels were reconstructed, so allow slack).
        assert!(
            (0.35..=0.55).contains(&r_fs),
            "FS degraded R(1y) = {r_fs}, paper says 0.45"
        );
        assert!(
            (0.60..=0.80).contains(&r_nlft),
            "NLFT degraded R(1y) = {r_nlft}, paper says 0.70"
        );
        let improvement = (r_nlft - r_fs) / r_fs;
        assert!(
            improvement > 0.3,
            "improvement {improvement} should be large (paper: 55%)"
        );
    }

    /// MTTF claim: 1.2 years → 1.9 years (+~60%).
    #[test]
    fn paper_mttf_headline_numbers() {
        let fs = sys(Policy::FailSilent, Functionality::Degraded);
        let nlft = sys(Policy::Nlft, Functionality::Degraded);
        let mttf_fs_years = fs.mttf_hours() / HOURS_PER_YEAR;
        let mttf_nlft_years = nlft.mttf_hours() / HOURS_PER_YEAR;
        assert!(
            (0.9..=1.5).contains(&mttf_fs_years),
            "FS degraded MTTF = {mttf_fs_years} years, paper says 1.2"
        );
        assert!(
            (1.5..=2.3).contains(&mttf_nlft_years),
            "NLFT degraded MTTF = {mttf_nlft_years} years, paper says 1.9"
        );
        let gain = mttf_nlft_years / mttf_fs_years - 1.0;
        assert!(gain > 0.35, "MTTF gain {gain}, paper says ~60%");
    }

    /// Fig. 13: the wheel-node subsystem is the reliability bottleneck.
    #[test]
    fn wheel_subsystem_is_bottleneck() {
        for policy in [Policy::FailSilent, Policy::Nlft] {
            let s = sys(policy, Functionality::Degraded);
            let t = HOURS_PER_YEAR;
            let r_cu = s.central_unit().reliability(t);
            let r_wn = s.wheel_subsystem().reliability(t);
            assert!(
                r_wn < r_cu,
                "{policy:?}: WN {r_wn} should be below CU {r_cu}"
            );
        }
    }

    #[test]
    fn system_reliability_is_product_of_subsystems() {
        let s = sys(Policy::Nlft, Functionality::Degraded);
        let t = 4_000.0;
        let product = s.central_unit().reliability(t) * s.wheel_subsystem().reliability(t);
        assert!((s.reliability(t) - product).abs() < 1e-9);
    }

    #[test]
    fn full_fs_matches_series_rbd_closed_form() {
        let p = BbwParams::paper();
        let s = wheel_subsystem(&p, Policy::FailSilent, Functionality::Full);
        let t = 2_000.0;
        let expect = (-4.0 * p.total_fault_rate() * t).exp();
        assert!((s.reliability(t) - expect).abs() < 1e-9);
    }

    #[test]
    fn full_nlft_matches_closed_form() {
        let p = BbwParams::paper();
        let s = wheel_subsystem(&p, Policy::Nlft, Functionality::Full);
        let t = 2_000.0;
        let expect = (-4.0 * p.nlft_unmasked_rate() * t).exp();
        assert!((s.reliability(t) - expect).abs() < 1e-9);
    }

    /// Fig. 14: coverage dominates; the fault-rate effect is small while
    /// fault rates stay far below repair rates.
    #[test]
    fn coverage_dominates_at_five_hours() {
        let t = 5.0;
        let base = BbwParams::paper();
        let low_cov = BbwSystem::new(
            &base.with_coverage(0.9),
            Policy::Nlft,
            Functionality::Degraded,
        );
        let high_cov = BbwSystem::new(
            &base.with_coverage(0.9999),
            Policy::Nlft,
            Functionality::Degraded,
        );
        let diff_cov = high_cov.reliability(t) - low_cov.reliability(t);
        assert!(diff_cov > 0.0);

        let low_rate = BbwSystem::new(
            &base.with_transient_multiplier(1.0),
            Policy::Nlft,
            Functionality::Degraded,
        );
        let high_rate = BbwSystem::new(
            &base.with_transient_multiplier(10.0),
            Policy::Nlft,
            Functionality::Degraded,
        );
        let diff_rate = low_rate.reliability(t) - high_rate.reliability(t);
        assert!(
            diff_cov > diff_rate,
            "coverage effect {diff_cov} must exceed rate effect {diff_rate}"
        );
    }

    /// Fig. 14: the NLFT advantage grows with the transient fault rate.
    #[test]
    fn nlft_advantage_grows_with_fault_rate() {
        let t = 5.0;
        let adv = |mult: f64| {
            let p = BbwParams::paper().with_transient_multiplier(mult);
            let fs = BbwSystem::new(&p, Policy::FailSilent, Functionality::Degraded);
            let nl = BbwSystem::new(&p, Policy::Nlft, Functionality::Degraded);
            nl.reliability(t) - fs.reliability(t)
        };
        let a1 = adv(1.0);
        let a100 = adv(100.0);
        let a1000 = adv(1000.0);
        assert!(a100 > a1, "{a100} vs {a1}");
        assert!(a1000 > a100, "{a1000} vs {a100}");
    }

    #[test]
    fn importance_ranks_wheel_subsystem_as_critical() {
        let s = sys(Policy::Nlft, Functionality::Degraded);
        let imp = s.subsystem_importance(HOURS_PER_YEAR);
        assert_eq!(imp.len(), 2);
        // Criticality = P(event) × importance; the wheel subsystem's higher
        // failure probability dominates the product.
        let crit_cu = s.central_unit().unreliability(HOURS_PER_YEAR) * imp[0].1;
        let crit_wn = s.wheel_subsystem().unreliability(HOURS_PER_YEAR) * imp[1].1;
        assert!(
            crit_wn > crit_cu,
            "wheel subsystem must be the bottleneck: {crit_wn} vs {crit_cu}"
        );
    }

    #[test]
    fn simplex_nlft_rivals_duplex_fs_when_omissions_are_tolerable() {
        // The §1 cost argument: one NLFT node can approach (here: exceed)
        // the reliability of two FS nodes, when the consumer tolerates
        // short omissions.
        let p = BbwParams::paper();
        let duplex_fs = central_unit(&p, Policy::FailSilent);
        let simplex_nlft = simplex_station(&p, Policy::Nlft, true);
        let t = HOURS_PER_YEAR;
        let (r_duplex, r_simplex) = (duplex_fs.reliability(t), simplex_nlft.reliability(t));
        assert!(
            r_simplex > r_duplex - 0.05,
            "one NLFT node ({r_simplex:.4}) should rival two FS nodes ({r_duplex:.4})"
        );
    }

    #[test]
    fn strict_simplex_is_worse_than_tolerant_simplex() {
        let p = BbwParams::paper();
        let t = HOURS_PER_YEAR;
        for policy in [Policy::FailSilent, Policy::Nlft] {
            let strict = simplex_station(&p, policy, false);
            let tolerant = simplex_station(&p, policy, true);
            assert!(
                tolerant.reliability(t) > strict.reliability(t),
                "{policy:?}: omission tolerance must help"
            );
        }
    }

    #[test]
    fn strict_simplex_matches_closed_forms() {
        let p = BbwParams::paper();
        let t = 3_000.0;
        let fs = simplex_station(&p, Policy::FailSilent, false);
        assert!((fs.reliability(t) - (-p.total_fault_rate() * t).exp()).abs() < 1e-9);
        let nlft = simplex_station(&p, Policy::Nlft, false);
        assert!((nlft.reliability(t) - (-p.nlft_unmasked_rate() * t).exp()).abs() < 1e-9);
    }

    #[test]
    fn subsystem_mttfs_are_finite_and_ordered() {
        let s = sys(Policy::Nlft, Functionality::Degraded);
        let (cu, wn) = s.subsystem_mttf_hours().unwrap();
        assert!(cu > 0.0 && wn > 0.0);
        assert!(wn < cu, "bottleneck has the smaller MTTF");
        // System MTTF below both subsystem MTTFs.
        let sys_mttf = s.mttf_hours();
        assert!(sys_mttf < wn && sys_mttf < cu);
    }

    fn value_sys(policy: Policy, coverage: f64) -> ValueDomainSystem {
        ValueDomainSystem::new(
            &BbwParams::paper(),
            policy,
            Functionality::Degraded,
            &ValueDomainParams::nominal().with_coverage(coverage),
        )
    }

    #[test]
    fn value_domain_events_only_lower_reliability() {
        let plain = sys(Policy::Nlft, Functionality::Degraded);
        let extended = value_sys(Policy::Nlft, 0.99);
        let t = HOURS_PER_YEAR;
        assert!(extended.reliability(t) < plain.reliability(t));
        // With vanishing value-domain rates the extension reduces to the
        // plain Fig. 5 tree.
        let negligible = ValueDomainSystem::new(
            &BbwParams::paper(),
            Policy::Nlft,
            Functionality::Degraded,
            &ValueDomainParams {
                lambda_sensor: 1e-15,
                lambda_actuator: 1e-15,
                ..ValueDomainParams::nominal()
            },
        );
        assert!((negligible.reliability(t) - plain.reliability(t)).abs() < 1e-9);
    }

    #[test]
    fn value_domain_reliability_is_monotone_in_coverage() {
        let t = HOURS_PER_YEAR;
        let mut last = -1.0;
        for c in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let r = value_sys(Policy::Nlft, c).reliability(t);
            assert!(r > last, "coverage {c}: {r} must beat {last}");
            last = r;
        }
    }

    #[test]
    fn imperfect_value_coverage_erodes_the_nlft_gain() {
        let t = HOURS_PER_YEAR;
        // The value-domain subtree is policy-independent, so the
        // *reliability ratio* R_nlft/R_fs factors out exactly — the
        // erosion shows in the failure-probability improvement
        // U_fs/U_nlft, which a shared undetected-failure floor drags
        // toward 1.
        let gain = |c: f64| {
            value_sys(Policy::FailSilent, c).unreliability(t)
                / value_sys(Policy::Nlft, c).unreliability(t)
        };
        let g_high = gain(0.999);
        let g_mid = gain(0.9);
        let g_low = gain(0.5);
        assert!(
            g_high > 1.0 && g_mid > 1.0 && g_low > 1.0,
            "NLFT always wins"
        );
        assert!(
            g_high > g_mid && g_mid > g_low,
            "gain must erode: {g_high} > {g_mid} > {g_low}"
        );
        // And the sanity anchor: with near-perfect value coverage the
        // improvement factor approaches the plain-tree one.
        let plain = BbwSystem::new(
            &BbwParams::paper(),
            Policy::FailSilent,
            Functionality::Degraded,
        )
        .unreliability(t)
            / sys(Policy::Nlft, Functionality::Degraded).unreliability(t);
        assert!((gain(1.0) - plain).abs() / plain < 0.05);
    }

    #[test]
    fn coverage_misses_outweigh_redundancy_exhaustion_at_low_coverage() {
        let t = HOURS_PER_YEAR;
        let u = |c: f64| value_sys(Policy::Nlft, c).unreliability(t);
        let plain = sys(Policy::Nlft, Functionality::Degraded).unreliability(t);
        // With perfect coverage the extension only adds the 2-of-3 /
        // 2-of-4 redundancy-exhaustion events; at c = 0.5 the undetected
        // single-fault events must dwarf that contribution.
        let redundancy_cost = u(1.0) - plain;
        let coverage_cost = u(0.5) - u(1.0);
        assert!(redundancy_cost > 0.0);
        assert!(
            coverage_cost > 5.0 * redundancy_cost,
            "silent failures should dominate: {coverage_cost} vs {redundancy_cost}"
        );
    }

    #[test]
    fn value_domain_importance_is_reported_for_every_event() {
        let s = value_sys(Policy::Nlft, 0.9);
        let imp = s.importance(HOURS_PER_YEAR);
        // 2 node-level + 3 channels + 3 misses + 4 actuators + 4 misses.
        assert_eq!(imp.len(), 16);
        assert!(imp.iter().all(|(_, b)| (0.0..=1.0).contains(b)));
        assert!(imp.iter().any(|(n, _)| n.contains("undetected")));
    }
}
