//! # nlft-bbw — the brake-by-wire case study
//!
//! The paper demonstrates light-weight NLFT on a distributed brake-by-wire
//! (BBW) architecture: a duplex central unit distributing brake force to
//! four simplex wheel nodes (Fig. 4). This crate reproduces that study
//! three ways, each validating the others:
//!
//! * [`params`] — the §3.3 parameter assignment (`λ_P`, `λ_T`, `C_D`,
//!   `P_T`, `P_OM`, `P_FS`, `μ_R`, `μ_OM`);
//! * [`analytic`] — the SHARPE-style hierarchical models of §3.2: Markov
//!   chains for the central unit (Figs 6–7) and wheel subsystem
//!   (Figs 9–11), the Fig. 8 series structure, composed through the Fig. 5
//!   fault tree; regenerates Figures 12–14;
//! * [`montecarlo`] — an independent discrete-event simulation of the
//!   joint six-node system, cross-checking the analytic curves;
//! * [`cluster`] — an *executable* BBW cluster: real TM32 control programs
//!   under the TEM kernel on a time-triggered bus with membership, duplex
//!   selection and degraded-mode force redistribution;
//! * [`recovery`] — diagnosis-and-recovery scenarios on that cluster: a
//!   masked transient storm, an intermittent wheel restarting and
//!   reintegrating, and a stuck-at CU replica being retired;
//! * [`sensor`] — triplicated pedal sensors with a deterministic
//!   value-domain fault model, median voting, plausibility checks and
//!   weakly-hard channel demotion;
//! * [`actuator`] — wheel brake actuators with stuck/runaway/offset
//!   faults and a wheel-local demand-vs-measured divergence monitor
//!   that fails a bad actuator to its safe release state;
//! * [`value_campaign`] — the value-domain storm campaign scoring
//!   braking-safety metrics under simultaneous sensor, actuator,
//!   command, network and node faults;
//! * [`braking`] — a deterministic longitudinal braking model mapping
//!   deadline-miss patterns to excess stopping distance;
//! * [`weakly_hard_campaign`] — the miss-pattern storm campaign:
//!   searches worst-case miss *patterns* per fault mix, cross-checks
//!   them against the kernel's weakly-hard analysis bound, and scores
//!   each pattern's braking-distance degradation.
//!
//! # Examples
//!
//! Reproduce the paper's headline result (Fig. 12, degraded mode):
//!
//! ```
//! use nlft_bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
//! use nlft_bbw::params::BbwParams;
//! use nlft_reliability::model::ReliabilityModel;
//!
//! let params = BbwParams::paper();
//! let fs = BbwSystem::new(&params, Policy::FailSilent, Functionality::Degraded);
//! let nlft = BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded);
//! let gain = nlft.reliability(HOURS_PER_YEAR) / fs.reliability(HOURS_PER_YEAR);
//! assert!(gain > 1.4, "paper: ~55% higher reliability after one year");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuator;
pub mod analytic;
pub mod blackout;
pub mod braking;
pub mod cluster;
pub mod cluster_campaign;
pub mod montecarlo;
pub mod params;
pub mod recovery;
pub mod scenario;
pub mod sensitivity;
pub mod sensor;
pub mod value_campaign;
pub mod weakly_hard_campaign;

pub use actuator::{ActuatorFault, ActuatorMonitor, ActuatorMonitorConfig, WheelActuator};
pub use analytic::{
    BbwSystem, Functionality, Policy, ValueDomainParams, ValueDomainSystem, HOURS_PER_YEAR,
};
pub use blackout::{run_blackout_campaign, BlackoutCampaignConfig, BlackoutCampaignResult};
pub use braking::{BrakingModel, BrakingScore, MissPolicy};
pub use cluster::{BbwCluster, ClusterInjection, ClusterReport, ValueDomainReport};
pub use cluster_campaign::{
    run_cluster_campaign, run_net_storm_campaign, ClusterCampaignConfig, ClusterCampaignResult,
    NetStormCampaignConfig, NetStormCampaignResult, NetStormOutcomes,
};
pub use montecarlo::{run_monte_carlo, MonteCarloConfig, MonteCarloResult};
pub use params::BbwParams;
pub use recovery::{
    intermittent_wheel_scenario, permanent_cu_scenario, run_recovery_cluster_campaign,
    transient_storm_scenario, RecoveryClusterCampaignConfig, RecoveryClusterOutcomes,
};
pub use scenario::{
    check_accept, compile, run_compiled, run_scenario, ClusterScenarioConfig, CompileError,
    CompiledScenario, ScenarioOutcome,
};
pub use sensor::{PedalSensorArray, PedalVoterConfig, SensorFault, PEDAL_MAX};
pub use value_campaign::{
    run_value_domain_campaign, ValueCampaignMode, ValueDomainCampaignConfig,
    ValueDomainCampaignResult, ValueDomainOutcomes,
};
pub use weakly_hard_campaign::{
    run_miss_pattern_campaign, MissPatternCampaignConfig, MissPatternCampaignResult,
    PlacementStrategy, WorstPattern,
};
