//! Compiling scenario files onto the executable campaign runners.
//!
//! The parser half of the scenario DSL lives in
//! [`nlft_reliability::scenario`] (this crate has the heavier
//! dependencies, so the compiler lives here): a [`ScenarioSpec`] is
//! compiled through the typed `try_*` constructors of the injector
//! crates into a [`CompiledScenario`] — one of the existing campaign
//! configurations, or a free-form cluster scenario driven by its own
//! per-trial engine.
//!
//! Every path preserves the labelled-`RngStream`-per-trial rule: a
//! trial's stream is forked as `fork_indexed(label, trial)` off the
//! scenario seed, so running a scenario at 1, 2 or 5 threads yields a
//! bit-identical [`ScenarioOutcome`] — including its CRC-32 `digest`,
//! which the zoo's `accept … pin` clauses golden-pin in CI.

use std::time::Duration;

use nlft_core::campaign::{run_campaign, CampaignConfig};
use nlft_core::diagnosis::AlphaCountConfig;
use nlft_core::multicore_campaign::{run_multicore_campaign, MulticoreCampaignConfig};
use nlft_core::policy::NodePolicy;
use nlft_engine::checkpoint::{self, Checkpoint, TokenReader};
use nlft_engine::{CampaignOptions, EngineConfig, ResumePoint};
use nlft_kernel::contract::MkContract;
use nlft_kernel::escalation::EscalationPolicy;
use nlft_kernel::resources::ProtocolKind;
use nlft_machine::fault::{FaultTarget, IntermittentFault, StuckAtFault, TransientFault};
use nlft_net::frame::NodeId;
use nlft_net::inject::{BlackoutSpec, NetFaultPlan, NetFaultRates};
use nlft_reliability::scenario::{
    ActuatorFaultSpec, ClusterSpec, FamilyParams, FaultLine, NodeKind, NodeName, PedalSpec,
    ScenarioSpec, SensorFaultSpec,
};
use nlft_sim::crc::crc32;
use nlft_sim::rng::RngStream;

use crate::actuator::ActuatorFault;
use crate::blackout::{run_blackout_campaign, BlackoutCampaignConfig};
use crate::braking::MissPolicy;
use crate::cluster::{BbwCluster, ClusterInjection, ClusterReport, CU_A, CU_B, WHEELS};
use crate::cluster_campaign::{run_net_storm_campaign, NetStormCampaignConfig};
use crate::recovery::{run_recovery_cluster_campaign, RecoveryClusterCampaignConfig};
use crate::sensor::SensorFault;
use crate::value_campaign::{run_value_domain_campaign, ValueDomainCampaignConfig};
use crate::weakly_hard_campaign::{run_miss_pattern_campaign, MissPatternCampaignConfig};

/// Why a parsed scenario could not be compiled onto the runners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// The scenario's name.
    pub scenario: String,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario `{}`: {}", self.scenario, self.message)
    }
}

impl std::error::Error for CompileError {}

/// A scenario compiled onto its concrete runner configuration.
#[derive(Debug, Clone)]
pub enum CompiledScenario {
    /// The six-node network-storm campaign.
    NetStorm(NetStormCampaignConfig),
    /// The value-domain campaign.
    ValueDomain(ValueDomainCampaignConfig),
    /// The correlated-blackout campaign.
    Blackout(BlackoutCampaignConfig),
    /// The recovery-escalation campaign.
    Recovery(RecoveryClusterCampaignConfig),
    /// The weakly-hard miss-pattern campaign.
    WeaklyHard(MissPatternCampaignConfig),
    /// The multicore core-death campaign.
    Multicore(MulticoreCampaignConfig),
    /// The node-level SWIFI parameter campaign.
    Node(CampaignConfig),
    /// A free-form cluster scenario run by this module's engine.
    Cluster(ClusterScenarioConfig),
}

/// A compiled free-form cluster scenario.
#[derive(Debug, Clone)]
pub struct ClusterScenarioConfig {
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// The validated declaration.
    pub spec: ClusterSpec,
}

/// The outcome of running one scenario: integer verdict and metric
/// counters in a canonical order, plus the CRC-32 digest over their
/// canonical rendering. Bit-identical for any thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Trials executed.
    pub trials: u64,
    /// Named per-trial verdict counts (each trial gets exactly one
    /// verdict within a family's ladder).
    pub verdicts: Vec<(String, u64)>,
    /// Named aggregate metrics.
    pub metrics: Vec<(String, u64)>,
    /// CRC-32 over [`ScenarioOutcome::canonical`].
    pub digest: u32,
}

impl ScenarioOutcome {
    fn new(
        name: &str,
        trials: u64,
        verdicts: Vec<(String, u64)>,
        metrics: Vec<(String, u64)>,
    ) -> Self {
        let mut outcome = ScenarioOutcome {
            name: name.to_string(),
            trials,
            verdicts,
            metrics,
            digest: 0,
        };
        outcome.digest = crc32(outcome.canonical().as_bytes());
        outcome
    }

    /// The canonical rendering the digest covers: one `key=value` pair
    /// per line, verdicts before metrics, in emission order.
    pub fn canonical(&self) -> String {
        let mut out = format!("scenario={}\ntrials={}\n", self.name, self.trials);
        for (k, v) in &self.verdicts {
            out.push_str(&format!("verdict.{k}={v}\n"));
        }
        for (k, v) in &self.metrics {
            out.push_str(&format!("metric.{k}={v}\n"));
        }
        out
    }

    /// Looks up a named counter, verdicts first.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.verdicts
            .iter()
            .chain(self.metrics.iter())
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }
}

/// A failed acceptance check, human-readable.
pub type AcceptFailure = String;

/// Checks a scenario's acceptance clause against its outcome. Returns
/// the list of violated assertions (empty = accepted).
pub fn check_accept(spec: &ScenarioSpec, outcome: &ScenarioOutcome) -> Vec<AcceptFailure> {
    let mut failures = Vec::new();
    if let Some(pin) = spec.accept.pin {
        if pin != outcome.digest {
            failures.push(format!(
                "digest 0x{:08x} does not match pin 0x{pin:08x}",
                outcome.digest
            ));
        }
    }
    for (name, expected) in &spec.accept.verdicts {
        match outcome.counter(name) {
            Some(actual) if actual == *expected => {}
            Some(actual) => {
                failures.push(format!("verdict {name}: expected {expected}, got {actual}"))
            }
            None => failures.push(format!("verdict {name}: no such counter")),
        }
    }
    for name in &spec.accept.require_zero {
        match outcome.counter(name) {
            Some(0) => {}
            Some(actual) => failures.push(format!("require_zero {name}: got {actual}")),
            None => failures.push(format!("require_zero {name}: no such counter")),
        }
    }
    for (name, ceiling) in &spec.accept.max {
        match outcome.counter(name) {
            Some(actual) if actual <= *ceiling => {}
            Some(actual) => {
                failures.push(format!("max {name}: {actual} exceeds ceiling {ceiling}"))
            }
            None => failures.push(format!("max {name}: no such counter")),
        }
    }
    failures
}

fn node_id(name: NodeName) -> NodeId {
    match name {
        NodeName::CuA => CU_A,
        NodeName::CuB => CU_B,
        NodeName::WheelFl => WHEELS[0],
        NodeName::WheelFr => WHEELS[1],
        NodeName::WheelRl => WHEELS[2],
        NodeName::WheelRr => WHEELS[3],
    }
}

const ALL_NODES: [NodeId; 6] = [CU_A, CU_B, WHEELS[0], WHEELS[1], WHEELS[2], WHEELS[3]];

/// The deterministic near-certain-activation transient the DSL's
/// `transient` / `intermittent` lines inject: a flipped high PC bit
/// sends every job into unmapped memory.
fn pc_fault() -> TransientFault {
    TransientFault {
        target: FaultTarget::Pc,
        mask: 1 << 20,
    }
}

/// Compiles a parsed scenario onto its concrete runner configuration,
/// revalidating every rate through the injectors' typed constructors.
/// `threads` is the worker count for families that shard (the outcome
/// itself is thread-count invariant).
pub fn compile(spec: &ScenarioSpec, threads: usize) -> Result<CompiledScenario, CompileError> {
    let fail = |message: String| CompileError {
        scenario: spec.name.clone(),
        message,
    };
    if spec.trials == 0 {
        return Err(fail("trials must be positive".into()));
    }
    Ok(match &spec.params {
        FamilyParams::NetStorm {
            cycles,
            intensity,
            node_faults,
        } => {
            if *cycles < 2 {
                return Err(fail("net_storm needs at least 2 cycles".into()));
            }
            let mut config = NetStormCampaignConfig::new(spec.trials, spec.seed);
            config.cycles = *cycles;
            config.intensity = *intensity;
            config.with_node_faults = *node_faults;
            config.threads = threads;
            CompiledScenario::NetStorm(config)
        }
        FamilyParams::ValueDomain {
            cycles,
            combined,
            net_intensity,
        } => {
            let mut config = if *combined {
                ValueDomainCampaignConfig::combined_storm(spec.trials, spec.seed)
            } else {
                ValueDomainCampaignConfig::single_fault(spec.trials, spec.seed)
            };
            config.cycles = *cycles;
            config.net_intensity = *net_intensity;
            config.threads = threads;
            CompiledScenario::ValueDomain(config)
        }
        FamilyParams::Blackout {
            warmup,
            recovery,
            down,
            stagger,
            min_reset,
            include_cus,
        } => {
            if *down == 0 {
                return Err(fail("blackout must last at least 1 cycle".into()));
            }
            if *min_reset == 0 {
                return Err(fail("blackout must reset at least 1 node".into()));
            }
            let mut config = BlackoutCampaignConfig::new(spec.trials, spec.seed);
            config.warmup_cycles = *warmup;
            config.recovery_cycles = *recovery;
            config.down_cycles = *down;
            config.stagger = *stagger;
            config.min_reset = *min_reset as usize;
            config.include_cus = *include_cus;
            config.threads = threads;
            CompiledScenario::Blackout(config)
        }
        FamilyParams::Recovery { cycles } => {
            if *cycles < 30 {
                return Err(fail(
                    "recovery needs at least 30 cycles (the full ladder)".into(),
                ));
            }
            let mut config = RecoveryClusterCampaignConfig::new(spec.trials, spec.seed);
            config.cycles = *cycles;
            config.threads = threads;
            CompiledScenario::Recovery(config)
        }
        FamilyParams::WeaklyHard {
            horizon_jobs,
            max_misses,
            window,
            interval_lo,
            interval_hi,
            zero_force,
        } => {
            if *horizon_jobs == 0 || *horizon_jobs > 64 {
                return Err(fail("weakly_hard horizon must be 1–64 jobs".into()));
            }
            if interval_lo >= interval_hi {
                return Err(fail(
                    "weakly_hard interval must be a non-empty range".into(),
                ));
            }
            let contract =
                MkContract::try_new(*max_misses, *window).map_err(|e| fail(e.to_string()))?;
            let mut config = MissPatternCampaignConfig::nominal(spec.trials, spec.seed);
            config.horizon_jobs = *horizon_jobs;
            config.contract = contract;
            config.fault_interval_us = (*interval_lo, *interval_hi);
            config.policy = if *zero_force {
                MissPolicy::ZeroForce
            } else {
                MissPolicy::HoldLast
            };
            config.threads = threads;
            CompiledScenario::WeaklyHard(config)
        }
        FamilyParams::Multicore {
            cores,
            horizon,
            escalated_p,
        } => {
            if *cores < 2 {
                return Err(fail("multicore needs at least 2 cores".into()));
            }
            let mut config = MulticoreCampaignConfig::new(spec.trials, spec.seed);
            config.cores = *cores;
            config.horizon = *horizon;
            config.escalated_p = *escalated_p;
            config.threads = threads;
            CompiledScenario::Multicore(config)
        }
        FamilyParams::Node { lightweight_nlft } => {
            let policy = if *lightweight_nlft {
                NodePolicy::LightweightNlft
            } else {
                NodePolicy::FailSilent
            };
            let mut config = CampaignConfig::new(spec.trials, spec.seed, policy);
            config.threads = threads;
            CompiledScenario::Node(config)
        }
        FamilyParams::Cluster(cluster) => {
            compile_cluster(spec, cluster).map_err(fail)?;
            CompiledScenario::Cluster(ClusterScenarioConfig {
                trials: spec.trials,
                seed: spec.seed,
                spec: cluster.clone(),
            })
        }
    })
}

/// Validates a cluster declaration by dry-building its plan through the
/// injectors' typed constructors.
fn compile_cluster(spec: &ScenarioSpec, cluster: &ClusterSpec) -> Result<(), String> {
    if cluster.cycles < 2 {
        return Err("cluster needs at least 2 cycles".into());
    }
    build_net_plan(cluster).map_err(|e| e.to_string())?;
    for fault in &cluster.faults {
        match fault {
            FaultLine::Transient { cycle, copy, .. } => {
                if *cycle == 0 || *cycle >= cluster.cycles {
                    return Err(format!(
                        "transient cycle {cycle} outside 1..{}",
                        cluster.cycles
                    ));
                }
                if *copy > 1 {
                    return Err(format!("transient copy {copy} must be 0 or 1"));
                }
            }
            FaultLine::Intermittent {
                recurrence, burst, ..
            } => {
                IntermittentFault {
                    fault: pc_fault(),
                    recurrence: *recurrence,
                    burst_jobs: *burst,
                }
                .check()
                .map_err(|e| e.to_string())?;
            }
            FaultLine::CoreDeath { node, .. } => {
                let declared = cluster
                    .nodes
                    .iter()
                    .any(|&(n, k)| n == *node && k != NodeKind::SingleCore);
                if !declared {
                    return Err(format!(
                        "core_death on {} requires a dual-core node kind in `topology`",
                        node.keyword()
                    ));
                }
            }
            FaultLine::Sensor { channel, .. } if *channel > 2 => {
                return Err(format!("sensor channel {channel} outside 0–2"));
            }
            FaultLine::Actuator { wheel, .. } if *wheel > 3 => {
                return Err(format!("actuator wheel {wheel} outside 0–3"));
            }
            _ => {}
        }
    }
    if let Some(contracts) = cluster.contracts {
        for (m, k) in contracts {
            MkContract::try_new(m, k).map_err(|e| e.to_string())?;
        }
    }
    let _ = spec;
    Ok(())
}

/// Builds the net-fault plan declared by a cluster's `storm` / `rates` /
/// `dynamic` / `blackout` lines; `None` when the scenario declares no
/// network faults at all.
fn build_net_plan(
    cluster: &ClusterSpec,
) -> Result<Option<NetFaultPlan>, nlft_net::inject::PlanError> {
    let mut plan = NetFaultPlan::quiet();
    let mut any = false;
    for fault in &cluster.faults {
        match fault {
            FaultLine::Storm {
                intensity,
                from,
                until,
            } => {
                plan = plan
                    .try_with_nodes(&ALL_NODES, NetFaultRates::storm(*intensity))?
                    .try_with_dynamic(0.10 * *intensity, 0.10 * *intensity)?
                    .window(*from, *until);
                any = true;
            }
            FaultLine::Rates {
                node,
                corruption,
                omission,
                crash,
                babble,
                masquerade,
                clock_glitch,
            } => {
                let rates = NetFaultRates {
                    corruption: *corruption,
                    omission: *omission,
                    crash: *crash,
                    babble: *babble,
                    masquerade: *masquerade,
                    clock_glitch: *clock_glitch,
                };
                plan = plan.try_with_node(node_id(*node), rates)?;
                any = true;
            }
            FaultLine::Dynamic { dup, reorder } => {
                plan = plan.try_with_dynamic(*dup, *reorder)?;
                any = true;
            }
            FaultLine::Blackout {
                at,
                down,
                stagger,
                nodes,
            } => {
                plan = plan.try_with_blackout(BlackoutSpec {
                    at_cycle: *at,
                    nodes: nodes.iter().map(|&n| node_id(n)).collect(),
                    down_cycles: *down,
                    stagger: *stagger,
                })?;
                any = true;
            }
            _ => {}
        }
    }
    Ok(if any { Some(plan) } else { None })
}

/// Runs a compiled scenario and reduces its family-specific result to
/// the canonical [`ScenarioOutcome`].
pub fn run_compiled(name: &str, compiled: &CompiledScenario) -> ScenarioOutcome {
    match compiled {
        CompiledScenario::NetStorm(config) => {
            let r = run_net_storm_campaign(config);
            ScenarioOutcome::new(
                name,
                r.outcomes.trials,
                vec![
                    ("split_membership".into(), r.outcomes.split_membership),
                    ("service_lost".into(), r.outcomes.service_lost),
                    ("degraded_episode".into(), r.outcomes.degraded_episode),
                    ("omission_only".into(), r.outcomes.omission_only),
                    ("unaffected".into(), r.outcomes.unaffected),
                ],
                vec![
                    ("injected".into(), r.injected.total()),
                    ("crc_rejects".into(), r.crc_rejects),
                    ("corruptions_applied".into(), r.corruptions_applied),
                    ("guardian_blocks".into(), r.guardian_blocks),
                    ("masquerade_rejects".into(), r.masquerade_rejects),
                    ("masquerades_applied".into(), r.masquerades_applied),
                    (
                        "reintegrations".into(),
                        r.reintegration_latencies.len() as u64,
                    ),
                    (
                        "reintegration_cycles".into(),
                        r.reintegration_latencies
                            .iter()
                            .map(|&l| u64::from(l))
                            .sum(),
                    ),
                ],
            )
        }
        CompiledScenario::ValueDomain(config) => {
            let r = run_value_domain_campaign(config);
            ScenarioOutcome::new(
                name,
                r.outcomes.trials,
                vec![
                    ("undetected".into(), r.outcomes.undetected),
                    ("service_lost".into(), r.outcomes.service_lost),
                    ("detected".into(), r.outcomes.detected),
                    ("masked".into(), r.outcomes.masked),
                ],
                vec![
                    (
                        "worst_total_force_deficit".into(),
                        u64::from(r.worst_total_force_deficit),
                    ),
                    (
                        "worst_left_right_imbalance".into(),
                        u64::from(r.worst_left_right_imbalance),
                    ),
                    ("stale_rejects".into(), r.stale_rejects),
                    ("seal_rejects".into(), r.seal_rejects),
                    ("held_setpoint_cycles".into(), r.held_setpoint_cycles),
                    ("sensor_demotions".into(), r.sensor_demotions),
                    ("actuator_trips".into(), r.actuator_trips),
                    (
                        "undetected_value_failures".into(),
                        r.undetected_value_failures,
                    ),
                ],
            )
        }
        CompiledScenario::Blackout(config) => {
            let r = run_blackout_campaign(config);
            ScenarioOutcome::new(
                name,
                r.trials,
                vec![
                    ("full_recoveries".into(), r.full_recoveries),
                    ("incomplete".into(), r.trials - r.full_recoveries),
                ],
                vec![
                    ("cold_start_trials".into(), r.cold_start_trials),
                    ("cold_starts_sent".into(), r.cold_starts_sent),
                    ("big_bangs".into(), r.big_bangs),
                    ("clique_reverts".into(), r.clique_reverts),
                    ("guardian_blocks".into(), r.guardian_blocks),
                    ("held_setpoint_cycles".into(), r.held_setpoint_cycles),
                    (
                        "membership_cycles".into(),
                        r.time_to_full_membership
                            .iter()
                            .map(|&l| u64::from(l))
                            .sum(),
                    ),
                    (
                        "unavailability_cycles".into(),
                        r.unavailability_cycles.iter().map(|&l| u64::from(l)).sum(),
                    ),
                ],
            )
        }
        CompiledScenario::Recovery(config) => {
            let r = run_recovery_cluster_campaign(config);
            ScenarioOutcome::new(
                name,
                r.trials,
                vec![
                    ("masked_transient".into(), r.masked_transient),
                    ("recovered".into(), r.recovered),
                    ("retired".into(), r.retired),
                    ("false_retirement".into(), r.false_retirement),
                    ("missed_permanent".into(), r.missed_permanent),
                    ("service_lost".into(), r.service_lost),
                    ("unresolved".into(), r.unresolved),
                ],
                Vec::new(),
            )
        }
        CompiledScenario::WeaklyHard(config) => {
            let r = run_miss_pattern_campaign(config);
            ScenarioOutcome::new(
                name,
                r.trials,
                vec![
                    ("certified".into(), r.certified_trials),
                    ("uncertified".into(), r.trials - r.certified_trials),
                    ("violating".into(), r.violating_trials),
                    ("bound_reached".into(), r.bound_reached_trials),
                ],
                vec![
                    ("certified_violations".into(), r.certified_violations),
                    ("bound_breaches".into(), r.bound_breaches),
                    ("total_misses".into(), r.total_misses),
                    (
                        "worst_window_misses".into(),
                        u64::from(r.worst_window_misses),
                    ),
                    ("total_excess_distance".into(), r.total_excess_distance),
                ],
            )
        }
        CompiledScenario::Multicore(config) => {
            let r = run_multicore_campaign(config);
            ScenarioOutcome::new(
                name,
                r.trials,
                vec![
                    ("crash".into(), r.crash_trials),
                    ("escalated".into(), r.escalated_trials),
                ],
                vec![
                    ("lock_failed_crash".into(), r.lock_failed_crash_trials),
                    ("lock_clean_crash".into(), r.lock_clean_crash_trials),
                    ("lock_clean_escalated".into(), r.lock_clean_escalated_trials),
                    ("lock_deadlocks".into(), r.lock_deadlocks),
                    ("lock_misses".into(), r.lock_misses),
                    ("leftrs_misses".into(), r.leftrs_misses),
                    ("leftrs_deadlocks".into(), r.leftrs_deadlocks),
                    ("leftrs_clean".into(), r.leftrs_clean_trials),
                    ("leftrs_max_retries".into(), u64::from(r.leftrs_max_retries)),
                    ("retry_bound_breaches".into(), r.retry_bound_breaches),
                    ("escalation_events".into(), r.escalation_events),
                    ("uncertified_tasks".into(), r.uncertified_tasks),
                ],
            )
        }
        CompiledScenario::Node(config) => {
            let r = run_campaign(config);
            ScenarioOutcome::new(
                name,
                r.trials,
                vec![
                    ("masked".into(), r.modes.masked),
                    ("omission".into(), r.modes.omission),
                    ("fail_silent".into(), r.modes.fail_silent),
                    ("undetected".into(), r.modes.undetected),
                ],
                vec![
                    ("param_detected".into(), r.counts.detected),
                    ("param_undetected".into(), r.counts.undetected),
                    ("param_masked".into(), r.counts.masked),
                    ("param_omissions".into(), r.counts.omissions),
                    ("param_fail_silent".into(), r.counts.fail_silent),
                    ("param_benign".into(), r.counts.benign),
                    ("ecc_escaped".into(), r.ecc_escaped),
                ],
            )
        }
        CompiledScenario::Cluster(config) => {
            run_cluster_scenario(name, config, 1, &ScenarioEngineOptions::default())
                .expect("default engine options cannot fail")
        }
    }
}

/// Parses nothing, compiles nothing: runs an already-parsed scenario
/// end to end at the given thread count.
pub fn run_scenario(spec: &ScenarioSpec, threads: usize) -> Result<ScenarioOutcome, CompileError> {
    run_scenario_with(spec, threads, &ScenarioEngineOptions::default())
}

/// Engine options for the cluster-family scenario path.
///
/// Only the free-form `cluster` family honours these (the other
/// families run on the engine through their own campaign runners);
/// passing non-default options with any other family is a
/// [`CompileError`].
#[derive(Default)]
pub struct ScenarioEngineOptions<'a> {
    /// Run the work-stealing executor even at one worker (the default
    /// dispatches to the in-thread sequential reference below two
    /// workers). The outcome is bit-identical either way — this exists
    /// so differential gates can pit the two paths against each other.
    pub force_engine: bool,
    /// Per-trial wall-clock budget enforced by the engine watchdog.
    pub trial_budget: Option<Duration>,
    /// Resume from a checkpoint string previously handed to
    /// `on_checkpoint`.
    pub resume: Option<String>,
    /// Checkpoint cadence in trials (0 = never).
    pub checkpoint_every: u64,
    /// Called with `(trials_done, encoded_checkpoint)` at each cadence.
    #[allow(clippy::type_complexity)]
    pub on_checkpoint: Option<&'a dyn Fn(u64, String)>,
}

impl ScenarioEngineOptions<'_> {
    fn is_default(&self) -> bool {
        !self.force_engine
            && self.trial_budget.is_none()
            && self.resume.is_none()
            && self.checkpoint_every == 0
            && self.on_checkpoint.is_none()
    }
}

impl std::fmt::Debug for ScenarioEngineOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioEngineOptions")
            .field("force_engine", &self.force_engine)
            .field("trial_budget", &self.trial_budget)
            .field("resume", &self.resume.is_some())
            .field("checkpoint_every", &self.checkpoint_every)
            .field("on_checkpoint", &self.on_checkpoint.is_some())
            .finish()
    }
}

/// [`run_scenario`] with explicit engine options for the cluster
/// family.
pub fn run_scenario_with(
    spec: &ScenarioSpec,
    threads: usize,
    opts: &ScenarioEngineOptions<'_>,
) -> Result<ScenarioOutcome, CompileError> {
    let compiled = compile(spec, threads)?;
    match &compiled {
        CompiledScenario::Cluster(config) => {
            run_cluster_scenario(&spec.name, config, threads, opts)
        }
        other => {
            if !opts.is_default() {
                return Err(CompileError {
                    scenario: spec.name.clone(),
                    message: "engine options (--engine / --trial-budget-ms / --resume) \
                              require a cluster-family scenario"
                        .to_string(),
                });
            }
            Ok(run_compiled(&spec.name, other))
        }
    }
}

/// Per-trial tallies of the free-form cluster engine.
#[derive(Debug, Clone, Copy, Default)]
struct ClusterTallies {
    trials: u64,
    undetected: u64,
    split_membership: u64,
    service_lost: u64,
    degraded_episode: u64,
    omission_only: u64,
    unaffected: u64,
    omissions: u64,
    degraded_cycles: u64,
    injected: u64,
    crc_rejects: u64,
    guardian_blocks: u64,
    masquerade_rejects: u64,
    corruptions_applied: u64,
    masquerades_applied: u64,
    restarts: u64,
    retired_nodes: u64,
    escalations: u64,
    contract_misses: u64,
    contract_violations: u64,
    held_setpoint_cycles: u64,
    sensor_demotions: u64,
    actuator_trips: u64,
    undetected_value_failures: u64,
    core_deaths: u64,
    reintegrations: u64,
    reintegration_cycles: u64,
}

impl ClusterTallies {
    fn absorb(&mut self, report: &ClusterReport, injected: u64) {
        self.trials += 1;
        let undetected_value = u64::from(report.value.undetected_value_failures());
        if undetected_value > 0 {
            self.undetected += 1;
        } else if report.split_membership {
            self.split_membership += 1;
        } else if report.service_lost {
            self.service_lost += 1;
        } else if report.degraded_cycles > 0 {
            self.degraded_episode += 1;
        } else if report.omissions > 0 {
            self.omission_only += 1;
        } else {
            self.unaffected += 1;
        }
        self.omissions += u64::from(report.omissions);
        self.degraded_cycles += u64::from(report.degraded_cycles);
        self.injected += injected;
        self.crc_rejects += report.crc_rejects;
        self.guardian_blocks += report.guardian_blocks;
        self.masquerade_rejects += report.masquerade_rejects;
        self.corruptions_applied += report.corruptions_applied;
        self.masquerades_applied += report.masquerades_applied;
        self.restarts += u64::from(report.restarts);
        self.retired_nodes += report.retired_nodes.len() as u64;
        self.escalations += report.escalations.len() as u64;
        self.contract_misses += report
            .wheel_contract_misses
            .iter()
            .map(|&m| u64::from(m))
            .sum::<u64>();
        self.contract_violations += report
            .wheel_contract_violations
            .iter()
            .map(|&v| u64::from(v))
            .sum::<u64>();
        self.held_setpoint_cycles += u64::from(report.value.held_setpoint_cycles);
        self.sensor_demotions += u64::from(report.value.sensor_demotions);
        self.actuator_trips += report.value.actuator_trips.len() as u64;
        self.undetected_value_failures += undetected_value;
        self.core_deaths += report.core_deaths.len() as u64;
        self.reintegrations += report.reintegration_latencies.len() as u64;
        self.reintegration_cycles += report
            .reintegration_latencies
            .iter()
            .map(|&l| u64::from(l))
            .sum::<u64>();
    }

    fn merge(&mut self, other: &ClusterTallies) {
        self.trials += other.trials;
        self.undetected += other.undetected;
        self.split_membership += other.split_membership;
        self.service_lost += other.service_lost;
        self.degraded_episode += other.degraded_episode;
        self.omission_only += other.omission_only;
        self.unaffected += other.unaffected;
        self.omissions += other.omissions;
        self.degraded_cycles += other.degraded_cycles;
        self.injected += other.injected;
        self.crc_rejects += other.crc_rejects;
        self.guardian_blocks += other.guardian_blocks;
        self.masquerade_rejects += other.masquerade_rejects;
        self.corruptions_applied += other.corruptions_applied;
        self.masquerades_applied += other.masquerades_applied;
        self.restarts += other.restarts;
        self.retired_nodes += other.retired_nodes;
        self.escalations += other.escalations;
        self.contract_misses += other.contract_misses;
        self.contract_violations += other.contract_violations;
        self.held_setpoint_cycles += other.held_setpoint_cycles;
        self.sensor_demotions += other.sensor_demotions;
        self.actuator_trips += other.actuator_trips;
        self.undetected_value_failures += other.undetected_value_failures;
        self.core_deaths += other.core_deaths;
        self.reintegrations += other.reintegrations;
        self.reintegration_cycles += other.reintegration_cycles;
    }
}

/// Runs one trial of a cluster scenario: builds the cluster from the
/// declaration, attaches every fault line, runs the pedal profile.
fn run_cluster_trial(config: &ClusterScenarioConfig, trial: u64) -> (ClusterReport, u64) {
    let root = RngStream::new(config.seed);
    let rng = root.fork_indexed("scenario-trial", trial);
    let mut cluster = BbwCluster::with_rng(rng.fork("pedal-sensors"));
    let spec = &config.spec;
    for &(node, kind) in &spec.nodes {
        match kind {
            NodeKind::SingleCore => {}
            NodeKind::DualCoreLock => {
                cluster.enable_dual_core(node_id(node), ProtocolKind::LockBased)
            }
            NodeKind::DualCoreLeftRs => {
                cluster.enable_dual_core(node_id(node), ProtocolKind::LeftRs)
            }
        }
    }
    if spec.startup {
        cluster.enable_startup();
    }
    if spec.supervise {
        cluster.supervise_all(AlphaCountConfig::default(), EscalationPolicy::default());
    }
    if let Some(contracts) = spec.contracts {
        let contracts = contracts.map(|(m, k)| MkContract::new(m, k));
        cluster.set_wheel_contracts(contracts);
    }
    if let Some(plan) = build_net_plan(spec).expect("plan validated at compile time") {
        cluster.attach_net_faults(plan, rng.fork("net-injector"));
    }
    for (i, fault) in spec.faults.iter().enumerate() {
        match fault {
            FaultLine::Storm { .. }
            | FaultLine::Rates { .. }
            | FaultLine::Dynamic { .. }
            | FaultLine::Blackout { .. } => {}
            FaultLine::Transient {
                node,
                cycle,
                copy,
                at,
            } => {
                cluster.inject(ClusterInjection {
                    cycle: *cycle,
                    node: node_id(*node),
                    copy: *copy,
                    at_cycle: *at,
                    fault: pc_fault(),
                });
            }
            FaultLine::StuckAtPc { node, bit } => {
                cluster.attach_stuck_at(
                    node_id(*node),
                    StuckAtFault {
                        target: FaultTarget::Pc,
                        bit: 1 << bit,
                        stuck_high: true,
                    },
                );
            }
            FaultLine::Intermittent {
                node,
                recurrence,
                burst,
            } => {
                cluster.attach_intermittent(
                    node_id(*node),
                    IntermittentFault {
                        fault: pc_fault(),
                        recurrence: *recurrence,
                        burst_jobs: *burst,
                    },
                    rng.fork_indexed("scenario-intermittent", i as u64),
                );
            }
            FaultLine::CoreDeath {
                node,
                cycle,
                escalated,
            } => {
                cluster.attach_core_death(*cycle, node_id(*node), *escalated);
            }
            FaultLine::Sensor {
                channel,
                fault,
                onset,
            } => {
                let fault = match *fault {
                    SensorFaultSpec::StuckAt(v) => SensorFault::StuckAt(v),
                    SensorFaultSpec::Offset(v) => SensorFault::Offset(v),
                    SensorFaultSpec::Drift(per_cycle) => SensorFault::Drift { per_cycle },
                    SensorFaultSpec::Noise { amplitude, cycles } => {
                        SensorFault::NoiseBurst { amplitude, cycles }
                    }
                };
                cluster.attach_sensor_fault(*channel as usize, fault, *onset);
            }
            FaultLine::Actuator {
                wheel,
                fault,
                onset,
            } => {
                let fault = match *fault {
                    ActuatorFaultSpec::Stuck => ActuatorFault::Stuck,
                    ActuatorFaultSpec::Runaway { step } => ActuatorFault::Runaway { step },
                    ActuatorFaultSpec::Offset(v) => ActuatorFault::Offset(v),
                };
                cluster.attach_actuator_fault(*wheel as usize, fault, *onset);
            }
            FaultLine::Silence { node, cycles } => {
                cluster.silence_node(node_id(*node), *cycles);
            }
        }
    }
    let report = match spec.pedal {
        PedalSpec::Constant(v) => cluster.run(spec.cycles, move |_| v),
        PedalSpec::Ramp { base, slope, max } => cluster.run(spec.cycles, move |cycle| {
            base.saturating_add(slope.saturating_mul(cycle)).min(max)
        }),
    };
    let injected = cluster.net_injection_counts().total();
    (report, injected)
}

/// Runs a cluster scenario on the campaign engine. Every trial forks
/// its own labelled stream off the scenario seed and block partials are
/// folded in block order, so the outcome — digest included — is
/// identical for any thread count, with or without `force_engine`.
fn run_cluster_scenario(
    name: &str,
    config: &ClusterScenarioConfig,
    threads: usize,
    opts: &ScenarioEngineOptions<'_>,
) -> Result<ScenarioOutcome, CompileError> {
    let c = config.clone();
    let campaign = nlft_engine::indexed_campaign(
        "bbw-cluster-scenario",
        "scenario-trial",
        config.trials,
        ClusterTallies::default,
        move |trial, _ctx, tallies: &mut ClusterTallies| {
            let (report, injected) = run_cluster_trial(&c, trial);
            tallies.absorb(&report, injected);
        },
        |into: &mut ClusterTallies, from| into.merge(&from),
    );
    let engine = EngineConfig {
        workers: threads.max(1),
        trial_budget: opts.trial_budget,
        checkpoint_every: opts.checkpoint_every,
        ..EngineConfig::default()
    };
    let resume = opts
        .resume
        .as_deref()
        .map(checkpoint::decode::<ResumePoint<ClusterTallies>>)
        .transpose()
        .map_err(|e| CompileError {
            scenario: name.to_string(),
            message: format!("bad resume checkpoint: {e}"),
        })?;
    #[allow(clippy::type_complexity)]
    let encode_cb: Option<Box<dyn Fn(u64, &ClusterTallies)>> = opts.on_checkpoint.map(|f| {
        Box::new(move |done: u64, acc: &ClusterTallies| {
            let point = ResumePoint {
                trials_done: done,
                acc: *acc,
            };
            f(done, checkpoint::encode(&point));
        }) as _
    });
    let options = CampaignOptions {
        resume,
        on_checkpoint: encode_cb.as_deref(),
    };
    let run = if opts.force_engine {
        nlft_engine::run_campaign_with(campaign, &engine, options)
    } else {
        nlft_engine::run_trials_with(campaign, &engine, options)
    };
    let tallies = run.acc;
    let t = &tallies;
    Ok(ScenarioOutcome::new(
        name,
        t.trials,
        vec![
            ("undetected".into(), t.undetected),
            ("split_membership".into(), t.split_membership),
            ("service_lost".into(), t.service_lost),
            ("degraded_episode".into(), t.degraded_episode),
            ("omission_only".into(), t.omission_only),
            ("unaffected".into(), t.unaffected),
        ],
        vec![
            ("omissions".into(), t.omissions),
            ("degraded_cycles".into(), t.degraded_cycles),
            ("injected".into(), t.injected),
            ("crc_rejects".into(), t.crc_rejects),
            ("guardian_blocks".into(), t.guardian_blocks),
            ("masquerade_rejects".into(), t.masquerade_rejects),
            ("corruptions_applied".into(), t.corruptions_applied),
            ("masquerades_applied".into(), t.masquerades_applied),
            ("restarts".into(), t.restarts),
            ("retired_nodes".into(), t.retired_nodes),
            ("escalations".into(), t.escalations),
            ("contract_misses".into(), t.contract_misses),
            ("contract_violations".into(), t.contract_violations),
            ("held_setpoint_cycles".into(), t.held_setpoint_cycles),
            ("sensor_demotions".into(), t.sensor_demotions),
            ("actuator_trips".into(), t.actuator_trips),
            (
                "undetected_value_failures".into(),
                t.undetected_value_failures,
            ),
            ("core_deaths".into(), t.core_deaths),
            ("reintegrations".into(), t.reintegrations),
            ("reintegration_cycles".into(), t.reintegration_cycles),
        ],
    ))
}

impl ClusterTallies {
    fn to_array(self) -> [u64; 26] {
        [
            self.trials,
            self.undetected,
            self.split_membership,
            self.service_lost,
            self.degraded_episode,
            self.omission_only,
            self.unaffected,
            self.omissions,
            self.degraded_cycles,
            self.injected,
            self.crc_rejects,
            self.guardian_blocks,
            self.masquerade_rejects,
            self.corruptions_applied,
            self.masquerades_applied,
            self.restarts,
            self.retired_nodes,
            self.escalations,
            self.contract_misses,
            self.contract_violations,
            self.held_setpoint_cycles,
            self.sensor_demotions,
            self.actuator_trips,
            self.undetected_value_failures,
            self.core_deaths,
            self.reintegrations,
        ]
    }

    fn from_array(a: [u64; 26], reintegration_cycles: u64) -> Self {
        ClusterTallies {
            trials: a[0],
            undetected: a[1],
            split_membership: a[2],
            service_lost: a[3],
            degraded_episode: a[4],
            omission_only: a[5],
            unaffected: a[6],
            omissions: a[7],
            degraded_cycles: a[8],
            injected: a[9],
            crc_rejects: a[10],
            guardian_blocks: a[11],
            masquerade_rejects: a[12],
            corruptions_applied: a[13],
            masquerades_applied: a[14],
            restarts: a[15],
            retired_nodes: a[16],
            escalations: a[17],
            contract_misses: a[18],
            contract_violations: a[19],
            held_setpoint_cycles: a[20],
            sensor_demotions: a[21],
            actuator_trips: a[22],
            undetected_value_failures: a[23],
            core_deaths: a[24],
            reintegrations: a[25],
            reintegration_cycles,
        }
    }
}

impl Checkpoint for ClusterTallies {
    fn encode(&self) -> String {
        let mut out = String::from("cluster-tallies");
        for x in self.to_array() {
            checkpoint::push_u64(&mut out, x);
        }
        checkpoint::push_u64(&mut out, self.reintegration_cycles);
        out
    }

    fn decode(reader: &mut TokenReader<'_>) -> Result<Self, String> {
        reader.expect_tag("cluster-tallies")?;
        let mut a = [0u64; 26];
        for slot in &mut a {
            *slot = reader.next_u64()?;
        }
        let reintegration_cycles = reader.next_u64()?;
        Ok(ClusterTallies::from_array(a, reintegration_cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlft_reliability::scenario::parse_scenario;

    fn spec(source: &str) -> ScenarioSpec {
        parse_scenario(source).expect("test scenario parses")
    }

    #[test]
    fn net_storm_scenario_matches_hand_wired_campaign() {
        // The golden-pinned configuration from `cluster_campaign`:
        // 10 trials, seed 0x5708, 20 cycles.
        let spec = spec(
            "scenario storm\nfamily net_storm\ntrials 10\nseed 0x5708\n\
             params\ncycles 20\nend\nend\n",
        );
        let outcome = run_scenario(&spec, 1).unwrap();
        let mut config = NetStormCampaignConfig::new(10, 0x5708);
        config.cycles = 20;
        let direct = run_net_storm_campaign(&config);
        assert_eq!(
            outcome.counter("service_lost"),
            Some(direct.outcomes.service_lost)
        );
        assert_eq!(
            outcome.counter("degraded_episode"),
            Some(direct.outcomes.degraded_episode)
        );
        assert_eq!(outcome.counter("injected"), Some(direct.injected.total()));
    }

    #[test]
    fn outcome_is_thread_invariant() {
        let spec = spec(
            "scenario threads\nfamily cluster\ntrials 5\nseed 0xfeed\n\
             topology\ncycles 12\nend\nfaults\nstorm 0.4\nend\nend\n",
        );
        let one = run_scenario(&spec, 1).unwrap();
        let two = run_scenario(&spec, 2).unwrap();
        let five = run_scenario(&spec, 5).unwrap();
        assert_eq!(one, two);
        assert_eq!(one, five);
    }

    #[test]
    fn accept_clause_checks_counters_and_pin() {
        let source = "scenario a\nfamily recovery\ntrials 4\nseed 0x11\n\
             accept\nrequire_zero missed_permanent\nmax service_lost 4\nend\nend\n";
        let s = spec(source);
        let outcome = run_scenario(&s, 1).unwrap();
        assert!(check_accept(&s, &outcome).is_empty());
        let mut pinned = s.clone();
        pinned.accept.pin = Some(outcome.digest ^ 1);
        let failures = check_accept(&pinned, &outcome);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("does not match pin"), "{failures:?}");
    }

    #[test]
    fn compile_rejects_core_death_on_single_core_node() {
        let s = spec(
            "scenario bad\nfamily cluster\ntrials 1\nseed 1\n\
             faults\ncore_death wheel_fl 5\nend\nend\n",
        );
        let e = compile(&s, 1).unwrap_err();
        assert!(e.message.contains("dual-core"), "{e}");
    }

    #[test]
    fn compile_rejects_zero_trials() {
        let s = spec("scenario z\nfamily recovery\ntrials 0\nseed 1\nend\n");
        assert!(compile(&s, 1).is_err());
    }

    #[test]
    fn cluster_scenario_exercises_every_fault_line() {
        let s = spec(
            "scenario all-lines\nfamily cluster\ntrials 2\nseed 0xabc\n\
             topology\ncycles 24\npedal ramp 400 60 3000\n\
             node wheel_fl dual_core_left_rs\nstartup off\nsupervise on\nend\n\
             faults\n\
             storm 0.2 from 4 until 12\n\
             rates cu_b babble 0.1\n\
             dynamic 0.05 0.05\n\
             blackout 14 2 1 wheel_rr\n\
             transient wheel_rl 6 0 20\n\
             stuck_at wheel_fr 20\n\
             intermittent cu_a 0.5 6\n\
             core_death wheel_fl 8 escalated\n\
             sensor 0 drift 3 onset 5\n\
             actuator 2 runaway 50 onset 6\n\
             silence cu_b 3\n\
             end\n\
             contracts\nwheel fl 2 8\nend\nend\n",
        );
        let outcome = run_scenario(&s, 1).unwrap();
        assert_eq!(outcome.trials, 2);
        let total: u64 = outcome.verdicts.iter().map(|&(_, v)| v).sum();
        assert_eq!(total, 2, "each trial gets exactly one verdict");
    }
}
