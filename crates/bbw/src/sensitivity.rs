//! Parameter sensitivity analysis of the BBW reliability models.
//!
//! Figure 14 of the paper varies two parameters (coverage and transient
//! rate) by hand; this module generalises to every §3.3 parameter, so the
//! conclusion — *coverage dominates* — can be checked rather than assumed.
//! Each parameter is perturbed in a validity-preserving way:
//!
//! * the rates `λ_P`, `λ_T`, `μ_R`, `μ_OM` multiplicatively (`×(1 ± h)`),
//!   reporting the **elasticity** `(ΔR/R)/(Δθ/θ)`;
//! * `C_D` additively toward/away from 1 (capped), reporting `∂R/∂C_D`;
//! * the split probabilities by **mass transfer** (`P_T ± δ` against
//!   `P_OM ∓ δ`, and `P_T ± δ` against `P_FS ∓ δ`), keeping the sum at 1.

use nlft_reliability::model::ReliabilityModel;

use crate::analytic::{BbwSystem, Functionality, Policy};
use crate::params::BbwParams;

/// One parameter's sensitivity.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Parameter label.
    pub parameter: &'static str,
    /// Base value at the evaluation point.
    pub base: f64,
    /// Derivative measure: elasticity for rates, partial derivative for
    /// probabilities (see module docs).
    pub effect: f64,
}

/// Computes the sensitivity table for the system reliability at `t_hours`.
///
/// # Panics
///
/// Panics if `params` are invalid.
pub fn sensitivity(
    params: &BbwParams,
    policy: Policy,
    functionality: Functionality,
    t_hours: f64,
) -> Vec<SensitivityRow> {
    params.validate().expect("valid parameters");
    let r = |p: &BbwParams| BbwSystem::new(p, policy, functionality).reliability(t_hours);
    let base_r = r(params);
    let h = 0.01; // 1% relative perturbation for rates
    let mut rows = Vec::new();

    // Multiplicative rates → elasticity.
    let mut rate =
        |name: &'static str, get: fn(&BbwParams) -> f64, set: fn(&mut BbwParams, f64)| {
            let theta = get(params);
            let mut up = *params;
            set(&mut up, theta * (1.0 + h));
            let mut down = *params;
            set(&mut down, theta * (1.0 - h));
            let dr = (r(&up) - r(&down)) / (2.0 * h); // dR / (dθ/θ)
            rows.push(SensitivityRow {
                parameter: name,
                base: theta,
                effect: dr / base_r, // elasticity
            });
        };
    rate("lambda_p", |p| p.lambda_p, |p, v| p.lambda_p = v);
    rate("lambda_t", |p| p.lambda_t, |p, v| p.lambda_t = v);
    rate("mu_r", |p| p.mu_r, |p, v| p.mu_r = v);
    rate("mu_om", |p| p.mu_om, |p, v| p.mu_om = v);

    // Coverage: additive, capped below 1.
    {
        let d = ((1.0 - params.coverage) * 0.5).clamp(1e-6, 0.005);
        let mut up = *params;
        up.coverage = (params.coverage + d).min(1.0);
        let mut down = *params;
        down.coverage = params.coverage - d;
        rows.push(SensitivityRow {
            parameter: "coverage",
            base: params.coverage,
            effect: (r(&up) - r(&down)) / (up.coverage - down.coverage),
        });
    }

    // Split transfers.
    let transfer = |name: &'static str,
                    apply: fn(&mut BbwParams, f64),
                    rows: &mut Vec<SensitivityRow>,
                    base: f64| {
        let d = 0.005;
        let mut up = *params;
        apply(&mut up, d);
        let mut down = *params;
        apply(&mut down, -d);
        if up.validate().is_ok() && down.validate().is_ok() {
            rows.push(SensitivityRow {
                parameter: name,
                base,
                effect: (r(&up) - r(&down)) / (2.0 * d),
            });
        }
    };
    transfer(
        "p_t (vs p_om)",
        |p, d| {
            p.p_t += d;
            p.p_om -= d;
        },
        &mut rows,
        params.p_t,
    );
    transfer(
        "p_t (vs p_fs)",
        |p, d| {
            p.p_t += d;
            p.p_fs -= d;
        },
        &mut rows,
        params.p_t,
    );

    rows
}

/// Renders the table, sorted by absolute effect (largest first).
pub fn render(rows: &[SensitivityRow]) -> String {
    use std::fmt::Write;
    let mut sorted: Vec<&SensitivityRow> = rows.iter().collect();
    sorted.sort_by(|a, b| b.effect.abs().partial_cmp(&a.effect.abs()).expect("finite"));
    let mut out = String::new();
    let _ = writeln!(out, "{:<16}{:>14}{:>14}", "parameter", "base", "effect");
    for row in sorted {
        let _ = writeln!(
            out,
            "{:<16}{:>14.4e}{:>14.4e}",
            row.parameter, row.base, row.effect
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_at(t: f64) -> Vec<SensitivityRow> {
        sensitivity(
            &BbwParams::paper(),
            Policy::Nlft,
            Functionality::Degraded,
            t,
        )
    }

    fn effect(rows: &[SensitivityRow], name: &str) -> f64 {
        rows.iter()
            .find(|r| r.parameter == name)
            .unwrap_or_else(|| panic!("row {name}"))
            .effect
    }

    #[test]
    fn signs_match_physics() {
        let rows = rows_at(8_760.0);
        assert!(
            effect(&rows, "lambda_p") < 0.0,
            "more permanents, less reliability"
        );
        assert!(effect(&rows, "lambda_t") < 0.0);
        assert!(effect(&rows, "mu_r") > 0.0, "faster repair helps");
        assert!(effect(&rows, "mu_om") > 0.0);
        assert!(effect(&rows, "coverage") > 0.0);
        assert!(
            effect(&rows, "p_t (vs p_om)") > 0.0,
            "masking beats omitting"
        );
        assert!(
            effect(&rows, "p_t (vs p_fs)") > 0.0,
            "masking beats restarting"
        );
    }

    #[test]
    fn coverage_dominates_short_missions() {
        // The Fig. 14 message, as a sensitivity statement: at 5 hours the
        // coverage derivative dwarfs every rate elasticity.
        let rows = rows_at(5.0);
        let cov = effect(&rows, "coverage").abs();
        for name in ["lambda_p", "lambda_t", "mu_r", "mu_om"] {
            assert!(
                cov > effect(&rows, name).abs() * 10.0,
                "coverage ({cov:.3e}) must dominate {name} ({:.3e})",
                effect(&rows, name)
            );
        }
    }

    #[test]
    fn permanents_dominate_rates_at_one_year() {
        // Over a year, permanent faults (no repair) cost more than
        // transients (mostly masked/repaired).
        let rows = rows_at(8_760.0);
        assert!(
            effect(&rows, "lambda_p").abs() > effect(&rows, "lambda_t").abs(),
            "lambda_p {} vs lambda_t {}",
            effect(&rows, "lambda_p"),
            effect(&rows, "lambda_t")
        );
    }

    #[test]
    fn render_sorts_by_magnitude() {
        let rows = rows_at(8_760.0);
        let text = render(&rows);
        assert!(text.lines().count() == rows.len() + 1);
        // The first data line holds the largest-magnitude effect.
        let max = rows.iter().map(|r| r.effect.abs()).fold(0.0, f64::max);
        let first_line = text.lines().nth(1).expect("data row");
        let big = rows
            .iter()
            .find(|r| r.effect.abs() == max)
            .expect("max row");
        assert!(first_line.contains(big.parameter));
    }
}
