//! Wheel brake actuators with value-domain faults and a local monitor.
//!
//! PRs 2–3 modelled the actuator as a fault-free first-order lag buried
//! in the cluster loop; a runaway or stuck actuator was invisible to
//! every detection layer. This module makes the actuator an explicit
//! component with its own fault model ([`ActuatorFault`]) and a
//! wheel-local **demand-vs-measured divergence monitor**
//! ([`ActuatorMonitor`]).
//!
//! The subtlety is that a *healthy* lag also diverges transiently: after
//! a set-point step the measured force needs several cycles to converge,
//! and a naive `|measured − demand| > tol` check would trip on every
//! brake application. The monitor therefore counts a cycle as divergent
//! only when the error is both **large** and **not shrinking** — a
//! converging lag always shrinks its error, while stuck, runaway and
//! large-offset actuators do not. Divergent cycles feed a weakly-hard
//! m-in-k window (the membership-hysteresis shape again), so a single
//! glitch never trips the monitor but a persistent divergence does.
//!
//! A tripped monitor fails the actuator to its **safe release state**
//! (demand forced to zero, the brake drops off) and the wheel node goes
//! fail-silent, which reports the failure into membership — the central
//! unit then redistributes force exactly as for a crashed wheel.

/// A value-domain fault attached to one wheel actuator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuatorFault {
    /// The actuator freezes at its current force and ignores demands.
    Stuck,
    /// The actuator drives toward full force by `step` counts per cycle
    /// regardless of the demand — the dangerous failure mode.
    Runaway {
        /// Force increase per cycle.
        step: u32,
    },
    /// The servo nulls at `demand + 4·offset` instead of `demand` (the
    /// lag's fixed point shifts by four times the per-cycle bias).
    Offset(i64),
}

/// First-order brake actuator: the measured force moves a quarter of the
/// remaining distance toward the demand each cycle.
#[derive(Debug, Clone)]
pub struct WheelActuator {
    measured: u32,
    fault: Option<(ActuatorFault, u32)>,
    /// Once failed-safe, the actuator releases and ignores all demands.
    failed_safe: bool,
}

/// Cap on the modelled force (12-bit, same scale as the pedal).
pub const FORCE_MAX: u32 = 4095;

impl WheelActuator {
    /// A healthy, released actuator.
    pub fn new() -> Self {
        WheelActuator {
            measured: 0,
            fault: None,
            failed_safe: false,
        }
    }

    /// Attaches a fault from `onset` cycle on.
    pub fn attach_fault(&mut self, fault: ActuatorFault, onset: u32) {
        self.fault = Some((fault, onset));
    }

    /// Current measured force.
    pub fn measured(&self) -> u32 {
        self.measured
    }

    /// The attached fault and its onset cycle, if any.
    pub fn fault(&self) -> Option<(ActuatorFault, u32)> {
        self.fault
    }

    /// Whether the actuator has been failed to its safe release state.
    pub fn failed_safe(&self) -> bool {
        self.failed_safe
    }

    /// Forces the safe release state: demands are ignored and the force
    /// decays to zero.
    pub fn fail_safe(&mut self) {
        self.failed_safe = true;
    }

    /// Advances one cycle under `demand`, returning the new measured
    /// force. A failed-safe actuator decays toward release regardless of
    /// the demand; fault models override the healthy lag from their
    /// onset cycle.
    pub fn apply(&mut self, cycle: u32, demand: u32) -> u32 {
        let lag = |m: u32, d: u32| (m * 3 + d) / 4;
        if self.failed_safe {
            self.measured = lag(self.measured, 0);
            return self.measured;
        }
        let active = self.fault.filter(|&(_, onset)| cycle >= onset);
        self.measured = match active {
            None => lag(self.measured, demand),
            Some((ActuatorFault::Stuck, _)) => self.measured,
            Some((ActuatorFault::Runaway { step }, _)) => (self.measured + step).min(FORCE_MAX),
            Some((ActuatorFault::Offset(o), _)) => {
                let biased = i64::from(lag(self.measured, demand)) + o;
                biased.clamp(0, i64::from(FORCE_MAX)) as u32
            }
        };
        self.measured
    }
}

impl Default for WheelActuator {
    fn default() -> Self {
        WheelActuator::new()
    }
}

/// Thresholds of the divergence monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActuatorMonitorConfig {
    /// Error above which a cycle can count as divergent (counts).
    pub tolerance: u32,
    /// Error-shrink slack: a cycle is divergent only when the error did
    /// not shrink by more than this (a converging lag shrinks fast).
    pub shrink_slack: u32,
    /// Divergent cycles within the window that trip the monitor (`m`).
    pub window_misses: u32,
    /// Window length in cycles (`k`), at most 64.
    pub window_cycles: u32,
}

impl Default for ActuatorMonitorConfig {
    /// Tolerance 300 counts, `m = 3` divergent cycles in a `k = 8`
    /// window.
    fn default() -> Self {
        ActuatorMonitorConfig {
            tolerance: 300,
            shrink_slack: 8,
            window_misses: 3,
            window_cycles: 8,
        }
    }
}

/// One cycle's verdict from the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorVerdict {
    /// This cycle counted as divergent.
    pub divergent: bool,
    /// The m-in-k window filled: the actuator must be failed safe.
    pub tripped: bool,
}

/// Wheel-local demand-vs-measured divergence monitor.
///
/// # Examples
///
/// ```
/// use nlft_bbw::actuator::{ActuatorFault, ActuatorMonitor, ActuatorMonitorConfig, WheelActuator};
///
/// let mut act = WheelActuator::new();
/// act.attach_fault(ActuatorFault::Stuck, 4);
/// let mut mon = ActuatorMonitor::new(ActuatorMonitorConfig::default());
/// let mut tripped_at = None;
/// for cycle in 0..20 {
///     let measured = act.apply(cycle, 1600);
///     if mon.observe(1600, measured).tripped {
///         tripped_at = Some(cycle);
///         break;
///     }
/// }
/// assert!(tripped_at.is_some(), "a stuck actuator must be caught");
/// ```
#[derive(Debug, Clone)]
pub struct ActuatorMonitor {
    config: ActuatorMonitorConfig,
    /// Divergence window, newest in bit 0 (1 = divergent).
    history: u64,
    last_error: Option<u32>,
    tripped: bool,
    divergent_cycles: u32,
}

impl ActuatorMonitor {
    /// Creates the monitor.
    ///
    /// # Panics
    ///
    /// Panics if the window is invalid (zero `m`, `k > 64`, or
    /// `m > k`).
    pub fn new(config: ActuatorMonitorConfig) -> Self {
        assert!(config.window_misses > 0, "window_misses must be positive");
        assert!(
            config.window_cycles <= 64,
            "window_cycles must be at most 64"
        );
        assert!(
            config.window_misses <= config.window_cycles,
            "window_misses must be at most window_cycles"
        );
        ActuatorMonitor {
            config,
            history: 0,
            last_error: None,
            tripped: false,
            divergent_cycles: 0,
        }
    }

    /// Whether the monitor has tripped.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Divergent cycles counted so far.
    pub fn divergent_cycles(&self) -> u32 {
        self.divergent_cycles
    }

    /// Feeds one cycle's demand and measured force. Once tripped, the
    /// monitor latches.
    pub fn observe(&mut self, demand: u32, measured: u32) -> MonitorVerdict {
        if self.tripped {
            return MonitorVerdict {
                divergent: false,
                tripped: true,
            };
        }
        let error = measured.abs_diff(demand);
        // A cycle is divergent only when the error is large *and* not
        // shrinking; with no baseline yet (first observation) we cannot
        // assess convergence, so give the lag one cycle of grace.
        let divergent = error > self.config.tolerance
            && self
                .last_error
                .is_some_and(|prev| error + self.config.shrink_slack >= prev);
        self.last_error = Some(error);
        if divergent {
            self.divergent_cycles += 1;
        }
        self.history = (self.history << 1) | u64::from(divergent);
        let mask = if self.config.window_cycles == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.window_cycles) - 1
        };
        if (self.history & mask).count_ones() >= self.config.window_misses {
            self.tripped = true;
        }
        MonitorVerdict {
            divergent,
            tripped: self.tripped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> ActuatorMonitor {
        ActuatorMonitor::new(ActuatorMonitorConfig::default())
    }

    #[test]
    fn healthy_lag_converges_and_never_trips() {
        let mut act = WheelActuator::new();
        let mut mon = monitor();
        // A hard step: 0 → 3000. Error starts large but shrinks every
        // cycle, so no cycle is divergent.
        for cycle in 0..40 {
            let m = act.apply(cycle, 3000);
            let v = mon.observe(3000, m);
            assert!(!v.tripped, "healthy step transient must not trip");
        }
        assert!(act.measured() >= 2990, "lag converged");
        assert_eq!(mon.divergent_cycles(), 0);
    }

    #[test]
    fn repeated_steps_do_not_trip() {
        let mut act = WheelActuator::new();
        let mut mon = monitor();
        // Pedal pumping: alternating big steps, each transient converging.
        for cycle in 0..60 {
            let demand = if (cycle / 10) % 2 == 0 { 3200 } else { 400 };
            let m = act.apply(cycle, demand);
            assert!(!mon.observe(demand, m).tripped, "pumping must not trip");
        }
    }

    #[test]
    fn stuck_actuator_trips_within_the_window() {
        let mut act = WheelActuator::new();
        act.attach_fault(ActuatorFault::Stuck, 10);
        let mut mon = monitor();
        let mut tripped_at = None;
        for cycle in 0..40 {
            let m = act.apply(cycle, 2000);
            if mon.observe(2000, m).tripped {
                tripped_at = Some(cycle);
                break;
            }
        }
        // Stuck at ~10 cycles in (measured ≈ 1887, error ≈ 113 < tol —
        // wait for the demand to move): with constant demand the stuck
        // actuator has already converged, so no divergence. Tolerated:
        // a stuck actuator at the right force is harmless until the
        // demand changes.
        if let Some(t) = tripped_at {
            assert!(t >= 10);
        }
        // Now change the demand: the frozen actuator must be caught.
        let mut act = WheelActuator::new();
        act.attach_fault(ActuatorFault::Stuck, 5);
        let mut mon = monitor();
        let mut caught = false;
        for cycle in 0..40 {
            let demand = if cycle < 8 { 400 } else { 2500 };
            let m = act.apply(cycle, demand);
            if mon.observe(demand, m).tripped {
                caught = true;
                break;
            }
        }
        assert!(caught, "a stuck actuator must trip once the demand moves");
    }

    #[test]
    fn runaway_actuator_trips() {
        let mut act = WheelActuator::new();
        act.attach_fault(ActuatorFault::Runaway { step: 400 }, 3);
        let mut mon = monitor();
        let mut tripped_at = None;
        for cycle in 0..30 {
            let m = act.apply(cycle, 500);
            if mon.observe(500, m).tripped {
                tripped_at = Some(cycle);
                break;
            }
        }
        let t = tripped_at.expect("runaway must trip");
        assert!(t <= 10, "runaway caught quickly, got cycle {t}");
    }

    #[test]
    fn large_offset_trips_small_offset_tolerated() {
        // Offset of 100/cycle → fixed point 400 above demand > tolerance.
        let mut act = WheelActuator::new();
        act.attach_fault(ActuatorFault::Offset(100), 0);
        let mut mon = monitor();
        let mut caught = false;
        for cycle in 0..40 {
            let m = act.apply(cycle, 1000);
            caught |= mon.observe(1000, m).tripped;
        }
        assert!(caught, "4×100 = 400 > 300 must trip");

        // Offset of 50/cycle → fixed point 200 above demand < tolerance.
        let mut act = WheelActuator::new();
        act.attach_fault(ActuatorFault::Offset(50), 0);
        let mut mon = monitor();
        for cycle in 0..40 {
            let m = act.apply(cycle, 1000);
            assert!(!mon.observe(1000, m).tripped, "bounded bias is masked");
        }
        assert!(act.measured() <= 1200, "bias stays bounded");
    }

    #[test]
    fn fail_safe_releases_the_brake() {
        let mut act = WheelActuator::new();
        for cycle in 0..20 {
            act.apply(cycle, 3000);
        }
        assert!(act.measured() > 2900);
        act.fail_safe();
        for cycle in 20..60 {
            act.apply(cycle, 3000);
        }
        assert_eq!(act.measured(), 0, "released regardless of demand");
        assert!(act.failed_safe());
    }

    #[test]
    fn monitor_latches_once_tripped() {
        let mut mon = monitor();
        for _ in 0..5 {
            mon.observe(2000, 0);
        }
        assert!(mon.tripped());
        // Even a perfect cycle cannot un-trip it.
        assert!(mon.observe(2000, 2000).tripped);
    }

    #[test]
    fn single_glitch_is_tolerated() {
        let mut act = WheelActuator::new();
        let mut mon = monitor();
        for cycle in 0..30 {
            let mut m = act.apply(cycle, 1500);
            if cycle == 12 {
                m = 0; // one wild sample on the measurement path
            }
            assert!(!mon.observe(1500, m).tripped, "m-in-k tolerates one glitch");
        }
    }
}
