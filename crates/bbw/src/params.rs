//! The paper's parameter assignment (§3.3).

use std::fmt;

/// Dependability parameters of a brake-by-wire node, with the paper's §3.3
/// values as defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BbwParams {
    /// Permanent fault rate `λ_P` (per hour). Paper: `1.82e-5` from
    /// MIL-HDBK-217 for a 32-bit automotive node.
    pub lambda_p: f64,
    /// Transient fault rate `λ_T` (per hour). Paper: `10·λ_P`.
    pub lambda_t: f64,
    /// Error-detection coverage `C_D`. Paper baseline: 0.99.
    pub coverage: f64,
    /// P(TEM masks | transient detected). Paper: 0.90.
    pub p_t: f64,
    /// P(omission | transient detected). Paper: 0.05.
    pub p_om: f64,
    /// P(fail-silent | transient detected) — kernel hits. Paper: 0.05.
    pub p_fs: f64,
    /// Restart repair rate `μ_R` (per hour). Paper: `1.2e3` (3 s).
    pub mu_r: f64,
    /// Omission reintegration rate `μ_OM` (per hour). Paper: `2.25e3`
    /// (1.6 s).
    pub mu_om: f64,
}

impl BbwParams {
    /// The exact §3.3 parameter set.
    pub fn paper() -> Self {
        BbwParams {
            lambda_p: 1.82e-5,
            lambda_t: 1.82e-4,
            coverage: 0.99,
            p_t: 0.90,
            p_om: 0.05,
            p_fs: 0.05,
            mu_r: 1.2e3,
            mu_om: 2.25e3,
        }
    }

    /// Replaces the coverage (Fig. 14 sweeps it).
    pub fn with_coverage(mut self, coverage: f64) -> Self {
        self.coverage = coverage;
        self
    }

    /// Scales the transient fault rate by `k` (Fig. 14 sweeps it).
    pub fn with_transient_multiplier(mut self, k: f64) -> Self {
        self.lambda_t = 1.82e-4 * k;
        self
    }

    /// Validates invariants: all rates positive, probabilities in `[0,1]`,
    /// and the detected-transient split summing to 1.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), ParamError> {
        let positive = [
            ("lambda_p", self.lambda_p),
            ("lambda_t", self.lambda_t),
            ("mu_r", self.mu_r),
            ("mu_om", self.mu_om),
        ];
        for (name, v) in positive {
            if !(v > 0.0 && v.is_finite()) {
                return Err(ParamError::NonPositiveRate(name));
            }
        }
        let probs = [
            ("coverage", self.coverage),
            ("p_t", self.p_t),
            ("p_om", self.p_om),
            ("p_fs", self.p_fs),
        ];
        for (name, v) in probs {
            if !(0.0..=1.0).contains(&v) {
                return Err(ParamError::ProbabilityOutOfRange(name));
            }
        }
        if (self.p_t + self.p_om + self.p_fs - 1.0).abs() > 1e-9 {
            return Err(ParamError::SplitNotNormalised);
        }
        Ok(())
    }

    /// Rate at which a single NLFT node suffers a *non-masked* event
    /// (anything but a TEM-masked transient): `λ_P + λ_T(1 − C_D·P_T)`.
    pub fn nlft_unmasked_rate(&self) -> f64 {
        self.lambda_p + self.lambda_t * (1.0 - self.coverage * self.p_t)
    }

    /// Rate of any activated fault on one node: `λ_P + λ_T`.
    pub fn total_fault_rate(&self) -> f64 {
        self.lambda_p + self.lambda_t
    }

    /// Rate of uncovered (escaping) errors on one node:
    /// `(λ_P + λ_T)(1 − C_D)`.
    pub fn uncovered_rate(&self) -> f64 {
        self.total_fault_rate() * (1.0 - self.coverage)
    }
}

impl Default for BbwParams {
    fn default() -> Self {
        BbwParams::paper()
    }
}

/// Violation reported by [`BbwParams::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// A rate is zero, negative, or non-finite.
    NonPositiveRate(&'static str),
    /// A probability lies outside `[0, 1]`.
    ProbabilityOutOfRange(&'static str),
    /// `P_T + P_OM + P_FS ≠ 1`.
    SplitNotNormalised,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NonPositiveRate(n) => write!(f, "rate `{n}` must be positive"),
            ParamError::ProbabilityOutOfRange(n) => {
                write!(f, "probability `{n}` must be in [0,1]")
            }
            ParamError::SplitNotNormalised => {
                write!(f, "p_t + p_om + p_fs must sum to 1")
            }
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_validate() {
        let p = BbwParams::paper();
        assert!(p.validate().is_ok());
        assert!((p.lambda_t / p.lambda_p - 10.0).abs() < 1e-9);
        // 3 s and 1.6 s as rates.
        assert!((3600.0 / p.mu_r - 3.0).abs() < 1e-9);
        assert!((3600.0 / p.mu_om - 1.6).abs() < 1e-9);
    }

    #[test]
    fn derived_rates() {
        let p = BbwParams::paper();
        assert!((p.total_fault_rate() - 2.002e-4).abs() < 1e-12);
        let unmasked = p.lambda_p + p.lambda_t * (1.0 - 0.99 * 0.90);
        assert!((p.nlft_unmasked_rate() - unmasked).abs() < 1e-15);
        assert!(p.nlft_unmasked_rate() < p.total_fault_rate());
        assert!((p.uncovered_rate() - 2.002e-4 * 0.01).abs() < 1e-15);
    }

    #[test]
    fn builders_adjust_parameters() {
        let p = BbwParams::paper().with_coverage(0.999);
        assert_eq!(p.coverage, 0.999);
        let p = BbwParams::paper().with_transient_multiplier(100.0);
        assert!((p.lambda_t - 1.82e-2).abs() < 1e-12);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut p = BbwParams::paper();
        p.lambda_p = 0.0;
        assert_eq!(p.validate(), Err(ParamError::NonPositiveRate("lambda_p")));

        let mut p = BbwParams::paper();
        p.coverage = 1.5;
        assert_eq!(
            p.validate(),
            Err(ParamError::ProbabilityOutOfRange("coverage"))
        );

        let mut p = BbwParams::paper();
        p.p_t = 0.5;
        assert_eq!(p.validate(), Err(ParamError::SplitNotNormalised));
    }
}
