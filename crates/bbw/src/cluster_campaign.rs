//! Distributed fault-injection campaigns over the executable cluster.
//!
//! The node-level campaigns of `nlft-core` classify outcomes at the node
//! boundary; this campaign closes the loop at the *system* boundary: inject
//! machine-level transients into random nodes of the running six-node BBW
//! cluster and observe what the vehicle sees — nothing, a degraded-mode
//! episode, or lost braking. With TEM doing its job, the overwhelming
//! majority of faults must be invisible at this level.

use nlft_machine::fault::FaultSpace;
use nlft_net::frame::NodeId;
use nlft_net::inject::{InjectionCounts, NetFaultPlan, NetFaultRates};
use nlft_sim::rng::RngStream;

use crate::cluster::{BbwCluster, ClusterInjection, CU_A, CU_B, WHEELS};

/// Configuration of a cluster-level campaign.
#[derive(Debug, Clone)]
pub struct ClusterCampaignConfig {
    /// Number of independent cluster runs, one injection each.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Communication cycles per run.
    pub cycles: u32,
    /// Fault space sampled for each injection.
    pub space: FaultSpace,
}

impl ClusterCampaignConfig {
    /// A standard campaign: CPU-only single-bit transients.
    pub fn new(trials: u64, seed: u64) -> Self {
        ClusterCampaignConfig {
            trials,
            seed,
            cycles: 10,
            space: FaultSpace::cpu_only(),
        }
    }
}

/// System-boundary outcome classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCampaignResult {
    /// Trials run.
    pub trials: u64,
    /// No externally visible effect at all.
    pub unaffected: u64,
    /// At least one omitted slot, but full membership throughout.
    pub omission_only: u64,
    /// A degraded-mode episode (membership dropped, force redistributed).
    pub degraded_episode: u64,
    /// Braking service lost.
    pub service_lost: u64,
}

impl ClusterCampaignResult {
    /// Fraction of faults invisible at the vehicle boundary.
    pub fn masking_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.unaffected as f64 / self.trials as f64
        }
    }
}

const ALL_NODES: [NodeId; 6] = [CU_A, CU_B, WHEELS[0], WHEELS[1], WHEELS[2], WHEELS[3]];

/// Runs the campaign. Deterministic in the seed.
///
/// # Panics
///
/// Panics if `trials` or `cycles` is zero.
pub fn run_cluster_campaign(config: &ClusterCampaignConfig) -> ClusterCampaignResult {
    assert!(config.trials > 0, "need trials");
    assert!(config.cycles > 1, "need at least two cycles");
    let root = RngStream::new(config.seed);
    let mut result = ClusterCampaignResult {
        trials: config.trials,
        ..ClusterCampaignResult::default()
    };
    for trial in 0..config.trials {
        let mut rng = root.fork_indexed("cluster-trial", trial);
        let node = ALL_NODES[rng.uniform_range(0, ALL_NODES.len() as u64) as usize];
        // Cycle ≥ 1 so wheel victims are actually executing (set-points
        // arrive after the first cycle).
        let cycle = rng.uniform_range(1, u64::from(config.cycles) - 1) as u32;
        let injection = ClusterInjection {
            cycle,
            node,
            copy: rng.uniform_range(0, 2) as u32,
            at_cycle: rng.uniform_range(1, 40),
            fault: config.space.sample(&mut rng),
        };
        let mut cluster = BbwCluster::new();
        cluster.inject(injection);
        let report = cluster.run(config.cycles, |_| 1200);
        if report.service_lost {
            result.service_lost += 1;
        } else if report.degraded_cycles > 0 {
            result.degraded_episode += 1;
        } else if report.omissions > 0 {
            result.omission_only += 1;
        } else {
            result.unaffected += 1;
        }
    }
    result
}

/// Configuration of a combined node + network storm campaign.
#[derive(Debug, Clone)]
pub struct NetStormCampaignConfig {
    /// Number of independent cluster runs.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Communication cycles per run.
    pub cycles: u32,
    /// Worker threads; results are identical for any value.
    pub threads: usize,
    /// Storm intensity in `[0, 1]`, scaling [`NetFaultRates::storm`] on
    /// every node.
    pub intensity: f64,
    /// Additionally inject one machine-level transient per trial (the
    /// node-level half of the combined campaign).
    pub with_node_faults: bool,
}

impl NetStormCampaignConfig {
    /// A moderate storm over the full six-node cluster.
    pub fn new(trials: u64, seed: u64) -> Self {
        NetStormCampaignConfig {
            trials,
            seed,
            cycles: 30,
            threads: 1,
            intensity: 0.3,
            with_node_faults: true,
        }
    }
}

/// Trial verdicts of a storm campaign, most severe first. Each trial gets
/// exactly one verdict: `split_membership` beats `service_lost` beats
/// `degraded_episode` beats `omission_only` beats `unaffected`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStormOutcomes {
    /// Trials run.
    pub trials: u64,
    /// Membership majority lost at some point (≤ 3 of 6 in the view).
    pub split_membership: u64,
    /// Braking service lost (no CU member or < 3 wheels serving).
    pub service_lost: u64,
    /// Degraded-mode episode: membership shrank, force was redistributed.
    pub degraded_episode: u64,
    /// Slots were lost but membership never shrank.
    pub omission_only: u64,
    /// The storm left no externally visible trace.
    pub unaffected: u64,
}

/// Everything a storm campaign measures: verdict fractions plus the
/// *measured* bus-level coverage parameters that the analytic models take
/// as inputs (instead of assuming them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStormCampaignResult {
    /// Verdict tallies.
    pub outcomes: NetStormOutcomes,
    /// Injection decisions across all trials.
    pub injected: InjectionCounts,
    /// Frames the CRC rejected, across all trials.
    pub crc_rejects: u64,
    /// Corruptions that actually landed on a transmitted frame.
    pub corruptions_applied: u64,
    /// Babbling transmissions the guardian blocked.
    pub guardian_blocks: u64,
    /// Forged frames the receiver identity check rejected.
    pub masquerade_rejects: u64,
    /// Masquerades that actually landed on a transmitted frame.
    pub masquerades_applied: u64,
    /// Every observed exclusion→readmission latency (cycles), sorted.
    pub reintegration_latencies: Vec<u32>,
}

impl NetStormCampaignResult {
    /// Measured probability that a wire corruption is caught by the frame
    /// CRC. The paper takes detection coverage as a model *input*; here it
    /// is an experiment *output* (and should be 1.0 for 1–2-bit faults).
    pub fn crc_reject_rate(&self) -> f64 {
        ratio(self.crc_rejects, self.corruptions_applied)
    }

    /// Measured probability that a babbling attempt is blocked.
    pub fn guardian_block_rate(&self) -> f64 {
        ratio(self.guardian_blocks, self.injected.babbles)
    }

    /// Measured probability that a masqueraded frame is rejected.
    pub fn masquerade_reject_rate(&self) -> f64 {
        ratio(self.masquerade_rejects, self.masquerades_applied)
    }

    /// Percentile of the reintegration-latency distribution (0–100).
    pub fn reintegration_percentile(&self, pct: u32) -> Option<u32> {
        if self.reintegration_latencies.is_empty() {
            return None;
        }
        let n = self.reintegration_latencies.len();
        let idx = ((n - 1) * pct as usize) / 100;
        Some(self.reintegration_latencies[idx])
    }

    fn merge(&mut self, other: NetStormCampaignResult) {
        self.outcomes.trials += other.outcomes.trials;
        self.outcomes.split_membership += other.outcomes.split_membership;
        self.outcomes.service_lost += other.outcomes.service_lost;
        self.outcomes.degraded_episode += other.outcomes.degraded_episode;
        self.outcomes.omission_only += other.outcomes.omission_only;
        self.outcomes.unaffected += other.outcomes.unaffected;
        self.injected.merge(&other.injected);
        self.crc_rejects += other.crc_rejects;
        self.corruptions_applied += other.corruptions_applied;
        self.guardian_blocks += other.guardian_blocks;
        self.masquerade_rejects += other.masquerade_rejects;
        self.masquerades_applied += other.masquerades_applied;
        self.reintegration_latencies
            .extend(other.reintegration_latencies);
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs the combined node + network storm campaign. Deterministic in the
/// seed and invariant in the thread count: every trial forks its own
/// stream from `(seed, trial index)`, so shard boundaries cannot perturb
/// any drawn value, and the latency distribution is sorted before being
/// returned.
///
/// # Panics
///
/// Panics if `trials` is zero, `cycles < 2`, or `intensity` is outside
/// `[0, 1]`.
pub fn run_net_storm_campaign(config: &NetStormCampaignConfig) -> NetStormCampaignResult {
    assert!(config.trials > 0, "need trials");
    assert!(config.cycles > 1, "need at least two cycles");
    assert!(
        (0.0..=1.0).contains(&config.intensity),
        "intensity must be in [0, 1]"
    );
    let c = config.clone();
    let campaign = nlft_engine::indexed_campaign(
        "bbw-net-storm",
        "net-storm-trial",
        config.trials,
        NetStormCampaignResult::default,
        move |trial, _ctx, result: &mut NetStormCampaignResult| {
            result.merge(run_storm_shard(&c, trial, trial + 1));
        },
        |into, from| into.merge(from),
    );
    let engine = nlft_engine::EngineConfig::with_workers(config.threads.max(1));
    let mut result = nlft_engine::run_trials(campaign, &engine).acc;
    result.reintegration_latencies.sort_unstable();
    result
}

fn run_storm_shard(
    config: &NetStormCampaignConfig,
    start: u64,
    end: u64,
) -> NetStormCampaignResult {
    let root = RngStream::new(config.seed);
    let mut result = NetStormCampaignResult::default();
    for trial in start..end {
        let mut rng = root.fork_indexed("net-storm-trial", trial);
        let mut cluster = BbwCluster::new();
        let plan = NetFaultPlan::quiet()
            .with_nodes(&ALL_NODES, NetFaultRates::storm(config.intensity))
            .with_dynamic(0.10 * config.intensity, 0.10 * config.intensity);
        cluster.attach_net_faults(plan, rng.fork("net-injector"));
        if config.with_node_faults {
            let node = ALL_NODES[rng.uniform_range(0, ALL_NODES.len() as u64) as usize];
            let cycle = rng.uniform_range(1, u64::from(config.cycles) - 1) as u32;
            cluster.inject(ClusterInjection {
                cycle,
                node,
                copy: rng.uniform_range(0, 2) as u32,
                at_cycle: rng.uniform_range(1, 40),
                fault: FaultSpace::cpu_only().sample(&mut rng),
            });
        }
        let report = cluster.run(config.cycles, |_| 1200);
        result.outcomes.trials += 1;
        if report.split_membership {
            result.outcomes.split_membership += 1;
        } else if report.service_lost {
            result.outcomes.service_lost += 1;
        } else if report.degraded_cycles > 0 {
            result.outcomes.degraded_episode += 1;
        } else if report.omissions > 0 {
            result.outcomes.omission_only += 1;
        } else {
            result.outcomes.unaffected += 1;
        }
        result.injected.merge(&cluster.net_injection_counts());
        result.crc_rejects += report.crc_rejects;
        result.corruptions_applied += report.corruptions_applied;
        result.guardian_blocks += report.guardian_blocks;
        result.masquerade_rejects += report.masquerade_rejects;
        result.masquerades_applied += report.masquerades_applied;
        result
            .reintegration_latencies
            .extend(report.reintegration_latencies);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let cfg = ClusterCampaignConfig::new(40, 0xC1A5);
        assert_eq!(run_cluster_campaign(&cfg), run_cluster_campaign(&cfg));
    }

    #[test]
    fn single_transients_never_lose_braking() {
        let cfg = ClusterCampaignConfig::new(150, 0xC1A5);
        let r = run_cluster_campaign(&cfg);
        assert_eq!(
            r.service_lost, 0,
            "a single CPU transient must never take the brakes out"
        );
        assert_eq!(
            r.trials,
            r.unaffected + r.omission_only + r.degraded_episode + r.service_lost
        );
    }

    #[test]
    fn vast_majority_of_faults_are_invisible() {
        let cfg = ClusterCampaignConfig::new(150, 0x600D);
        let r = run_cluster_campaign(&cfg);
        assert!(
            r.masking_fraction() > 0.9,
            "TEM should hide almost everything at the vehicle boundary: {r:?}"
        );
    }

    #[test]
    fn storm_campaign_identical_across_thread_counts() {
        let mut cfg = NetStormCampaignConfig::new(10, 0x5708);
        cfg.cycles = 20;
        cfg.threads = 1;
        let one = run_net_storm_campaign(&cfg);
        cfg.threads = 2;
        let two = run_net_storm_campaign(&cfg);
        cfg.threads = 5;
        let five = run_net_storm_campaign(&cfg);
        assert_eq!(one, two, "2 threads diverged from 1");
        assert_eq!(one, five, "5 threads diverged from 1");
        // Golden pin: any change to the RNG fork labels, the injector's
        // draw order or the cluster's cycle structure shows up here.
        // (Re-pinned in 0.2.0: CU set-points are now 6-word sealed fresh
        // commands and wheels hold-last-safe through short CU outages,
        // which moves corruption byte draws and outcome verdicts.)
        let o = &one.outcomes;
        assert_eq!(
            (
                o.trials,
                o.split_membership,
                o.service_lost,
                o.degraded_episode,
                o.omission_only,
                o.unaffected
            ),
            (10, 1, 5, 4, 0, 0),
            "golden outcome distribution moved: {o:?}"
        );
        assert_eq!(
            one.injected.total(),
            239,
            "golden injection count moved: {:?}",
            one.injected
        );
        assert_eq!((one.crc_rejects, one.guardian_blocks), (92, 37));
    }

    #[test]
    fn storm_measures_bus_coverage_parameters() {
        let mut cfg = NetStormCampaignConfig::new(20, 0xC0FE);
        cfg.cycles = 30;
        cfg.with_node_faults = false;
        let r = run_net_storm_campaign(&cfg);
        assert!(r.corruptions_applied > 50, "storm too weak: {r:?}");
        assert!(r.injected.babbles > 20, "storm too weak: {r:?}");
        assert!(r.masquerades_applied > 10, "storm too weak: {r:?}");
        // 1–2-bit wire corruptions are within CRC-32's guaranteed detection
        // class, and the guardian blocks every foreign-slot attempt.
        assert_eq!(r.crc_reject_rate(), 1.0, "{r:?}");
        assert_eq!(r.guardian_block_rate(), 1.0, "{r:?}");
        // A masqueraded frame occasionally *also* gets corrupted on the
        // wire and is then charged to the CRC instead, so the identity
        // check's measured rate sits just below 1.
        assert!(r.masquerade_reject_rate() > 0.8, "{r:?}");
        // Under a storm nodes get excluded and come back: the latency
        // distribution is non-empty and its percentiles are ordered.
        assert!(!r.reintegration_latencies.is_empty());
        let p50 = r.reintegration_percentile(50).unwrap();
        let p95 = r.reintegration_percentile(95).unwrap();
        assert!(p50 <= p95);
    }
}
