//! Distributed fault-injection campaigns over the executable cluster.
//!
//! The node-level campaigns of `nlft-core` classify outcomes at the node
//! boundary; this campaign closes the loop at the *system* boundary: inject
//! machine-level transients into random nodes of the running six-node BBW
//! cluster and observe what the vehicle sees — nothing, a degraded-mode
//! episode, or lost braking. With TEM doing its job, the overwhelming
//! majority of faults must be invisible at this level.

use nlft_machine::fault::FaultSpace;
use nlft_net::frame::NodeId;
use nlft_sim::rng::RngStream;

use crate::cluster::{BbwCluster, ClusterInjection, CU_A, CU_B, WHEELS};

/// Configuration of a cluster-level campaign.
#[derive(Debug, Clone)]
pub struct ClusterCampaignConfig {
    /// Number of independent cluster runs, one injection each.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Communication cycles per run.
    pub cycles: u32,
    /// Fault space sampled for each injection.
    pub space: FaultSpace,
}

impl ClusterCampaignConfig {
    /// A standard campaign: CPU-only single-bit transients.
    pub fn new(trials: u64, seed: u64) -> Self {
        ClusterCampaignConfig {
            trials,
            seed,
            cycles: 10,
            space: FaultSpace::cpu_only(),
        }
    }
}

/// System-boundary outcome classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCampaignResult {
    /// Trials run.
    pub trials: u64,
    /// No externally visible effect at all.
    pub unaffected: u64,
    /// At least one omitted slot, but full membership throughout.
    pub omission_only: u64,
    /// A degraded-mode episode (membership dropped, force redistributed).
    pub degraded_episode: u64,
    /// Braking service lost.
    pub service_lost: u64,
}

impl ClusterCampaignResult {
    /// Fraction of faults invisible at the vehicle boundary.
    pub fn masking_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.unaffected as f64 / self.trials as f64
        }
    }
}

const ALL_NODES: [NodeId; 6] = [CU_A, CU_B, WHEELS[0], WHEELS[1], WHEELS[2], WHEELS[3]];

/// Runs the campaign. Deterministic in the seed.
///
/// # Panics
///
/// Panics if `trials` or `cycles` is zero.
pub fn run_cluster_campaign(config: &ClusterCampaignConfig) -> ClusterCampaignResult {
    assert!(config.trials > 0, "need trials");
    assert!(config.cycles > 1, "need at least two cycles");
    let root = RngStream::new(config.seed);
    let mut result = ClusterCampaignResult {
        trials: config.trials,
        ..ClusterCampaignResult::default()
    };
    for trial in 0..config.trials {
        let mut rng = root.fork_indexed("cluster-trial", trial);
        let node = ALL_NODES[rng.uniform_range(0, ALL_NODES.len() as u64) as usize];
        // Cycle ≥ 1 so wheel victims are actually executing (set-points
        // arrive after the first cycle).
        let cycle = rng.uniform_range(1, u64::from(config.cycles) - 1) as u32;
        let injection = ClusterInjection {
            cycle,
            node,
            copy: rng.uniform_range(0, 2) as u32,
            at_cycle: rng.uniform_range(1, 40),
            fault: config.space.sample(&mut rng),
        };
        let mut cluster = BbwCluster::new();
        cluster.inject(injection);
        let report = cluster.run(config.cycles, |_| 1200);
        if report.service_lost {
            result.service_lost += 1;
        } else if report.degraded_cycles > 0 {
            result.degraded_episode += 1;
        } else if report.omissions > 0 {
            result.omission_only += 1;
        } else {
            result.unaffected += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let cfg = ClusterCampaignConfig::new(40, 0xC1A5);
        assert_eq!(run_cluster_campaign(&cfg), run_cluster_campaign(&cfg));
    }

    #[test]
    fn single_transients_never_lose_braking() {
        let cfg = ClusterCampaignConfig::new(150, 0xC1A5);
        let r = run_cluster_campaign(&cfg);
        assert_eq!(
            r.service_lost, 0,
            "a single CPU transient must never take the brakes out"
        );
        assert_eq!(
            r.trials,
            r.unaffected + r.omission_only + r.degraded_episode + r.service_lost
        );
    }

    #[test]
    fn vast_majority_of_faults_are_invisible() {
        let cfg = ClusterCampaignConfig::new(150, 0x600D);
        let r = run_cluster_campaign(&cfg);
        assert!(
            r.masking_fraction() > 0.9,
            "TEM should hide almost everything at the vehicle boundary: {r:?}"
        );
    }
}
