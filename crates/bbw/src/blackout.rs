//! Blackout-survival campaigns over the executable cluster.
//!
//! The storm campaign in [`crate::cluster_campaign`] perturbs nodes
//! independently; this campaign injects *correlated* loss: a power/bus
//! blackout resets k of the six nodes in the same slot, wiping their
//! volatile state. With the TTP/C-style startup protocol enabled
//! ([`crate::cluster::BbwCluster::enable_startup`]) the victims re-enter
//! service through Listen → cold-start contention → integration, and the
//! campaign measures what the vehicle actually experiences:
//!
//! * time from the blackout to the first winning cold-start frame,
//! * time until the membership view is whole again,
//! * the braking-unavailability window (cycles with fewer than three
//!   wheels delivering force),
//! * hold-last-safe coverage while the command stream is dark, and
//! * the startup protocol's own health: big-bang collision rounds,
//!   minority-clique reverts, and — critically — that reverted nodes
//!   never babble (zero guardian blocks).

use nlft_net::frame::NodeId;
use nlft_net::inject::{BlackoutSpec, NetFaultPlan};
use nlft_sim::rng::RngStream;

use crate::cluster::{BbwCluster, CU_A, CU_B, WHEELS};

const ALL_NODES: [NodeId; 6] = [CU_A, CU_B, WHEELS[0], WHEELS[1], WHEELS[2], WHEELS[3]];

/// Configuration of a blackout-survival campaign.
#[derive(Debug, Clone)]
pub struct BlackoutCampaignConfig {
    /// Number of independent cluster runs, one blackout each.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads; results are identical for any value.
    pub threads: usize,
    /// Healthy cycles before the blackout strikes (must be ≥ 2 so the
    /// clique-avoidance check has armed on real majority traffic).
    pub warmup_cycles: u32,
    /// Cycles observed after the blackout.
    pub recovery_cycles: u32,
    /// Base reset duration per victim, in cycles.
    pub down_cycles: u32,
    /// Maximum extra per-victim down time (uniform in `0..=stagger`),
    /// modelling unequal power-supply recovery.
    pub stagger: u32,
    /// Minimum number of victims per trial (the actual count is drawn
    /// uniformly from `min_reset..=pool size`).
    pub min_reset: usize,
    /// Whether the central units are in the victim pool. With `false`
    /// only wheels reset, the surviving CUs keep the time base alive and
    /// no cold-start contention is needed.
    pub include_cus: bool,
}

impl BlackoutCampaignConfig {
    /// A standard campaign: short warm-up, correlated reset of 2–6 nodes
    /// (CUs included) with a small stagger, generous recovery window.
    pub fn new(trials: u64, seed: u64) -> Self {
        BlackoutCampaignConfig {
            trials,
            seed,
            threads: 1,
            warmup_cycles: 6,
            recovery_cycles: 40,
            down_cycles: 2,
            stagger: 2,
            min_reset: 2,
            include_cus: true,
        }
    }

    /// The deterministic worst case: every node (CUs included) resets in
    /// the same slot with zero stagger — the cluster must cold-start from
    /// total silence. Every trial is identical, which is exactly what the
    /// analytic cross-check wants.
    pub fn full_blackout(trials: u64, seed: u64) -> Self {
        BlackoutCampaignConfig {
            stagger: 0,
            min_reset: ALL_NODES.len(),
            ..BlackoutCampaignConfig::new(trials, seed)
        }
    }
}

/// Everything a blackout campaign measures. All latency vectors are
/// sorted; counters are summed across trials.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlackoutCampaignResult {
    /// Trials run.
    pub trials: u64,
    /// Trials in which the membership view returned to all six nodes.
    pub full_recoveries: u64,
    /// Trials that needed a cold-start contention (a winning cold-start
    /// frame was observed) rather than plain listening reintegration.
    pub cold_start_trials: u64,
    /// Cold-start frames put on the bus across all trials.
    pub cold_starts_sent: u64,
    /// Big-bang collision rounds (≥ 2 simultaneous cold-start frames).
    pub big_bangs: u64,
    /// Active nodes that reverted on seeing only a minority clique.
    pub clique_reverts: u64,
    /// Guardian blocks across all trials. The startup protocol keeps
    /// listening/reverted nodes silent *by construction*, so this must
    /// stay zero: clique avoidance never degenerates into babbling.
    pub guardian_blocks: u64,
    /// Cycles wheels braked on held last-safe set-points across all
    /// trials — the value-domain bridge over the command blackout.
    pub held_setpoint_cycles: u64,
    /// Per cold-start trial: cycles from the blackout to the first
    /// winning cold-start frame.
    pub time_to_cold_start: Vec<u32>,
    /// Per recovered trial: cycles from the blackout until the
    /// membership view was whole again.
    pub time_to_full_membership: Vec<u32>,
    /// Per trial: post-blackout cycles with fewer than three wheels
    /// delivering force (the braking-unavailability window).
    pub unavailability_cycles: Vec<u32>,
    /// Every node's reset→Active integration latency, across all trials.
    pub integration_latencies: Vec<u32>,
}

impl BlackoutCampaignResult {
    /// Fraction of trials whose membership view fully recovered.
    pub fn recovery_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.full_recoveries as f64 / self.trials as f64
        }
    }

    /// Mean reset→Active integration latency in cycles.
    pub fn integration_latency_mean(&self) -> f64 {
        if self.integration_latencies.is_empty() {
            return 0.0;
        }
        let sum: u64 = self
            .integration_latencies
            .iter()
            .map(|&l| u64::from(l))
            .sum();
        sum as f64 / self.integration_latencies.len() as f64
    }

    /// Percentile of the time-to-full-membership distribution (0–100).
    pub fn membership_percentile(&self, pct: u32) -> Option<u32> {
        if self.time_to_full_membership.is_empty() {
            return None;
        }
        let n = self.time_to_full_membership.len();
        let idx = ((n - 1) * pct as usize) / 100;
        Some(self.time_to_full_membership[idx])
    }

    fn merge(&mut self, other: BlackoutCampaignResult) {
        self.trials += other.trials;
        self.full_recoveries += other.full_recoveries;
        self.cold_start_trials += other.cold_start_trials;
        self.cold_starts_sent += other.cold_starts_sent;
        self.big_bangs += other.big_bangs;
        self.clique_reverts += other.clique_reverts;
        self.guardian_blocks += other.guardian_blocks;
        self.held_setpoint_cycles += other.held_setpoint_cycles;
        self.time_to_cold_start.extend(other.time_to_cold_start);
        self.time_to_full_membership
            .extend(other.time_to_full_membership);
        self.unavailability_cycles
            .extend(other.unavailability_cycles);
        self.integration_latencies
            .extend(other.integration_latencies);
    }
}

/// Runs the blackout campaign. Deterministic in the seed and invariant
/// in the thread count: every trial forks its own stream from
/// `(seed, trial index)` and all distributions are sorted before being
/// returned.
///
/// # Panics
///
/// Panics if `trials` is zero, `warmup_cycles < 2`, `recovery_cycles`
/// is zero, `down_cycles` is zero, or `min_reset` is outside
/// `1..=pool size`.
pub fn run_blackout_campaign(config: &BlackoutCampaignConfig) -> BlackoutCampaignResult {
    assert!(config.trials > 0, "need trials");
    assert!(
        config.warmup_cycles >= 2,
        "clique avoidance needs two warm-up cycles to arm"
    );
    assert!(config.recovery_cycles > 0, "need a recovery window");
    assert!(config.down_cycles > 0, "a blackout lasts at least 1 cycle");
    let pool_size = if config.include_cus {
        ALL_NODES.len()
    } else {
        WHEELS.len()
    };
    assert!(
        (1..=pool_size).contains(&config.min_reset),
        "min_reset must be in 1..={pool_size}"
    );
    let c = config.clone();
    let campaign = nlft_engine::indexed_campaign(
        "bbw-blackout",
        "blackout-trial",
        config.trials,
        BlackoutCampaignResult::default,
        move |trial, _ctx, result: &mut BlackoutCampaignResult| {
            result.merge(run_blackout_shard(&c, trial, trial + 1));
        },
        |into, from| into.merge(from),
    );
    let engine = nlft_engine::EngineConfig::with_workers(config.threads.max(1));
    let mut result = nlft_engine::run_trials(campaign, &engine).acc;
    result.time_to_cold_start.sort_unstable();
    result.time_to_full_membership.sort_unstable();
    result.unavailability_cycles.sort_unstable();
    result.integration_latencies.sort_unstable();
    result
}

fn run_blackout_shard(
    config: &BlackoutCampaignConfig,
    start: u64,
    end: u64,
) -> BlackoutCampaignResult {
    let root = RngStream::new(config.seed);
    let mut result = BlackoutCampaignResult::default();
    let blackout_at = config.warmup_cycles;
    let total_cycles = config.warmup_cycles + config.recovery_cycles;
    for trial in start..end {
        let mut rng = root.fork_indexed("blackout-trial", trial);
        let mut pool: Vec<NodeId> = if config.include_cus {
            ALL_NODES.to_vec()
        } else {
            WHEELS.to_vec()
        };
        let spread = (pool.len() - config.min_reset) as u64;
        let k = config.min_reset + rng.uniform_range(0, spread + 1) as usize;
        // Partial Fisher–Yates: the first k entries become the victims.
        for i in 0..k {
            let j = i + rng.uniform_range(0, (pool.len() - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(k);

        let mut cluster = BbwCluster::new();
        cluster.enable_startup();
        let plan = NetFaultPlan::quiet().with_blackout(BlackoutSpec {
            at_cycle: blackout_at,
            nodes: pool,
            down_cycles: config.down_cycles,
            stagger: config.stagger,
        });
        cluster.attach_net_faults(plan, rng.fork("net-injector"));
        let report = cluster.run(total_cycles, |_| 1200);
        let metrics = cluster
            .startup_metrics()
            .expect("startup enabled for blackout trials")
            .clone();

        result.trials += 1;
        result.cold_starts_sent += u64::from(metrics.cold_starts_sent);
        result.big_bangs += u64::from(metrics.big_bangs);
        result.clique_reverts += u64::from(metrics.clique_reverts);
        result.guardian_blocks += report.guardian_blocks;
        result.held_setpoint_cycles += u64::from(report.value.held_setpoint_cycles);
        if let Some(cycle) = metrics.first_cold_start_cycle {
            result.cold_start_trials += 1;
            result.time_to_cold_start.push(cycle - blackout_at);
        }
        result
            .integration_latencies
            .extend(metrics.integration_latencies.iter().map(|&(_, l)| l));

        let mut dipped = false;
        let mut recovered_at = None;
        let mut unavailable = 0u32;
        for rec in &report.records {
            if rec.cycle < blackout_at {
                continue;
            }
            let forces = rec.wheel_force.iter().filter(|f| f.is_some()).count();
            if forces < 3 {
                unavailable += 1;
            }
            if rec.members < ALL_NODES.len() {
                dipped = true;
            } else if dipped && recovered_at.is_none() {
                recovered_at = Some(rec.cycle);
            }
        }
        if let Some(cycle) = recovered_at {
            result.full_recoveries += 1;
            result.time_to_full_membership.push(cycle - blackout_at);
        }
        result.unavailability_cycles.push(unavailable);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlft_core::diagnosis::AlphaCountConfig;
    use nlft_kernel::escalation::{EscalationEvent, EscalationPolicy};
    use nlft_machine::fault::{FaultTarget, IntermittentFault, TransientFault};
    use nlft_net::startup::StartupEvent;

    #[test]
    fn gated_restart_reenters_through_listen_and_integration() {
        // A wheel develops an intermittent fault and is restarted by its
        // supervisor. With `gate_reintegration` set and the startup
        // protocol enabled, the restart must not rejoin instantly: the
        // supervisor parks (`AwaitingIntegration`), the node re-enters
        // through Listen, adopts timing from ongoing traffic, and only
        // once the protocol activates it does `Restarted` fire.
        let mut cluster = BbwCluster::new();
        cluster.enable_startup();
        cluster.supervise_all(
            AlphaCountConfig::default(),
            EscalationPolicy {
                gate_reintegration: true,
                ..EscalationPolicy::default()
            },
        );
        let victim = WHEELS[1];
        cluster.attach_intermittent(
            victim,
            IntermittentFault {
                fault: TransientFault {
                    target: FaultTarget::Pc,
                    mask: 1 << 20,
                },
                recurrence: 0.9,
                burst_jobs: 12,
            },
            RngStream::new(0x6A7E).fork("intermittent-wheel"),
        );
        let report = cluster.run(60, |_| 1200);
        let ladder = report.escalations_for(victim);
        let parked = ladder
            .iter()
            .position(|e| *e == EscalationEvent::AwaitingIntegration)
            .expect("gated restart must park on the integration gate");
        let restarted = ladder
            .iter()
            .position(|e| *e == EscalationEvent::Restarted)
            .expect("integration must complete the restart");
        assert!(
            parked < restarted,
            "Restarted before AwaitingIntegration: {ladder:?}"
        );
        let adopted = report
            .startup_events
            .iter()
            .any(|(_, ev)| *ev == StartupEvent::TimingAdopted(victim));
        let activated = report
            .startup_events
            .iter()
            .any(|(_, ev)| *ev == StartupEvent::Activated(victim));
        assert!(
            adopted && activated,
            "victim must re-enter via the protocol: {:?}",
            report.startup_events
        );
        assert_eq!(report.guardian_blocks, 0);
        assert_eq!(
            report.records.last().unwrap().members,
            6,
            "victim must end the run back in the membership"
        );
    }

    #[test]
    fn full_blackout_cold_starts_within_the_deterministic_bound() {
        // All six nodes reset at cycle 6 for exactly 2 cycles. The
        // fastest listener (slot 0, timeout 4) must win the contention
        // at cycle 6 + 2 + 4 = 12 and the membership view must be whole
        // again three cycles later: marker at 12, set-points at 13,
        // wheels back at 14, readmission complete at 15.
        let cfg = BlackoutCampaignConfig::full_blackout(3, 0xB1AC);
        let r = run_blackout_campaign(&cfg);
        assert_eq!(r.trials, 3);
        assert_eq!(r.cold_start_trials, 3, "{r:?}");
        assert_eq!(r.full_recoveries, 3, "{r:?}");
        assert_eq!(r.big_bangs, 0, "unique timeouts cannot collide: {r:?}");
        assert_eq!(r.guardian_blocks, 0, "startup nodes must not babble");
        assert!(
            r.time_to_cold_start.iter().all(|&t| t == 6),
            "cold start must land at down + fastest timeout: {r:?}"
        );
        assert!(
            r.time_to_full_membership.iter().all(|&t| t == 9),
            "membership must be whole three cycles after the marker: {r:?}"
        );
        // Every node of every trial integrates with the same latency in
        // a zero-stagger full blackout.
        assert_eq!(r.integration_latencies.len(), 18);
        assert!(r.integration_latencies.iter().all(|&l| l == 9), "{r:?}");
    }

    #[test]
    fn minority_survivors_revert_instead_of_babbling() {
        // Knock out four of six nodes: the two survivors are a minority
        // clique and must fall silent (revert) rather than keep acting,
        // then the whole cluster cold-starts. The guardian must never
        // fire — silence is enforced by protocol, not by the bus.
        let mut cluster = BbwCluster::new();
        cluster.enable_startup();
        let plan = NetFaultPlan::quiet().with_blackout(BlackoutSpec {
            at_cycle: 6,
            nodes: vec![CU_A, CU_B, WHEELS[0], WHEELS[1]],
            down_cycles: 3,
            stagger: 0,
        });
        cluster.attach_net_faults(plan, RngStream::new(0xC11).fork("net-injector"));
        let report = cluster.run(40, |_| 1200);
        let reverted: Vec<_> = report
            .startup_events
            .iter()
            .filter_map(|(_, ev)| match ev {
                StartupEvent::CliqueReverted(n) => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(
            reverted,
            vec![WHEELS[2], WHEELS[3]],
            "both survivors must revert: {:?}",
            report.startup_events
        );
        assert_eq!(report.guardian_blocks, 0, "reverted nodes babbled");
        let metrics = cluster.startup_metrics().unwrap();
        assert!(metrics.first_cold_start_cycle.is_some());
        assert_eq!(
            report.records.last().unwrap().members,
            6,
            "cluster never made it back to full membership"
        );
    }

    #[test]
    fn staggered_blackout_goes_through_big_bang_and_recovers() {
        // Down times chosen so two contenders' listen timeouts expire in
        // the same cycle: node 0 (timeout 4) down 3 and node 1
        // (timeout 5) down 2 both contend at cycle 6 + 7 — the big-bang
        // collision. Both back off with their unique timeouts and the
        // rematch has a single winner.
        let mut cluster = BbwCluster::new();
        cluster.enable_startup();
        let plan = NetFaultPlan::quiet()
            .with_blackout(BlackoutSpec {
                at_cycle: 6,
                nodes: vec![CU_A],
                down_cycles: 3,
                stagger: 0,
            })
            .with_blackout(BlackoutSpec {
                at_cycle: 6,
                nodes: vec![CU_B],
                down_cycles: 2,
                stagger: 0,
            })
            .with_blackout(BlackoutSpec {
                at_cycle: 6,
                nodes: WHEELS.to_vec(),
                down_cycles: 12,
                stagger: 0,
            });
        cluster.attach_net_faults(plan, RngStream::new(0xB16).fork("net-injector"));
        let report = cluster.run(48, |_| 1200);
        let metrics = cluster.startup_metrics().unwrap();
        assert_eq!(metrics.big_bangs, 1, "{:?}", report.startup_events);
        assert!(
            metrics.first_cold_start_cycle.is_some(),
            "the rematch must produce a winner: {:?}",
            report.startup_events
        );
        assert_eq!(report.guardian_blocks, 0);
        assert_eq!(report.records.last().unwrap().members, 6, "{report:?}");
    }

    #[test]
    fn two_wheel_blackout_reintegrates_by_listening() {
        // Four nodes survive — still a majority clique — so the time
        // base never dies: the two reset wheels must adopt timing from
        // ongoing traffic without any cold-start contention.
        let mut cluster = BbwCluster::new();
        cluster.enable_startup();
        let plan = NetFaultPlan::quiet().with_blackout(BlackoutSpec {
            at_cycle: 6,
            nodes: vec![WHEELS[0], WHEELS[1]],
            down_cycles: 2,
            stagger: 0,
        });
        cluster.attach_net_faults(plan, RngStream::new(0x1D1E).fork("net-injector"));
        let report = cluster.run(40, |_| 1200);
        let metrics = cluster.startup_metrics().unwrap();
        assert_eq!(
            metrics.first_cold_start_cycle, None,
            "{:?}",
            report.startup_events
        );
        assert_eq!(metrics.cold_starts_sent, 0);
        assert_eq!(metrics.clique_reverts, 0, "{:?}", report.startup_events);
        let adopted: Vec<_> = report
            .startup_events
            .iter()
            .filter_map(|(_, ev)| match ev {
                StartupEvent::TimingAdopted(n) => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(
            adopted,
            vec![WHEELS[0], WHEELS[1]],
            "{:?}",
            report.startup_events
        );
        assert_eq!(report.guardian_blocks, 0);
        assert_eq!(report.records.last().unwrap().members, 6);
    }

    #[test]
    fn blackout_campaign_identical_across_thread_counts() {
        let mut cfg = BlackoutCampaignConfig::new(10, 0xB1AC_0007);
        cfg.threads = 1;
        let one = run_blackout_campaign(&cfg);
        cfg.threads = 2;
        let two = run_blackout_campaign(&cfg);
        cfg.threads = 5;
        let five = run_blackout_campaign(&cfg);
        assert_eq!(one, two, "2 threads diverged from 1");
        assert_eq!(one, five, "5 threads diverged from 1");
        // Golden pin: any change to the RNG fork labels, the blackout
        // draw order, the startup protocol's transitions or the
        // cluster's cycle structure shows up here.
        assert_eq!(
            (
                one.trials,
                one.full_recoveries,
                one.cold_start_trials,
                one.big_bangs,
                one.clique_reverts,
                one.guardian_blocks
            ),
            (10, 10, 9, 8, 12, 0),
            "golden blackout outcome moved: {one:?}"
        );
        assert_eq!(
            (
                one.time_to_full_membership.clone(),
                one.unavailability_cycles.clone()
            ),
            (
                vec![6, 8, 9, 9, 10, 12, 13, 13, 16, 19],
                vec![0, 7, 8, 8, 9, 11, 12, 12, 14, 18]
            ),
            "golden latency distributions moved: {one:?}"
        );
    }
}
