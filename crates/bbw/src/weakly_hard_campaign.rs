//! Miss-pattern storm campaign: worst-case *patterns*, not just rates.
//!
//! The fault-rate campaigns ask "how many jobs miss under this storm";
//! this campaign asks the weakly-hard question: **which miss patterns
//! can a fault mix produce, and what do they cost in stopping
//! distance?** Every trial draws a fault inter-arrival time and a
//! placement strategy (random jitter, bursts, periodic trains, or the
//! analyzer's own adversarial placement), lays the faults over a
//! horizon of brake-controller jobs, derives the job-level miss pattern
//! from the fault-recovery model, and then
//!
//! * feeds the pattern through an online
//!   [`nlft_sim::weakly_hard::WeaklyHard`] monitor for the task's
//!   (m,k) contract,
//! * compares the worst observed window against the offline
//!   [`analyse_weakly_hard`] bound for that trial's fault interval —
//!   **no trial may ever beat the bound, and no certified contract may
//!   ever be violated** (the cross-check this campaign exists for), and
//! * scores the pattern's braking-distance degradation against the
//!   clean twin with [`BrakingModel`], so the worst pattern is reported
//!   in metres lost, not just misses counted.
//!
//! Including the adversarial strategy makes the bound's *tightness*
//! observable too: some trial always reaches it exactly.
//!
//! Like every campaign in this workspace the result is deterministic in
//! the seed and invariant in the thread count: per-trial forked
//! streams, shard merges by sums and strictly-greater maxima, golden
//! pins at 1/2/5 threads.

use nlft_kernel::analysis::{analyse_weakly_hard, MissModel, TemCosts};
use nlft_kernel::contract::MkContract;
use nlft_kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
use nlft_sim::rng::RngStream;
use nlft_sim::time::SimDuration;

use crate::braking::{BrakingModel, BrakingScore, MissPolicy};

/// Brake-controller period in microseconds.
const PERIOD_US: u64 = 100;
/// Relative deadline in microseconds.
const DEADLINE_US: u64 = 80;
/// Single-copy WCET in microseconds.
const WCET_US: u64 = 30;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

/// The campaign's task under contract: the critical brake controller.
/// With nominal TEM costs one job absorbs exactly one fault
/// (R(f) = 30 + 41·f ≤ 80).
fn brake_task_set() -> TaskSet {
    [TaskSpecBuilder::new(TaskId(1), "brake-ctl")
        .period(us(PERIOD_US))
        .deadline(us(DEADLINE_US))
        .wcet(us(WCET_US))
        .priority(Priority(0))
        .criticality(Criticality::Critical)
        .build()
        .expect("valid brake controller spec")]
    .into_iter()
    .collect()
}

/// How a trial places its faults over the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Faults separated by `T_F` plus a uniform jitter in `[0, T_F)`.
    RandomJitter,
    /// A quiet prefix, then a dense burst at exactly `T_F` separation.
    Burst,
    /// A strict periodic train with a random phase and stride.
    Periodic,
    /// The analyzer's greedy worst-case placement — guarantees the
    /// offline bound is *reached*, not only respected.
    Adversarial,
}

const STRATEGIES: [PlacementStrategy; 4] = [
    PlacementStrategy::RandomJitter,
    PlacementStrategy::Burst,
    PlacementStrategy::Periodic,
    PlacementStrategy::Adversarial,
];

/// Configuration of a miss-pattern storm campaign.
#[derive(Debug, Clone)]
pub struct MissPatternCampaignConfig {
    /// Number of independent trials.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads; results are identical for any value.
    pub threads: usize,
    /// Brake-controller jobs per trial (≤ 64 so patterns pack into one
    /// word, ≥ the contract window).
    pub horizon_jobs: u32,
    /// The (m,k) contract under test.
    pub contract: MkContract,
    /// Fault inter-arrival time drawn uniformly from this µs range
    /// (inclusive lower, exclusive upper).
    pub fault_interval_us: (u64, u64),
    /// What a wheel does on a missed control job.
    pub policy: MissPolicy,
}

impl MissPatternCampaignConfig {
    /// The nominal storm: (2,8) contract, fault intervals sweeping from
    /// "kills every job" to "kills none".
    pub fn nominal(trials: u64, seed: u64) -> Self {
        MissPatternCampaignConfig {
            trials,
            seed,
            threads: 1,
            horizon_jobs: 64,
            contract: MkContract::new(2, 8),
            fault_interval_us: (40, 160),
            policy: MissPolicy::HoldLast,
        }
    }
}

/// The single worst pattern found, by excess stopping distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorstPattern {
    /// Trial that produced it (earliest wins ties).
    pub trial: u64,
    /// The trial's fault inter-arrival time in µs.
    pub fault_interval_us: u64,
    /// The trial's placement strategy.
    pub strategy: PlacementStrategy,
    /// The miss pattern, bit `j` = job `j` missed.
    pub pattern_bits: u64,
    /// Misses over the whole horizon.
    pub misses: u32,
    /// The functional verdict: what the pattern costs in distance.
    pub score: BrakingScore,
}

/// Everything the campaign measures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MissPatternCampaignResult {
    /// Trials run.
    pub trials: u64,
    /// Trials whose fault interval the analyzer certified for the
    /// contract.
    pub certified_trials: u64,
    /// Certified trials whose online monitor still violated — **must
    /// be zero**: a nonzero value is an analyzer unsoundness.
    pub certified_violations: u64,
    /// Trials whose observed worst window exceeded the analyzer's
    /// bound for their fault interval — **must be zero** for certified
    /// *and* uncertified trials alike.
    pub bound_breaches: u64,
    /// Trials whose observed worst window reached the bound exactly
    /// (the adversarial strategy makes this nonzero: tightness).
    pub bound_reached_trials: u64,
    /// Trials whose online monitor violated the contract (all of them
    /// uncertified, or `certified_violations` would be nonzero).
    pub violating_trials: u64,
    /// Deadline misses summed over all trials.
    pub total_misses: u64,
    /// Worst misses-in-window observed by any online monitor.
    pub worst_window_misses: u32,
    /// Excess stopping distance summed over all trials (for means).
    pub total_excess_distance: u64,
    /// The worst pattern found, with its braking score.
    pub worst: Option<WorstPattern>,
}

impl MissPatternCampaignResult {
    fn merge(&mut self, other: MissPatternCampaignResult) {
        self.trials += other.trials;
        self.certified_trials += other.certified_trials;
        self.certified_violations += other.certified_violations;
        self.bound_breaches += other.bound_breaches;
        self.bound_reached_trials += other.bound_reached_trials;
        self.violating_trials += other.violating_trials;
        self.total_misses += other.total_misses;
        self.worst_window_misses = self.worst_window_misses.max(other.worst_window_misses);
        self.total_excess_distance += other.total_excess_distance;
        // Strictly-greater replacement + shards merged in trial order ⇒
        // the earliest trial wins ties, so the winner is independent of
        // the thread count.
        if let Some(w) = other.worst {
            if self
                .worst
                .is_none_or(|cur| w.score.excess_distance > cur.score.excess_distance)
            {
                self.worst = Some(w);
            }
        }
    }
}

/// Lays a trial's faults over the horizon. All strategies respect the
/// minimum separation, so every placement is admissible for the bound.
fn place_faults(
    rng: &mut RngStream,
    strategy: PlacementStrategy,
    tf_us: u64,
    model: &MissModel,
    horizon_jobs: u32,
) -> Vec<SimDuration> {
    let horizon_us = u64::from(horizon_jobs) * PERIOD_US;
    let mut times = Vec::new();
    match strategy {
        PlacementStrategy::RandomJitter => {
            let mut t = rng.uniform_range(0, tf_us);
            while t < horizon_us {
                times.push(us(t));
                t += tf_us + rng.uniform_range(0, tf_us);
            }
        }
        PlacementStrategy::Burst => {
            let mut t = rng.uniform_range(0, horizon_us / 2);
            let count = rng.uniform_range(2, 13);
            for _ in 0..count {
                if t < horizon_us {
                    times.push(us(t));
                }
                t += tf_us;
            }
        }
        PlacementStrategy::Periodic => {
            let stride = tf_us * rng.uniform_range(1, 4);
            let mut t = rng.uniform_range(0, PERIOD_US);
            while t < horizon_us {
                times.push(us(t));
                t += stride;
            }
        }
        PlacementStrategy::Adversarial => {
            let (_, faults) = model.worst_pattern(horizon_jobs);
            times = faults;
        }
    }
    times
}

/// Runs the miss-pattern storm campaign. Deterministic in the seed and
/// invariant in the thread count.
///
/// # Panics
///
/// Panics if `trials` is zero, the horizon does not fit `[window, 64]`
/// jobs, or the fault-interval range is empty.
pub fn run_miss_pattern_campaign(config: &MissPatternCampaignConfig) -> MissPatternCampaignResult {
    assert!(config.trials > 0, "need trials");
    assert!(
        config.horizon_jobs <= 64 && config.horizon_jobs >= config.contract.window,
        "horizon must fit [window, 64] jobs"
    );
    let (lo, hi) = config.fault_interval_us;
    assert!(lo > 0 && lo < hi, "fault-interval range must be non-empty");
    let c = config.clone();
    let campaign = nlft_engine::indexed_campaign(
        "bbw-miss-pattern",
        "miss-pattern-trial",
        config.trials,
        MissPatternCampaignResult::default,
        move |trial, _ctx, result: &mut MissPatternCampaignResult| {
            result.merge(run_shard(&c, trial, trial + 1));
        },
        |into, from| into.merge(from),
    );
    let engine = nlft_engine::EngineConfig::with_workers(config.threads.max(1));
    nlft_engine::run_trials(campaign, &engine).acc
}

fn run_shard(
    config: &MissPatternCampaignConfig,
    start: u64,
    end: u64,
) -> MissPatternCampaignResult {
    let root = RngStream::new(config.seed);
    let set = brake_task_set();
    let costs = TemCosts::nominal();
    let braking = BrakingModel::nominal();
    let (lo, hi) = config.fault_interval_us;
    let mut result = MissPatternCampaignResult::default();

    for trial in start..end {
        let mut rng = root.fork_indexed("miss-pattern-trial", trial);
        let tf_us = rng.uniform_range(lo, hi);
        let strategy = STRATEGIES[rng.uniform_range(0, STRATEGIES.len() as u64) as usize];

        // The offline certificate for this trial's fault interval.
        let bound =
            &analyse_weakly_hard(&set, &[(TaskId(1), config.contract)], us(tf_us), &costs)[0];
        let model = MissModel {
            period: us(PERIOD_US),
            deadline: us(DEADLINE_US),
            fault_interval: us(tf_us),
            tolerated: bound
                .tolerated_faults
                .expect("brake controller schedulable"),
        };

        let faults = place_faults(&mut rng, strategy, tf_us, &model, config.horizon_jobs);
        let pattern = model.misses(&faults, config.horizon_jobs);

        // Online enforcement view of the same stream.
        let mut monitor = config.contract.monitor();
        let mut violated = false;
        let mut observed_worst = 0u32;
        let mut pattern_bits = 0u64;
        let mut misses = 0u32;
        for (j, &miss) in pattern.iter().enumerate() {
            let v = monitor.record(miss);
            violated |= v.violated;
            observed_worst = observed_worst.max(v.misses_in_window);
            if miss {
                pattern_bits |= 1 << j;
                misses += 1;
            }
        }

        result.trials += 1;
        result.total_misses += u64::from(misses);
        result.worst_window_misses = result.worst_window_misses.max(observed_worst);
        if bound.satisfied {
            result.certified_trials += 1;
            if violated {
                result.certified_violations += 1;
            }
        } else if violated {
            result.violating_trials += 1;
        }
        if observed_worst > bound.worst_misses {
            result.bound_breaches += 1;
        } else if observed_worst == bound.worst_misses && bound.worst_misses > 0 {
            result.bound_reached_trials += 1;
        }

        // The functional metric: what this pattern costs in distance.
        let score = braking.score(&pattern, config.policy);
        result.total_excess_distance += score.excess_distance;
        let candidate = WorstPattern {
            trial,
            fault_interval_us: tf_us,
            strategy,
            pattern_bits,
            misses,
            score,
        };
        if result
            .worst
            .is_none_or(|cur| candidate.score.excess_distance > cur.score.excess_distance)
        {
            result.worst = Some(candidate);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzer_is_never_beaten_and_bound_is_reached() {
        let cfg = MissPatternCampaignConfig::nominal(60, 0x3A5E);
        let r = run_miss_pattern_campaign(&cfg);
        assert_eq!(r.trials, 60);
        // The tentpole cross-check: simulation never violates a
        // certified contract, never beats the bound, and the
        // adversarial strategy reaches it.
        assert_eq!(r.certified_violations, 0, "analyzer unsound: {r:?}");
        assert_eq!(r.bound_breaches, 0, "bound beaten: {r:?}");
        assert!(r.bound_reached_trials > 0, "bound never reached: {r:?}");
        assert!(r.certified_trials > 0, "sweep must cover calm intervals");
        assert!(r.violating_trials > 0, "sweep must cover storms");
        // The functional metric is live: the worst pattern costs
        // distance and is reported with its score.
        let worst = r.worst.expect("some pattern found");
        assert!(worst.score.excess_distance > 0);
        assert!(worst.misses > 0);
    }

    #[test]
    fn campaign_identical_across_thread_counts() {
        let mut cfg = MissPatternCampaignConfig::nominal(24, 0x5EED);
        cfg.threads = 1;
        let one = run_miss_pattern_campaign(&cfg);
        cfg.threads = 2;
        let two = run_miss_pattern_campaign(&cfg);
        cfg.threads = 5;
        let five = run_miss_pattern_campaign(&cfg);
        assert_eq!(one, two, "2 threads diverged from 1");
        assert_eq!(one, five, "5 threads diverged from 1");
        // Golden pin: any change to fork labels, draw order, the miss
        // model, the analyzer or the braking scorer shows up here.
        assert_eq!(
            (
                one.trials,
                one.certified_trials,
                one.certified_violations,
                one.bound_breaches,
                one.bound_reached_trials,
                one.violating_trials,
            ),
            (24, 13, 0, 0, 1, 2),
            "golden verdict counters moved: {one:?}"
        );
        assert_eq!(
            (
                one.total_misses,
                one.worst_window_misses,
                one.total_excess_distance
            ),
            (83, 8, 58_322_608),
            "golden aggregate metrics moved: {one:?}"
        );
        // The worst pattern: an adversarial T_F = 50µs placement that
        // kills every job (its cluster tail lands exactly on each next
        // release) — the vehicle never stops within the horizon.
        let w = one.worst.expect("worst pattern pinned");
        assert_eq!(
            (w.trial, w.fault_interval_us, w.pattern_bits, w.misses),
            (20, 50, u64::MAX, 64),
            "golden worst pattern moved: {w:?}"
        );
        assert_eq!(w.strategy, PlacementStrategy::Adversarial);
        assert!(!w.score.stopped);
        assert_eq!(
            (w.score.distance, w.score.stop_cycles),
            (60_000_000, 2_000),
            "golden worst score moved: {:?}",
            w.score
        );
    }

    #[test]
    fn zero_force_policy_costs_more_than_hold() {
        let mut cfg = MissPatternCampaignConfig::nominal(20, 0xF0CE);
        let hold = run_miss_pattern_campaign(&cfg);
        cfg.policy = MissPolicy::ZeroForce;
        let zero = run_miss_pattern_campaign(&cfg);
        // Same seeds ⇒ same patterns; only the wheel's miss behaviour
        // differs, so the functional cost ordering is deterministic.
        assert_eq!(hold.total_misses, zero.total_misses);
        assert!(zero.total_excess_distance > hold.total_excess_distance);
    }
}
