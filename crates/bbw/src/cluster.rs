//! An executable distributed brake-by-wire cluster.
//!
//! Where [`crate::analytic`] and [`crate::montecarlo`] treat nodes as rate
//! processes, this module actually *runs* the system of Fig. 4: two central
//! unit replicas executing the pedal→force distribution task and four wheel
//! nodes executing PID force controllers — all as TM32 programs under the
//! TEM kernel — exchanging frames over the time-triggered bus with
//! membership, duplex selection and degraded-mode force redistribution.
//!
//! Fault injection happens at machine level (a bit flip inside a chosen
//! node's task copy); its consequences then propagate through the real
//! stack: TEM masks it, or the node omits its slot, membership notices,
//! and the central unit redistributes brake force to the remaining wheels.
//!
//! Since PR 4 the loop also carries the *value domain* end to end:
//!
//! * the pedal is read through a triplicated [`crate::sensor`] array
//!   (median vote + plausibility + weakly-hard demotion) instead of
//!   being a perfect oracle — the silent `min(4095)` clamp now happens
//!   at the sensor boundary and is flagged;
//! * CU→wheel set-points travel as sealed fresh commands
//!   (`[seq, f0..f3, crc]`); each wheel runs a
//!   [`nlft_kernel::integrity::CommandAcceptor`] that rejects corrupted,
//!   stale, duplicated or replayed commands and converts them into
//!   hold-last-safe-value omissions;
//! * each wheel drives a [`crate::actuator`] with its own fault model,
//!   watched by a demand-vs-measured divergence monitor that fails a bad
//!   actuator to its safe release state — the wheel then goes
//!   fail-silent, so the failure reports into membership and the CU
//!   redistributes force exactly as for a crashed node.
//!
//! Since PR 8 the wheels carry heterogeneous weakly-hard *(m,k) service
//! contracts* (the front axle tighter than the rear), and any node can be
//! modelled as a *dual-core* station: a core-death fault then plays out
//! against the node's resource-sharing protocol — LEFT-RS rides the death
//! out on the remaining core, a lock-based substrate wedges and the node
//! drops fail-silent for good.

use std::collections::BTreeMap;

use nlft_core::diagnosis::{AlphaCountConfig, NodeSupervisor};
use nlft_kernel::contract::MkContract;
use nlft_kernel::escalation::{EscalationEvent, EscalationPolicy, NodeHealth};
use nlft_kernel::integrity::{CommandAcceptor, CommandReject, FreshSealedMessage};
use nlft_kernel::multicore::MulticoreExecutive;
use nlft_kernel::resources::ProtocolKind;
use nlft_kernel::tem::{InjectionPlan, JobFault, JobOutcome, TemConfig, TemExecutor};
use nlft_machine::fault::{CoreDeathFault, IntermittentFault, StuckAtFault, TransientFault};
use nlft_machine::machine::Machine;
use nlft_machine::workloads::{self, Workload};
use nlft_net::bus::{Bus, BusConfig, CycleDelivery, WireFault};
use nlft_net::frame::NodeId;
use nlft_net::inject::{InjectionCounts, NetFaultInjector, NetFaultPlan};
use nlft_net::membership::{Membership, MembershipEvent};
use nlft_net::replication::{select_duplex_among, DuplexPair, DuplexValue, StateResync};
use nlft_net::startup::{
    StartupConfig, StartupEvent, StartupMetrics, StartupProtocol, StartupState, TransmitIntent,
    COLD_START_MARKER,
};
use nlft_sim::rng::RngStream;
use nlft_sim::weakly_hard::WeaklyHard;

use crate::actuator::{ActuatorFault, ActuatorMonitor, ActuatorMonitorConfig, WheelActuator};
use crate::sensor::{PedalSensorArray, PedalStats, PedalVoterConfig, SensorFault};

/// Cycles a wheel keeps braking on its last accepted set-point when the
/// command stream dries up (rejected or missing commands), before it
/// releases and goes silent.
pub const HOLD_CYCLES: u32 = 3;

/// Maximum accepted command age in cycles (commands are consumed in the
/// cycle they arrive, so a healthy age is 0).
pub const COMMAND_MAX_AGE: u32 = 2;

/// Bus node ids: two CU replicas then four wheel nodes.
pub const CU_A: NodeId = NodeId(0);
/// Second central-unit replica.
pub const CU_B: NodeId = NodeId(1);
/// Wheel nodes, front-left/front-right/rear-left/rear-right.
pub const WHEELS: [NodeId; 4] = [NodeId(2), NodeId(3), NodeId(4), NodeId(5)];

/// Cluster-level fault to inject in a specific communication cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterInjection {
    /// Cycle in which the fault strikes.
    pub cycle: u32,
    /// Victim node.
    pub node: NodeId,
    /// TEM copy index hit.
    pub copy: u32,
    /// Cycle offset within the copy.
    pub at_cycle: u64,
    /// The machine-level fault.
    pub fault: TransientFault,
}

/// Per-cycle observable record.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleRecord {
    /// Communication cycle number.
    pub cycle: u32,
    /// Pedal input this cycle.
    pub pedal: u32,
    /// Commanded force per wheel (by wheel index), `None` when the wheel
    /// received no set-point or delivered no result.
    pub wheel_force: [Option<u32>; 4],
    /// Nodes in the membership after this cycle.
    pub members: usize,
    /// Whether the CU pair value came from a single replica.
    pub cu_single: bool,
    /// Whether degraded-mode redistribution was active.
    pub degraded: bool,
    /// Membership changes this cycle.
    pub events: Vec<MembershipEvent>,
}

/// Per-run value-domain observability: what the sensor voter, the
/// command acceptors and the actuator monitors saw. All counters are
/// per-[`BbwCluster::run`] deltas.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValueDomainReport {
    /// Cycles in which at least one pedal channel read out of range and
    /// was clamped (and flagged) at the sensor boundary.
    pub pedal_clamped_cycles: u32,
    /// Per-channel plausibility flags raised across the run.
    pub sensor_implausible_flags: u32,
    /// Sensor channels demoted by the weakly-hard window this run.
    pub sensor_demotions: u32,
    /// Cycles in which the voted pedal deviated from truth beyond the
    /// deviation bound with *no* flag, demotion or clamp raised — silent
    /// sensor failures.
    pub undetected_sensor_cycles: u32,
    /// Commands rejected at a wheel for CRC mismatch or malformed shape.
    pub seal_rejects: u32,
    /// Commands rejected at a wheel as stale, duplicated or too old.
    pub stale_rejects: u32,
    /// All command rejections (seal + freshness).
    pub command_rejects: u32,
    /// Cycles a wheel braked on its held last-safe set-point because the
    /// command stream was rejected or missing.
    pub held_setpoint_cycles: u32,
    /// Injected command corruptions that the acceptor nevertheless
    /// accepted — silent command failures.
    pub undetected_command_accepts: u32,
    /// Actuator monitors tripped this run: `(cycle, wheel node)`. The
    /// actuator is failed to safe release and the wheel goes fail-silent.
    pub actuator_trips: Vec<(u32, NodeId)>,
    /// Cycles an actuator with an active fault overran the monitor
    /// tolerance beyond the detection window without tripping — silent
    /// actuator failures.
    pub undetected_actuator_cycles: u32,
}

impl ValueDomainReport {
    /// Total silent value failures: faults neither masked nor detected.
    pub fn undetected_value_failures(&self) -> u32 {
        self.undetected_sensor_cycles
            + self.undetected_command_accepts
            + self.undetected_actuator_cycles
    }
}

/// Summary of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Every cycle, in order.
    pub records: Vec<CycleRecord>,
    /// Cycles spent in degraded mode.
    pub degraded_cycles: u32,
    /// Omissions observed (a member node missing its slot).
    pub omissions: u32,
    /// `true` if braking service was lost (CU silent or <3 wheels serving).
    pub service_lost: bool,
    /// `true` if the membership majority was lost at any point (≤ 3 of 6
    /// nodes left in the view) — the cluster can no longer tell who failed.
    pub split_membership: bool,
    /// Smallest membership seen in any cycle.
    pub min_members: usize,
    /// For every readmission during the run: cycles between the exclusion
    /// and the matching [`MembershipEvent::Reintegrated`].
    pub reintegration_latencies: Vec<u32>,
    /// Frames rejected by CRC during this run (bus counter delta).
    pub crc_rejects: u64,
    /// Babbling transmissions blocked by the guardian during this run.
    pub guardian_blocks: u64,
    /// Well-formed forged frames rejected by the identity check.
    pub masquerade_rejects: u64,
    /// Wire corruptions that actually landed on a transmitted frame.
    pub corruptions_applied: u64,
    /// Wire masquerades that actually landed on a transmitted frame.
    pub masquerades_applied: u64,
    /// Escalation-ladder transitions of supervised nodes, in cycle order:
    /// `(cycle, node, event)`.
    pub escalations: Vec<(u32, NodeId, EscalationEvent)>,
    /// Restarts scheduled by supervised nodes during this run.
    pub restarts: u32,
    /// Nodes retired by their supervisor during this run.
    pub retired_nodes: Vec<NodeId>,
    /// Startup-protocol milestones (power-ups, cold-start contention,
    /// big-bangs, activations, clique reverts) in cycle order. Empty
    /// unless [`BbwCluster::enable_startup`] was called.
    pub startup_events: Vec<(u32, StartupEvent)>,
    /// Value-domain observability for this run.
    pub value: ValueDomainReport,
    /// Per-wheel weakly-hard (m,k) service contracts in force this run
    /// (index order: front-left, front-right, rear-left, rear-right).
    pub wheel_contracts: [MkContract; 4],
    /// Service misses charged against each wheel's contract: cycles (past
    /// bus warm-up) in which the wheel delivered no brake force.
    pub wheel_contract_misses: [u32; 4],
    /// Contract-violation episodes per wheel, edge-triggered: one per
    /// excursion past the tolerated miss count, however long it lasts.
    pub wheel_contract_violations: [u32; 4],
    /// Core-death faults fired this run: `(cycle, node, survived)`.
    /// Survival is decided by a deterministic multicore simulation of the
    /// node's substrate — only a dual-core node whose resource protocol
    /// tolerates a mid-critical-section core loss rides the death out.
    pub core_deaths: Vec<(u32, NodeId, bool)>,
}

impl ClusterReport {
    /// The escalation events of one node, in order.
    pub fn escalations_for(&self, node: NodeId) -> Vec<EscalationEvent> {
        self.escalations
            .iter()
            .filter(|(_, n, _)| *n == node)
            .map(|(_, _, e)| *e)
            .collect()
    }
}

/// A node-local intermittent fault: the recurring transient, the job
/// slots elapsed since onset, and a dedicated stream for its recurrence
/// and placement draws.
struct IntermittentRuntime {
    fault: IntermittentFault,
    slots_since_onset: u32,
    rng: RngStream,
}

struct StationRuntime {
    workload: Workload,
    machine: Machine,
    tem_config: TemConfig,
    /// Task cycles of a clean run, for placing recurring injections.
    clean_cycles: u64,
    /// Remaining cycles of enforced silence (fail-silent restart window).
    silent_for: u32,
    /// Diagnosis + escalation, when this node is supervised.
    supervisor: Option<NodeSupervisor>,
    /// A permanent hardware fault: re-asserted before every instruction of
    /// every copy, and deliberately surviving restarts.
    stuck_at: Option<StuckAtFault>,
    /// A recurring (intermittent) fault attached to this node.
    intermittent: Option<IntermittentRuntime>,
    /// `Some(protocol)` when this node is modelled as a dual-core station
    /// sharing its wheel/brake state between two cores through the given
    /// resource protocol.
    dual_core: Option<ProtocolKind>,
    /// Whether one of the node's cores has already died (a second death,
    /// or any death on a single-core node, is fatal).
    core_dead: bool,
}

impl StationRuntime {
    fn new(workload: Workload, clean_cycles: u64) -> Self {
        let machine = workload.instantiate();
        StationRuntime {
            workload,
            machine,
            tem_config: TemConfig::with_budget(clean_cycles * 2 + 50),
            clean_cycles,
            silent_for: 0,
            supervisor: None,
            stuck_at: None,
            intermittent: None,
            dual_core: None,
            core_dead: false,
        }
    }

    /// Whether the escalation ladder holds this node silent.
    fn supervised_silent(&self) -> bool {
        self.supervisor.as_ref().is_some_and(|s| !s.jobs_active())
    }

    /// Advances one silent job slot: restart scheduling/countdown, plus
    /// the intermittent fault's burst clock (wall time passes whether or
    /// not the node executes). A completed restart reboots the machine —
    /// fresh state, same hardware, so a stuck-at survives it.
    fn tick_supervisor(&mut self) -> Vec<EscalationEvent> {
        if let Some(i) = self.intermittent.as_mut() {
            i.slots_since_onset += 1;
        }
        let Some(sup) = self.supervisor.as_mut() else {
            return Vec::new();
        };
        let events = sup.tick_silent();
        if events.contains(&EscalationEvent::Restarted) {
            self.reboot();
        }
        events
    }

    /// Reboots the node's processor: fresh machine state, same hardware
    /// (a stuck-at survives because it lives in the silicon).
    fn reboot(&mut self) {
        self.machine = self.workload.instantiate();
    }

    /// The startup protocol admitted this node into the majority clique:
    /// release a supervisor parked on the integration gate. A resulting
    /// `Restarted` reboots the machine exactly like an ungated restart.
    fn complete_integration(&mut self) -> Vec<EscalationEvent> {
        let Some(sup) = self.supervisor.as_mut() else {
            return Vec::new();
        };
        let events = sup.integration_complete();
        if events.contains(&EscalationEvent::Restarted) {
            self.reboot();
        }
        events
    }

    /// The fault manifesting in this job, merging the node's persistent
    /// faults with an externally scheduled one-shot plan.
    fn job_fault(&mut self, plan: Option<InjectionPlan>) -> Option<JobFault> {
        if let Some(stuck) = self.stuck_at {
            return Some(JobFault::StuckAt(stuck));
        }
        if let Some(i) = self.intermittent.as_mut() {
            let since = i.slots_since_onset;
            i.slots_since_onset += 1;
            if i.fault.manifests(since, &mut i.rng) {
                return Some(JobFault::Transient(InjectionPlan {
                    copy: i.rng.uniform_range(0, 2) as u32,
                    at_cycle: i.rng.uniform_range(1, self.clean_cycles.max(2)),
                    fault: i.fault.fault,
                }));
            }
        }
        plan.map(JobFault::Transient)
    }

    fn run_job(
        &mut self,
        inputs: &[u32],
        plan: Option<InjectionPlan>,
    ) -> (Option<Vec<u32>>, Vec<EscalationEvent>) {
        if self.silent_for > 0 {
            self.silent_for -= 1;
            return (None, Vec::new());
        }
        if self.supervised_silent() {
            return (None, self.tick_supervisor());
        }
        let fault = self.job_fault(plan);
        let mut config = self.tem_config;
        if self.supervisor.as_ref().is_some_and(|s| s.tem_triples()) {
            // Suspect / reintegrating: TEM always triples (three copies +
            // majority vote on every job).
            config.min_results = 3;
        }
        let tem = TemExecutor::new(config);
        let report = tem.run_job_with_fault(&mut self.machine, &self.workload, inputs, fault);
        let errored = matches!(
            report.outcome,
            JobOutcome::DeliveredMasked { .. } | JobOutcome::Omission { .. }
        );
        let events = match self.supervisor.as_mut() {
            Some(sup) => sup.observe_job(errored),
            None => Vec::new(),
        };
        let outputs = match report.outcome {
            JobOutcome::DeliveredClean | JobOutcome::DeliveredMasked { .. } => {
                let outputs = report.outputs.expect("delivered");
                Some(
                    self.workload
                        .output_ports
                        .iter()
                        .map(|&p| outputs[p].unwrap_or(0))
                        .collect(),
                )
            }
            JobOutcome::Omission { .. } => None,
        };
        (outputs, events)
    }
}

/// The running cluster.
pub struct BbwCluster {
    bus: Bus,
    membership: Membership,
    cu_pair: DuplexPair,
    cu: BTreeMap<NodeId, StationRuntime>,
    wheels: BTreeMap<NodeId, StationRuntime>,
    injections: Vec<ClusterInjection>,
    wire_corruptions: Vec<(u32, NodeId)>,
    /// Network-level fault injector, when a storm is attached.
    net_injector: Option<NetFaultInjector>,
    /// TTP/C-style startup/reintegration protocol, when enabled. `None`
    /// keeps the pre-startup behaviour: returning nodes simply resume
    /// transmitting in their slot.
    startup: Option<StartupProtocol>,
    /// Per-CU state-resync endpoints, driven when a replica returns from an
    /// outage.
    cu_resync: BTreeMap<NodeId, StateResync>,
    /// Whether each CU was silent (enforced or net-crashed) last cycle.
    cu_silent_last: BTreeMap<NodeId, bool>,
    /// Last delivery, fed into the resync endpoints next cycle.
    prev_delivery: Option<CycleDelivery>,
    /// First cycle of each node's current exclusion episode.
    exclusion_started: BTreeMap<NodeId, u32>,
    /// Triplicated pedal sensor array feeding both CU replicas.
    pedal_sensors: PedalSensorArray,
    /// Per-wheel brake actuators (persist across `run` calls — the brake
    /// hardware does not reset between phases of an experiment).
    actuators: [WheelActuator; 4],
    /// Per-wheel demand-vs-measured divergence monitors.
    monitors: [ActuatorMonitor; 4],
    /// Wheels whose actuator has been failed to safe release: the node
    /// stays fail-silent so membership reports the loss.
    actuator_failed: [bool; 4],
    /// Consecutive tolerance-overrun cycles per wheel (for silent-failure
    /// accounting — a healthy transient converges within the window).
    overrun_streak: [u32; 4],
    /// Per-wheel command acceptors (seal + freshness check).
    acceptors: [CommandAcceptor; 4],
    /// Last command words each wheel accepted, kept for replay injection.
    last_command_words: [Option<Vec<u32>>; 4],
    /// Next cycle's set-points, as accepted/held by each wheel.
    setpoints: [Option<u32>; 4],
    /// Last accepted set-point per wheel and remaining hold budget.
    last_good: [Option<u32>; 4],
    hold_left: [u32; 4],
    /// Scheduled wheel-local command corruptions:
    /// `(cycle, wheel, word, mask)`.
    command_corruptions: Vec<(u32, usize, usize, u32)>,
    /// Scheduled wheel-local command replays: `(cycle, wheel)`.
    command_replays: Vec<(u32, usize)>,
    /// Per-wheel (m,k) service contracts (front axle tighter than rear)
    /// and their online monitors; like the rest of the wheel state, the
    /// monitors persist across `run` calls.
    wheel_contracts: [MkContract; 4],
    wheel_monitors: [WeaklyHard; 4],
    /// Whether each wheel's contract was violated after the last recorded
    /// cycle (for edge-triggered episode counting).
    wheel_violated: [bool; 4],
    /// Scheduled core-death faults: `(cycle, node, escalated)`.
    core_deaths: Vec<(u32, NodeId, bool)>,
}

impl BbwCluster {
    /// Builds the six-node cluster with the standard workloads and a
    /// fixed sensor-noise seed. Campaigns that vary sensor noise per
    /// trial should use [`BbwCluster::with_rng`].
    pub fn new() -> Self {
        BbwCluster::with_rng(RngStream::new(0x00BB_5E50).fork("pedal-sensors"))
    }

    /// Builds the cluster with a dedicated stream for the pedal-sensor
    /// noise draws (healthy channels never draw, so a fixed seed is fine
    /// unless noise-burst faults are attached).
    pub fn with_rng(sensor_rng: RngStream) -> Self {
        let config = BusConfig::round_robin(6, 4);
        let bus = Bus::new(config.clone());
        // Exclusion after 2 silent cycles, reintegration after 2 good ones —
        // scaled-down versions of the paper's 1.6 s / 3 s windows.
        let membership = Membership::new(&config, 2, 2);

        let dist = workloads::brake_distribution();
        let (_, dist_cycles) = dist.golden_run(&[1000]);
        let pid = workloads::pid_controller();
        let (_, pid_cycles) = pid.golden_run(&[1000, 900]);

        let mut cu = BTreeMap::new();
        for id in [CU_A, CU_B] {
            cu.insert(id, StationRuntime::new(dist.clone(), dist_cycles));
        }
        let mut wheels = BTreeMap::new();
        for id in WHEELS {
            wheels.insert(id, StationRuntime::new(pid.clone(), pid_cycles));
        }
        let cu_pair = DuplexPair::new(CU_A, CU_B);
        // The front axle carries most of the braking load, so its service
        // contracts are tighter: at most 1 missed cycle in any 8, against
        // 2-in-8 for the rear wheels.
        let wheel_contracts = [
            MkContract::new(1, 8),
            MkContract::new(1, 8),
            MkContract::new(2, 8),
            MkContract::new(2, 8),
        ];
        BbwCluster {
            bus,
            membership,
            cu_pair,
            cu,
            wheels,
            injections: Vec::new(),
            wire_corruptions: Vec::new(),
            net_injector: None,
            startup: None,
            cu_resync: [CU_A, CU_B]
                .into_iter()
                .map(|id| (id, StateResync::new(id, cu_pair)))
                .collect(),
            cu_silent_last: [CU_A, CU_B].into_iter().map(|id| (id, false)).collect(),
            prev_delivery: None,
            exclusion_started: BTreeMap::new(),
            pedal_sensors: PedalSensorArray::new(PedalVoterConfig::default(), sensor_rng),
            actuators: std::array::from_fn(|_| WheelActuator::new()),
            monitors: std::array::from_fn(|_| {
                ActuatorMonitor::new(ActuatorMonitorConfig::default())
            }),
            actuator_failed: [false; 4],
            overrun_streak: [0; 4],
            acceptors: std::array::from_fn(|_| CommandAcceptor::new(COMMAND_MAX_AGE)),
            last_command_words: std::array::from_fn(|_| None),
            setpoints: [None; 4],
            last_good: [None; 4],
            hold_left: [0; 4],
            command_corruptions: Vec::new(),
            command_replays: Vec::new(),
            wheel_monitors: std::array::from_fn(|w| wheel_contracts[w].monitor()),
            wheel_contracts,
            wheel_violated: [false; 4],
            core_deaths: Vec::new(),
        }
    }

    /// Attaches a value-domain fault to one pedal sensor channel from
    /// `onset` cycle on. The voter masks it; persistent implausibility
    /// demotes the channel.
    pub fn attach_sensor_fault(&mut self, channel: usize, fault: SensorFault, onset: u32) {
        self.pedal_sensors.attach_fault(channel, fault, onset);
    }

    /// Attaches a value-domain fault to one wheel's brake actuator from
    /// `onset` cycle on. The divergence monitor fails a misbehaving
    /// actuator to its safe release state.
    pub fn attach_actuator_fault(&mut self, wheel: usize, fault: ActuatorFault, onset: u32) {
        self.actuators[wheel].attach_fault(fault, onset);
    }

    /// Corrupts the command words *as seen by one wheel* in the given
    /// cycle — a wheel-local buffer/RAM fault past the bus CRC, which is
    /// exactly what the application-level seal exists to catch. `word`
    /// indexes the sealed message (`0` = sequence, last = CRC).
    pub fn corrupt_command_at_wheel(&mut self, cycle: u32, wheel: usize, word: usize, mask: u32) {
        self.command_corruptions.push((cycle, wheel, word, mask));
    }

    /// Replays the last command one wheel accepted in place of the
    /// current one in the given cycle — a stale-buffer fault. The
    /// freshness check rejects it as stale.
    pub fn replay_command_at_wheel(&mut self, cycle: u32, wheel: usize) {
        self.command_replays.push((cycle, wheel));
    }

    /// Cumulative pedal-sensor statistics (across all `run` calls).
    pub fn sensor_stats(&self) -> &PedalStats {
        self.pedal_sensors.stats()
    }

    /// Whether a wheel's actuator has been failed to safe release.
    pub fn actuator_failed(&self, wheel: usize) -> bool {
        self.actuator_failed[wheel]
    }

    /// Schedules a machine-level fault injection.
    pub fn inject(&mut self, injection: ClusterInjection) {
        self.injections.push(injection);
    }

    /// Attaches a network fault-injection plan, driven every cycle of
    /// subsequent [`BbwCluster::run`] calls. `rng` should be a dedicated
    /// fork of the experiment's master stream so cluster decisions and
    /// injection decisions never entangle.
    pub fn attach_net_faults(&mut self, plan: NetFaultPlan, rng: RngStream) {
        self.net_injector = Some(NetFaultInjector::new(plan, rng));
    }

    /// Replaces the attached plan (e.g. to quiesce the storm mid-run);
    /// outage windows already opened keep running. No-op when no storm is
    /// attached.
    pub fn set_net_fault_plan(&mut self, plan: NetFaultPlan) {
        if let Some(inj) = self.net_injector.as_mut() {
            inj.set_plan(plan);
        }
    }

    /// Detaches the network fault injector entirely.
    pub fn clear_net_faults(&mut self) {
        self.net_injector = None;
    }

    /// Enables the TTP/C-style startup/reintegration protocol over the
    /// six bus slots. The cluster is assumed already synchronised (every
    /// node starts `Active`, clique avoidance disarmed until the first
    /// heard majority); nodes knocked out by a blackout then re-enter
    /// service through Listen → cold-start contention → integration
    /// instead of simply transmitting again, and supervisors with
    /// [`EscalationPolicy::gate_reintegration`] set park on the
    /// integration gate until the protocol activates their node.
    pub fn enable_startup(&mut self) {
        self.startup = Some(StartupProtocol::all_active(StartupConfig::for_bus(
            self.bus.config(),
        )));
    }

    /// A node's current startup state (`None` while startup is disabled).
    pub fn startup_state(&self, node: NodeId) -> Option<StartupState> {
        self.startup.as_ref().map(|s| s.state(node))
    }

    /// Startup metrics accumulated so far (`None` while disabled).
    pub fn startup_metrics(&self) -> Option<&StartupMetrics> {
        self.startup.as_ref().map(|s| s.metrics())
    }

    /// Injection decisions taken by the attached storm so far.
    pub fn net_injection_counts(&self) -> InjectionCounts {
        self.net_injector
            .as_ref()
            .map(|i| i.counts())
            .unwrap_or_default()
    }

    /// Corrupts `node`'s frame on the wire in the given cycle: the CRC
    /// rejects it at every receiver, so the node is effectively silent for
    /// that cycle — the network-level end-to-end detection of §2.6.
    pub fn corrupt_frame(&mut self, cycle: u32, node: NodeId) {
        self.wire_corruptions.push((cycle, node));
    }

    /// Forces a node silent for `cycles` cycles (models a fail-silent
    /// restart window without machine-level detail).
    pub fn silence_node(&mut self, node: NodeId, cycles: u32) {
        if let Some(s) = self.station_mut(node) {
            s.silent_for = cycles;
        }
    }

    fn station_mut(&mut self, node: NodeId) -> Option<&mut StationRuntime> {
        self.cu
            .get_mut(&node)
            .or_else(|| self.wheels.get_mut(&node))
    }

    /// Replaces the per-wheel (m,k) service contracts (index order:
    /// front-left, front-right, rear-left, rear-right) and resets their
    /// monitors. The defaults hold the front axle to at most 1 missed
    /// cycle in any 8 and the rear axle to 2-in-8.
    pub fn set_wheel_contracts(&mut self, contracts: [MkContract; 4]) {
        self.wheel_contracts = contracts;
        self.wheel_monitors = std::array::from_fn(|w| contracts[w].monitor());
        self.wheel_violated = [false; 4];
    }

    /// The per-wheel service contracts currently in force.
    pub fn wheel_contracts(&self) -> [MkContract; 4] {
        self.wheel_contracts
    }

    /// Models `node` as a dual-core station whose two cores share their
    /// wheel/brake state through `protocol`. A scheduled core-death fault
    /// (see [`BbwCluster::attach_core_death`]) then becomes survivable:
    /// the node rides it out on the remaining core iff the protocol keeps
    /// the shared state reachable when a core dies mid-critical-section.
    pub fn enable_dual_core(&mut self, node: NodeId, protocol: ProtocolKind) {
        if let Some(s) = self.station_mut(node) {
            s.dual_core = Some(protocol);
        }
    }

    /// Schedules a core-death fault on `node` in the given cycle.
    /// `escalated` means the dying core is walked down the escalation
    /// ladder to fail-silence (orderly — held resources are revoked)
    /// instead of crashing mid-instruction. Whether the node survives is
    /// decided by a deterministic [`MulticoreExecutive`] replay of its
    /// substrate; any death on a single-core node, and a second death on
    /// a dual-core one, is always fatal.
    pub fn attach_core_death(&mut self, cycle: u32, node: NodeId, escalated: bool) {
        self.core_deaths.push((cycle, node, escalated));
    }

    /// Fires one core-death fault on `node`; returns whether it survived.
    fn fire_core_death(&mut self, node: NodeId, escalated: bool) -> bool {
        let Some(station) = self.station_mut(node) else {
            return false;
        };
        let survived = match station.dual_core {
            Some(kind) if !station.core_dead => {
                // Replay the death against the node's substrate: the
                // reference 2-core workload with the fault placed
                // mid-critical-section on core 0, exactly as in
                // `nlft_core::run_multicore_campaign`. The node lives iff
                // the surviving core's tasks stay clean — LEFT-RS ignores
                // the dead snapshot holder, a leaked spin lock wedges the
                // lock-based substrate.
                let mut exec = MulticoreExecutive::reference(2, kind);
                if escalated {
                    exec.supervise(0, EscalationPolicy::default());
                }
                exec.inject(CoreDeathFault {
                    core: 0,
                    at_tick: 100,
                    in_section: true,
                    escalated,
                });
                exec.run(2_000).clean()
            }
            _ => false,
        };
        station.core_dead = true;
        if !survived {
            // The node is gone for good: it never transmits again, so
            // membership reports the loss from here on.
            station.silent_for = u32::MAX;
        }
        survived
    }

    /// Puts `node` under a diagnosis supervisor: its TEM error stream
    /// feeds an α-count, and the escalation ladder silences, restarts,
    /// reintegrates or retires the node. The resulting
    /// [`EscalationEvent`]s land in [`ClusterReport::escalations`].
    pub fn supervise(&mut self, node: NodeId, alpha: AlphaCountConfig, policy: EscalationPolicy) {
        if let Some(s) = self.station_mut(node) {
            s.supervisor = Some(NodeSupervisor::new(alpha, policy));
        }
    }

    /// Supervises all six nodes with the same configuration.
    pub fn supervise_all(&mut self, alpha: AlphaCountConfig, policy: EscalationPolicy) {
        for id in [CU_A, CU_B].iter().chain(WHEELS.iter()).copied() {
            self.supervise(id, alpha, policy);
        }
    }

    /// Attaches a permanent stuck-at fault to `node`'s processor. It is
    /// re-asserted before every instruction of every TEM copy and — being
    /// hardware — survives node restarts.
    pub fn attach_stuck_at(&mut self, node: NodeId, fault: StuckAtFault) {
        if let Some(s) = self.station_mut(node) {
            s.stuck_at = Some(fault);
        }
    }

    /// Attaches an intermittent fault to `node`: from the next job slot
    /// on, the transient recurs with the fault's recurrence probability
    /// until its burst expires. `rng` should be a dedicated fork of the
    /// experiment's master stream.
    pub fn attach_intermittent(&mut self, node: NodeId, fault: IntermittentFault, rng: RngStream) {
        if let Some(s) = self.station_mut(node) {
            s.intermittent = Some(IntermittentRuntime {
                fault,
                slots_since_onset: 0,
                rng,
            });
        }
    }

    /// The ladder position of a supervised node (`None` when the node is
    /// not supervised).
    pub fn node_health(&self, node: NodeId) -> Option<NodeHealth> {
        self.cu
            .get(&node)
            .or_else(|| self.wheels.get(&node))
            .and_then(|s| s.supervisor.as_ref())
            .map(|sup| sup.health())
    }

    /// Runs the cluster for `cycles` communication cycles with the given
    /// pedal profile (the *true* pedal position per cycle; the cluster
    /// reads it through the triplicated sensor array, which clamps and
    /// flags out-of-range values at the boundary). May be called
    /// repeatedly: bus, membership, injector, sensor, acceptor and
    /// actuator state persist, so a storm phase can be followed by a
    /// quiet phase on the same cluster.
    pub fn run(&mut self, cycles: u32, pedal: impl Fn(u32) -> u32) -> ClusterReport {
        let mut records = Vec::with_capacity(cycles as usize);
        let mut value = ValueDomainReport::default();
        let undetected_sensor_base = self.pedal_sensors.stats().undetected_error_cycles;
        let mon_cfg = ActuatorMonitorConfig::default();
        let mut degraded_cycles = 0;
        let mut omissions = 0;
        let mut service_lost = false;
        let mut split_membership = false;
        let mut min_members = self.membership.members().len();
        let mut reintegration_latencies = Vec::new();
        let mut escalations: Vec<(u32, NodeId, EscalationEvent)> = Vec::new();
        let mut restarts = 0;
        let mut retired_nodes: Vec<NodeId> = Vec::new();
        let mut startup_events: Vec<(u32, StartupEvent)> = Vec::new();
        let mut wheel_contract_misses = [0u32; 4];
        let mut wheel_contract_violations = [0u32; 4];
        let mut core_death_records: Vec<(u32, NodeId, bool)> = Vec::new();
        let crc_rejects_0 = self.bus.crc_rejects();
        let guardian_blocks_0 = self.bus.guardian_blocks();
        let masquerade_rejects_0 = self.bus.masquerade_rejects();
        let corruptions_applied_0 = self.bus.corruptions_applied();
        let masquerades_applied_0 = self.bus.masquerades_applied();
        for cycle in 0..cycles {
            self.bus.start_cycle();

            // Network storm first: decide this cycle's wire faults and
            // which nodes are held down by crash/clock outages.
            let net_silenced: Vec<NodeId> = match self.net_injector.as_mut() {
                Some(inj) => inj.perturb_cycle(&mut self.bus),
                None => Vec::new(),
            };
            let bus_cycle = self.bus.cycle();

            // Blackout resets decided this cycle: the victims lose their
            // volatile state (processor, acceptor window, held set-point)
            // and, when the startup protocol is on, re-enter service
            // through Listen / cold-start contention.
            let resets: Vec<(NodeId, u32)> = self
                .net_injector
                .as_ref()
                .map(|inj| inj.resets_this_cycle().to_vec())
                .unwrap_or_default();
            for &(node, down) in &resets {
                if let Some(st) = self.startup.as_mut() {
                    st.reset_node(node, down, bus_cycle);
                }
                if let Some(station) = self.station_mut(node) {
                    station.reboot();
                }
                if let Some(w) = WHEELS.iter().position(|&id| id == node) {
                    self.acceptors[w] = CommandAcceptor::new(COMMAND_MAX_AGE);
                    self.last_command_words[w] = None;
                    self.setpoints[w] = None;
                    self.last_good[w] = None;
                    self.hold_left[w] = 0;
                }
            }

            // Core-death faults scheduled for this cycle, fired before
            // the nodes execute: a dual-core node survives iff the
            // deterministic replay of its substrate stays clean under its
            // resource protocol; anything else drops fail-silent for good.
            let deaths_now: Vec<(NodeId, bool)> = self
                .core_deaths
                .iter()
                .filter(|&&(c, _, _)| c == bus_cycle)
                .map(|&(_, n, e)| (n, e))
                .collect();
            for (node, escalated) in deaths_now {
                let survived = self.fire_core_death(node, escalated);
                core_death_records.push((bus_cycle, node, survived));
            }

            // Read the pedal through the triplicated sensor array: the
            // voter masks channel faults, clamps out-of-range readings at
            // the boundary and demotes persistently implausible channels.
            let pedal_sample = self.pedal_sensors.sample(bus_cycle, pedal(cycle));
            let pedal_now = pedal_sample.voted;
            if pedal_sample.clamped {
                value.pedal_clamped_cycles += 1;
            }
            value.sensor_implausible_flags +=
                pedal_sample.implausible.iter().filter(|&&f| f).count() as u32;
            if pedal_sample.demoted_now.is_some() {
                value.sensor_demotions += 1;
            }

            // Central units: compute the 4-way force distribution under TEM.
            for (&id, station) in self.cu.iter_mut() {
                let plan = plan_for(&self.injections, bus_cycle, id);
                if self.wire_corruptions.contains(&(bus_cycle, id)) {
                    let slot = self.bus.config().slot_of(id).expect("CU owns a slot");
                    self.bus.stage_wire_fault(WireFault::CorruptStatic {
                        slot,
                        byte: 7,
                        mask: 0x40,
                    });
                }
                let net_down = net_silenced.contains(&id);
                let intent = self
                    .startup
                    .as_ref()
                    .map(|s| s.intent(id))
                    .unwrap_or(TransmitIntent::Normal);
                let was_silent = self.cu_silent_last[&id];
                let silent_now = net_down
                    || intent != TransmitIntent::Normal
                    || station.silent_for > 0
                    || station.supervised_silent();
                let resync = self.cu_resync.get_mut(&id).expect("CU endpoint");
                if was_silent && !silent_now {
                    // The replica returns: it resumes transmitting at once
                    // (the distribution task is stateless) while refreshing
                    // soft state from its partner over the dynamic segment.
                    resync.begin_resync();
                }
                self.cu_silent_last.insert(id, silent_now);
                let mut our_state: Vec<u32> = Vec::new();
                if net_down || intent == TransmitIntent::Silent {
                    // Held down by the network outage, or still listening
                    // for a time base: the node does not execute, but its
                    // supervisor's restart clock still runs.
                    for ev in station.tick_supervisor() {
                        record_escalation(
                            &mut escalations,
                            &mut restarts,
                            &mut retired_nodes,
                            bus_cycle,
                            id,
                            ev,
                        );
                    }
                } else if intent == TransmitIntent::ColdStartFrame {
                    // Cold-start contention: the only frame this node may
                    // send is the marker offering its own time base.
                    let _ = self
                        .bus
                        .transmit_static(id, vec![COLD_START_MARKER, bus_cycle]);
                } else {
                    let (result, events) = station.run_job(&[pedal_now], plan);
                    for ev in events {
                        record_escalation(
                            &mut escalations,
                            &mut restarts,
                            &mut retired_nodes,
                            bus_cycle,
                            id,
                            ev,
                        );
                    }
                    if let Some(outputs) = result {
                        // Degraded-mode redistribution: scale the shares of the
                        // serving wheels when some are out of the membership.
                        let serving: Vec<usize> = (0..4)
                            .filter(|&w| self.membership.is_member(WHEELS[w]))
                            .collect();
                        let mut payload = vec![0u32; 4];
                        if !serving.is_empty() {
                            let scale_num = 4_u32;
                            let scale_den = serving.len() as u32;
                            for &w in &serving {
                                payload[w] = outputs[w] * scale_num / scale_den;
                            }
                        }
                        // Seal the set-points with a sequence number and
                        // CRC: the wheel-side acceptor can then reject
                        // corrupted, stale or replayed commands even when
                        // the corruption happens past the bus CRC.
                        let words = FreshSealedMessage::seal(bus_cycle, payload).to_words();
                        our_state = words.clone();
                        let _ = self.bus.transmit_static(id, words);
                    }
                }
                if !silent_now {
                    resync.tick(&mut self.bus);
                    if let Some(prev) = &self.prev_delivery {
                        let _ = resync.process_cycle(&mut self.bus, prev, &our_state);
                    }
                }
            }

            // Wheel nodes: run PID on last cycle's set-point.
            for (w, &id) in WHEELS.iter().enumerate() {
                if self.actuator_failed[w] {
                    // Failed-safe actuator: the brake releases and the
                    // node stays fail-silent, so membership keeps it
                    // excluded and the CU redistributes its share.
                    self.actuators[w].apply(bus_cycle, 0);
                    continue;
                }
                let station = self.wheels.get_mut(&id).expect("wheel exists");
                if net_silenced.contains(&id) {
                    // Crashed / clock-lost: the node does not execute.
                    continue;
                }
                match self
                    .startup
                    .as_ref()
                    .map(|s| s.intent(id))
                    .unwrap_or(TransmitIntent::Normal)
                {
                    TransmitIntent::Silent => {
                        // Listening for a time base, or reverted by clique
                        // avoidance: fail-silent by construction.
                        continue;
                    }
                    TransmitIntent::ColdStartFrame => {
                        let _ = self
                            .bus
                            .transmit_static(id, vec![COLD_START_MARKER, bus_cycle]);
                        continue;
                    }
                    TransmitIntent::Normal => {}
                }
                if station.supervised_silent() {
                    // The escalation ladder holds this wheel down (silent,
                    // restarting or retired): advance its restart clock.
                    for ev in station.tick_supervisor() {
                        record_escalation(
                            &mut escalations,
                            &mut restarts,
                            &mut retired_nodes,
                            bus_cycle,
                            id,
                            ev,
                        );
                    }
                    continue;
                }
                let Some(sp) = self.setpoints[w] else {
                    // No set-point yet (first cycle, CU silent beyond the
                    // hold window, or persistent command rejection): stay
                    // quiet.
                    continue;
                };
                let plan = plan_for(&self.injections, bus_cycle, id);
                if self.wire_corruptions.contains(&(bus_cycle, id)) {
                    let slot = self.bus.config().slot_of(id).expect("wheel owns a slot");
                    self.bus.stage_wire_fault(WireFault::CorruptStatic {
                        slot,
                        byte: 7,
                        mask: 0x40,
                    });
                }
                let (result, events) = station.run_job(&[sp, self.actuators[w].measured()], plan);
                for ev in events {
                    record_escalation(
                        &mut escalations,
                        &mut restarts,
                        &mut retired_nodes,
                        bus_cycle,
                        id,
                        ev,
                    );
                }
                if let Some(outputs) = result {
                    let force = outputs[0];
                    // Drive the actuator (healthy: a first-order lag) and
                    // feed the wheel-local divergence monitor.
                    let measured = self.actuators[w].apply(bus_cycle, force);
                    let verdict = self.monitors[w].observe(force, measured);
                    let error = measured.abs_diff(force);
                    let fault_active = self.actuators[w]
                        .fault()
                        .is_some_and(|(_, onset)| bus_cycle >= onset);
                    if fault_active && !verdict.tripped && error > mon_cfg.tolerance {
                        self.overrun_streak[w] += 1;
                        if self.overrun_streak[w] > mon_cfg.window_cycles {
                            value.undetected_actuator_cycles += 1;
                        }
                    } else {
                        self.overrun_streak[w] = 0;
                    }
                    if verdict.tripped {
                        // The monitor caught a misbehaving actuator: fail
                        // it to safe release and go fail-silent at once —
                        // membership and the CU handle the rest.
                        self.actuators[w].fail_safe();
                        self.actuator_failed[w] = true;
                        value.actuator_trips.push((bus_cycle, id));
                        continue;
                    }
                    let _ = self.bus.transmit_static(id, vec![force]);
                }
            }

            // Supervisors whose restart window elapsed under a gated
            // policy park on the integration gate. Route them into the
            // startup protocol (re-entering through Listen), or — with no
            // protocol to gate on — admit them at once.
            let parked: Vec<NodeId> = [CU_A, CU_B]
                .iter()
                .chain(WHEELS.iter())
                .copied()
                .filter(|id| {
                    self.cu
                        .get(id)
                        .or_else(|| self.wheels.get(id))
                        .and_then(|s| s.supervisor.as_ref())
                        .is_some_and(|sup| sup.awaiting_integration())
                })
                .collect();
            for id in parked {
                if let Some(st) = self.startup.as_mut() {
                    if st.is_active(id) {
                        st.reset_node(id, 0, bus_cycle);
                    }
                } else if let Some(station) = self.station_mut(id) {
                    for ev in station.complete_integration() {
                        record_escalation(
                            &mut escalations,
                            &mut restarts,
                            &mut retired_nodes,
                            bus_cycle,
                            id,
                            ev,
                        );
                    }
                }
            }

            let delivery = self.bus.finish_cycle();

            // Count omissions: nodes that were members going *into* this
            // cycle but missed their slot. Wheels only start transmitting
            // once the first set-points arrive (cycle 1), so their silent
            // first cycle is not an omission.
            for id in [CU_A, CU_B].iter().chain(WHEELS.iter()) {
                let expected = *id == CU_A || *id == CU_B || bus_cycle > 0;
                if expected
                    && self.membership.is_member(*id)
                    && delivery.from_node(self.bus.config(), *id).is_none()
                {
                    omissions += 1;
                }
            }

            // Startup transitions: fed the same delivery, after
            // membership. An `Activated` node has been counted into the
            // majority clique — release its parked supervisor, if any.
            let cycle_startup_events = match self.startup.as_mut() {
                Some(st) => st.observe(bus_cycle, &delivery),
                None => Vec::new(),
            };
            for ev in cycle_startup_events {
                if let StartupEvent::Activated(n) = ev {
                    if let Some(station) = self.station_mut(n) {
                        for sev in station.complete_integration() {
                            record_escalation(
                                &mut escalations,
                                &mut restarts,
                                &mut retired_nodes,
                                bus_cycle,
                                n,
                                sev,
                            );
                        }
                    }
                }
                startup_events.push((bus_cycle, ev));
            }

            let events = self.membership.observe(&delivery);
            for ev in &events {
                match ev {
                    MembershipEvent::Excluded(n) => {
                        self.exclusion_started.insert(*n, bus_cycle);
                    }
                    MembershipEvent::Reintegrated(n) => {
                        if let Some(started) = self.exclusion_started.remove(n) {
                            reintegration_latencies.push(bus_cycle - started);
                        }
                    }
                }
            }

            // Consume CU duplex value → next cycle's wheel set-points. The
            // selection is membership-aware: a replica still outside the
            // view (excluded, or restarted and not yet readmitted) cannot
            // poison the pair with stale state.
            let cu_value = select_duplex_among(self.bus.config(), &delivery, self.cu_pair, |n| {
                self.membership.is_member(n)
            });
            let cu_single = matches!(cu_value, DuplexValue::Single { .. });
            let cu_words: Option<Vec<u32>> = cu_value.payload().map(|p| p.to_vec());
            for w in 0..4 {
                // Wheel-local command path: a replay fault substitutes an
                // old buffered command, a corruption fault flips bits in
                // the wheel's copy — both *past* the bus CRC, which is
                // why the application-level seal must catch them.
                let replayed = self.command_replays.contains(&(bus_cycle, w));
                let mut presented = if replayed {
                    self.last_command_words[w].clone()
                } else {
                    cu_words.clone()
                };
                let mut injected_corruption = false;
                if let Some(words) = presented.as_mut() {
                    for &(c, cw, word, mask) in &self.command_corruptions {
                        if c == bus_cycle && cw == w && word < words.len() && mask != 0 {
                            words[word] ^= mask;
                            injected_corruption = true;
                        }
                    }
                }
                let accepted = presented
                    .as_deref()
                    .map(|words| self.acceptors[w].accept(words, bus_cycle));
                match accepted {
                    Some(Ok(forces)) if forces.len() == 4 => {
                        if injected_corruption || replayed {
                            // The acceptor let an injected command fault
                            // through: a silent value failure.
                            value.undetected_command_accepts += 1;
                        }
                        self.setpoints[w] = Some(forces[w]);
                        self.last_good[w] = Some(forces[w]);
                        self.hold_left[w] = HOLD_CYCLES;
                        self.last_command_words[w] = presented;
                    }
                    other => {
                        match other {
                            Some(Err(CommandReject::Stale { .. }))
                            | Some(Err(CommandReject::TooOld { .. })) => {
                                value.stale_rejects += 1;
                                value.command_rejects += 1;
                            }
                            Some(Err(_)) | Some(Ok(_)) => {
                                // CRC mismatch, malformed frame, or a
                                // well-sealed payload of the wrong shape.
                                value.seal_rejects += 1;
                                value.command_rejects += 1;
                            }
                            None => {}
                        }
                        // Hold-last-safe: keep braking on the last
                        // accepted set-point for a bounded window, then
                        // release and go quiet.
                        if self.hold_left[w] > 0 && self.last_good[w].is_some() {
                            self.hold_left[w] -= 1;
                            self.setpoints[w] = self.last_good[w];
                            value.held_setpoint_cycles += 1;
                        } else {
                            self.setpoints[w] = None;
                        }
                    }
                }
            }

            let serving_wheels = WHEELS
                .iter()
                .filter(|&&w| self.membership.is_member(w))
                .count();
            let degraded = serving_wheels < 4;
            if degraded {
                degraded_cycles += 1;
            }
            let cu_alive = self.membership.is_member(CU_A) || self.membership.is_member(CU_B);
            if !cu_alive || serving_wheels < 3 {
                service_lost = true;
            }

            let mut wheel_force = [None; 4];
            for (w, &id) in WHEELS.iter().enumerate() {
                wheel_force[w] = delivery
                    .from_node(self.bus.config(), id)
                    .and_then(|f| f.payload.first().copied());
            }

            // Per-wheel weakly-hard service contracts: once the bus has
            // warmed up, a wheel delivering no brake force this cycle is
            // charged one service miss against its (m,k) contract.
            // Violation episodes are edge-triggered so a long outage
            // counts once per excursion, not once per cycle.
            if bus_cycle > 0 {
                for w in 0..4 {
                    let miss = wheel_force[w].is_none();
                    if miss {
                        wheel_contract_misses[w] += 1;
                    }
                    let verdict = self.wheel_monitors[w].record(miss);
                    if verdict.violated && !self.wheel_violated[w] {
                        wheel_contract_violations[w] += 1;
                    }
                    self.wheel_violated[w] = verdict.violated;
                }
            }

            let members = self.membership.members().len();
            min_members = min_members.min(members);
            if members <= 3 {
                split_membership = true;
            }

            records.push(CycleRecord {
                cycle: bus_cycle,
                pedal: pedal_now,
                wheel_force,
                members,
                cu_single,
                degraded,
                events,
            });
            self.prev_delivery = Some(delivery);
        }

        ClusterReport {
            records,
            degraded_cycles,
            omissions,
            service_lost,
            split_membership,
            min_members,
            reintegration_latencies,
            crc_rejects: self.bus.crc_rejects() - crc_rejects_0,
            guardian_blocks: self.bus.guardian_blocks() - guardian_blocks_0,
            masquerade_rejects: self.bus.masquerade_rejects() - masquerade_rejects_0,
            corruptions_applied: self.bus.corruptions_applied() - corruptions_applied_0,
            masquerades_applied: self.bus.masquerades_applied() - masquerades_applied_0,
            escalations,
            restarts,
            retired_nodes,
            startup_events,
            value: ValueDomainReport {
                undetected_sensor_cycles: self.pedal_sensors.stats().undetected_error_cycles
                    - undetected_sensor_base,
                ..value
            },
            wheel_contracts: self.wheel_contracts,
            wheel_contract_misses,
            wheel_contract_violations,
            core_deaths: core_death_records,
        }
    }
}

fn record_escalation(
    escalations: &mut Vec<(u32, NodeId, EscalationEvent)>,
    restarts: &mut u32,
    retired_nodes: &mut Vec<NodeId>,
    cycle: u32,
    node: NodeId,
    event: EscalationEvent,
) {
    if matches!(event, EscalationEvent::RestartScheduled { .. }) {
        *restarts += 1;
    }
    if event == EscalationEvent::Retired && !retired_nodes.contains(&node) {
        retired_nodes.push(node);
    }
    escalations.push((cycle, node, event));
}

impl Default for BbwCluster {
    fn default() -> Self {
        BbwCluster::new()
    }
}

fn plan_for(injections: &[ClusterInjection], cycle: u32, node: NodeId) -> Option<InjectionPlan> {
    injections
        .iter()
        .find(|i| i.cycle == cycle && i.node == node)
        .map(|i| InjectionPlan {
            copy: i.copy,
            at_cycle: i.at_cycle,
            fault: i.fault,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlft_machine::fault::FaultTarget;

    fn constant_pedal(_: u32) -> u32 {
        1000
    }

    #[test]
    fn clean_run_brakes_all_wheels() {
        let mut cluster = BbwCluster::new();
        let report = cluster.run(10, constant_pedal);
        assert!(!report.service_lost);
        assert_eq!(report.degraded_cycles, 0);
        let last = report.records.last().unwrap();
        assert_eq!(last.members, 6);
        // After the pipeline fills, every wheel transmits a force.
        assert!(last.wheel_force.iter().all(|f| f.is_some()));
        // Front wheels get more force than rear (60/40 split).
        assert!(last.wheel_force[0].unwrap() > last.wheel_force[2].unwrap());
    }

    #[test]
    fn pedal_profile_flows_through() {
        let mut cluster = BbwCluster::new();
        let report = cluster.run(12, |c| if c < 6 { 0 } else { 2000 });
        let early = &report.records[4];
        let late = report.records.last().unwrap();
        let sum = |r: &CycleRecord| -> u32 { r.wheel_force.iter().map(|f| f.unwrap_or(0)).sum() };
        assert!(sum(late) > sum(early), "harder pedal → more total force");
    }

    #[test]
    fn masked_fault_is_invisible_at_cluster_level() {
        let mut cluster = BbwCluster::new();
        cluster.inject(ClusterInjection {
            cycle: 5,
            node: WHEELS[1],
            copy: 0,
            at_cycle: 5,
            fault: TransientFault {
                target: FaultTarget::Pc,
                mask: 1 << 20,
            },
        });
        let report = cluster.run(10, constant_pedal);
        assert!(!report.service_lost);
        assert_eq!(report.omissions, 0, "TEM recovery hides the fault entirely");
        assert_eq!(report.records[5].members, 6);
    }

    #[test]
    fn silenced_wheel_triggers_degraded_redistribution() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(WHEELS[3], 6);
        let report = cluster.run(14, constant_pedal);
        assert!(!report.service_lost, "3-of-4 wheels keep braking");
        assert!(report.degraded_cycles > 0);
        assert!(report.omissions > 0);
        // Membership dropped to 5 at some point.
        assert!(report.records.iter().any(|r| r.members == 5));
        // During degraded operation, serving wheels carry scaled-up force:
        // find a degraded cycle with forces present.
        let degraded_rec = report
            .records
            .iter()
            .rev()
            .find(|r| r.degraded && r.wheel_force[0].is_some())
            .expect("a degraded cycle with force data");
        let clean_rec = report
            .records
            .iter()
            .find(|r| !r.degraded && r.wheel_force[0].is_some())
            .expect("a clean cycle");
        assert!(
            degraded_rec.wheel_force[0].unwrap() > clean_rec.wheel_force[0].unwrap(),
            "remaining wheels must take over the lost wheel's share"
        );
        // And the silenced node reintegrates eventually.
        assert_eq!(report.records.last().unwrap().members, 6);
    }

    #[test]
    fn cu_replica_outage_is_transparent() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(CU_A, 5);
        let report = cluster.run(12, constant_pedal);
        assert!(!report.service_lost);
        // While A is silent, the duplex value comes from a single replica.
        assert!(report.records.iter().any(|r| r.cu_single));
        // Wheels keep receiving set-points: no degraded mode from CU outage.
        let mid = &report.records[6];
        assert!(mid.wheel_force.iter().all(|f| f.is_some()));
    }

    #[test]
    fn losing_both_cu_replicas_loses_service() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(CU_A, 8);
        cluster.silence_node(CU_B, 8);
        let report = cluster.run(10, constant_pedal);
        assert!(report.service_lost);
    }

    #[test]
    fn losing_two_wheels_loses_service() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(WHEELS[0], 8);
        cluster.silence_node(WHEELS[1], 8);
        let report = cluster.run(10, constant_pedal);
        assert!(report.service_lost);
    }

    #[test]
    fn wire_corruption_is_a_single_cycle_omission() {
        let mut cluster = BbwCluster::new();
        cluster.corrupt_frame(5, WHEELS[2]);
        let report = cluster.run(12, constant_pedal);
        assert!(!report.service_lost);
        assert_eq!(report.omissions, 1, "one rejected frame = one omission");
        // Below the exclusion threshold: membership never shrinks.
        assert!(report.records.iter().all(|r| r.members == 6));
        // The victim's force is absent exactly in cycle 5.
        assert!(report.records[5].wheel_force[2].is_none());
        assert!(report.records[6].wheel_force[2].is_some());
    }

    #[test]
    fn repeated_wire_corruption_triggers_exclusion() {
        let mut cluster = BbwCluster::new();
        cluster.corrupt_frame(3, WHEELS[0]);
        cluster.corrupt_frame(4, WHEELS[0]);
        let report = cluster.run(12, constant_pedal);
        assert!(!report.service_lost);
        assert!(
            report.records.iter().any(|r| r.members == 5),
            "two consecutive losses must exclude the node"
        );
        // And it reintegrates once the wire is clean again.
        assert_eq!(report.records.last().unwrap().members, 6);
    }

    #[test]
    fn storm_on_one_wheel_degrades_but_never_loses_service() {
        use nlft_net::inject::NetFaultRates;

        let mut cluster = BbwCluster::new();
        // A total omission storm on one wheel: every frame it sends is
        // lost, so it is permanently excluded while the storm lasts.
        let plan = NetFaultPlan::quiet().with_node(
            WHEELS[2],
            NetFaultRates {
                omission: 1.0,
                ..NetFaultRates::QUIET
            },
        );
        cluster.attach_net_faults(plan, RngStream::new(0xACCE).fork("net-injector"));
        let storm = cluster.run(20, |_| 1200);
        assert!(!storm.service_lost, "3-of-4 wheels must keep braking");
        assert!(!storm.split_membership);
        assert!(
            storm.degraded_cycles >= 15,
            "wheel excluded almost throughout"
        );
        assert_eq!(storm.records.last().unwrap().members, 5);
        assert_eq!(storm.min_members, 5);

        // The storm subsides: the node's fault rate drops to zero and it
        // must reintegrate within `reintegrate_after` cycles of its first
        // clean transmission.
        cluster.set_net_fault_plan(NetFaultPlan::quiet());
        let calm = cluster.run(10, |_| 1200);
        let reintegrate_after = 2; // Membership::new(&config, 2, 2) above
        let back = calm
            .records
            .iter()
            .position(|r| r.members == 6)
            .expect("wheel must reintegrate once the storm ends");
        assert!(
            back < reintegrate_after + 1,
            "reintegration took {back} cycles, window is {reintegrate_after}"
        );
        assert!(!calm.service_lost);
        assert_eq!(calm.reintegration_latencies.len(), 1);
        assert_eq!(calm.records.last().unwrap().members, 6);
    }

    #[test]
    fn cluster_storm_bus_counters_reported_per_run() {
        use nlft_net::inject::NetFaultRates;

        let mut cluster = BbwCluster::new();
        let plan = NetFaultPlan::quiet().with_node(
            WHEELS[0],
            NetFaultRates {
                corruption: 1.0,
                ..NetFaultRates::QUIET
            },
        );
        cluster.attach_net_faults(plan, RngStream::new(0x0C2C).fork("net-injector"));
        let storm = cluster.run(10, |_| 1200);
        // The wheel transmits from cycle 1 on; every frame is corrupted and
        // every corruption is caught by the CRC.
        assert!(storm.corruptions_applied >= 8);
        assert_eq!(storm.crc_rejects, storm.corruptions_applied);
        // Counters are per-run deltas: a quiet second run reports zero.
        cluster.set_net_fault_plan(NetFaultPlan::quiet());
        let calm = cluster.run(5, |_| 1200);
        assert_eq!(calm.crc_rejects, 0);
        assert_eq!(calm.corruptions_applied, 0);
    }

    #[test]
    fn stuck_pedal_channel_is_masked_at_the_vehicle_boundary() {
        let mut clean = BbwCluster::new();
        let clean_report = clean.run(12, constant_pedal);
        let mut cluster = BbwCluster::new();
        cluster.attach_sensor_fault(1, SensorFault::StuckAt(4095), 3);
        let report = cluster.run(12, constant_pedal);
        // The median vote hides the stuck channel entirely: identical
        // forces, no degraded mode, and the failure is *detected* (the
        // channel ends up demoted), never silent.
        for (a, b) in clean_report.records.iter().zip(report.records.iter()) {
            assert_eq!(a.wheel_force, b.wheel_force, "vote must mask the channel");
        }
        assert_eq!(report.value.sensor_demotions, 1);
        assert_eq!(report.value.undetected_sensor_cycles, 0);
        assert!(!report.service_lost);
    }

    #[test]
    fn out_of_range_pedal_is_clamped_and_flagged() {
        let mut cluster = BbwCluster::new();
        let report = cluster.run(8, |_| 100_000);
        assert!(report.value.pedal_clamped_cycles >= 8);
        assert!(report
            .records
            .iter()
            .all(|r| r.pedal <= crate::sensor::PEDAL_MAX));
        assert!(!report.service_lost);
    }

    #[test]
    fn corrupted_command_at_wheel_is_rejected_and_held() {
        let mut cluster = BbwCluster::new();
        // Flip a payload bit in wheel 1's copy of the cycle-5 command —
        // past the bus CRC, so only the application seal can catch it.
        cluster.corrupt_command_at_wheel(5, 1, 2, 0x10);
        let report = cluster.run(12, constant_pedal);
        assert_eq!(report.value.seal_rejects, 1, "the seal must catch the flip");
        assert_eq!(report.value.undetected_command_accepts, 0);
        // Hold-last-safe: the wheel keeps braking on its previous
        // set-point, so no omission and no membership event at all.
        assert_eq!(report.value.held_setpoint_cycles, 1);
        assert_eq!(report.omissions, 0);
        assert!(report.records.iter().all(|r| r.members == 6));
        assert!(!report.service_lost);
    }

    #[test]
    fn replayed_command_is_rejected_as_stale() {
        let mut cluster = BbwCluster::new();
        cluster.replay_command_at_wheel(6, 2);
        let report = cluster.run(12, constant_pedal);
        assert_eq!(report.value.stale_rejects, 1, "replay must be caught");
        assert_eq!(report.value.undetected_command_accepts, 0);
        assert_eq!(report.value.held_setpoint_cycles, 1);
        assert!(!report.service_lost);
    }

    #[test]
    fn wheels_ride_through_a_short_cu_outage_on_held_setpoints() {
        let mut cluster = BbwCluster::new();
        // Warm up so the wheels have an accepted set-point to hold.
        let warmup = cluster.run(4, constant_pedal);
        assert!(!warmup.service_lost);
        cluster.silence_node(CU_A, 1);
        cluster.silence_node(CU_B, 1);
        let report = cluster.run(12, constant_pedal);
        // Both replicas silent for one cycle: without holding, all four
        // wheels would drop out; with HOLD_CYCLES = 3 they brake through
        // on their last accepted set-point.
        assert_eq!(report.value.held_setpoint_cycles, 4);
        assert!(!report.service_lost, "hold window must bridge the outage");
        // The only missed slots are the two silent CU frames — every
        // wheel kept transmitting on its held set-point.
        assert_eq!(report.omissions, 2);
        assert!(report.records.iter().all(|r| r.members == 6));
    }

    #[test]
    fn runaway_actuator_is_failed_safe_and_reported() {
        let mut cluster = BbwCluster::new();
        cluster.attach_actuator_fault(2, ActuatorFault::Runaway { step: 500 }, 4);
        let report = cluster.run(16, constant_pedal);
        // The monitor trips, the actuator releases, the wheel goes
        // fail-silent and membership excludes it — degraded, not lost.
        assert_eq!(report.value.actuator_trips.len(), 1);
        assert_eq!(report.value.actuator_trips[0].1, WHEELS[2]);
        assert_eq!(report.value.undetected_actuator_cycles, 0);
        assert!(cluster.actuator_failed(2));
        let at_trip = cluster.actuators[2].measured();
        // The release decays geometrically toward zero from the trip on.
        let settle = cluster.run(20, constant_pedal);
        assert!(
            cluster.actuators[2].measured() < at_trip / 4,
            "brake must keep releasing toward zero"
        );
        assert!(!settle.service_lost);
        assert!(report.degraded_cycles > 0, "CU redistributes the share");
        assert!(!report.service_lost);
        assert!(report
            .records
            .iter()
            .flat_map(|r| r.events.iter())
            .any(|e| matches!(e, MembershipEvent::Excluded(n) if *n == WHEELS[2])));
    }

    #[test]
    fn small_actuator_offset_is_masked_without_a_trip() {
        let mut cluster = BbwCluster::new();
        cluster.attach_actuator_fault(0, ActuatorFault::Offset(40), 2);
        let report = cluster.run(20, constant_pedal);
        assert!(
            report.value.actuator_trips.is_empty(),
            "bounded bias masked"
        );
        assert_eq!(report.value.undetected_actuator_cycles, 0);
        assert!(!report.service_lost);
        assert_eq!(report.degraded_cycles, 0);
    }

    #[test]
    fn membership_events_reported() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(WHEELS[2], 4);
        let report = cluster.run(12, constant_pedal);
        let excluded: Vec<_> = report
            .records
            .iter()
            .flat_map(|r| r.events.iter())
            .collect();
        assert!(excluded
            .iter()
            .any(|e| matches!(e, MembershipEvent::Excluded(n) if *n == WHEELS[2])));
        assert!(excluded
            .iter()
            .any(|e| matches!(e, MembershipEvent::Reintegrated(n) if *n == WHEELS[2])));
    }

    #[test]
    fn default_wheel_contracts_are_heterogeneous_and_clean() {
        let mut cluster = BbwCluster::new();
        let report = cluster.run(20, constant_pedal);
        // Front axle tighter than rear, same window.
        assert!(
            report.wheel_contracts[0].max_misses < report.wheel_contracts[2].max_misses,
            "front contracts must be stricter than rear"
        );
        assert_eq!(report.wheel_contracts[0], MkContract::new(1, 8));
        assert_eq!(report.wheel_contracts[3], MkContract::new(2, 8));
        // A clean run charges no misses and trips nothing.
        assert_eq!(report.wheel_contract_misses, [0; 4]);
        assert_eq!(report.wheel_contract_violations, [0; 4]);
        assert!(report.core_deaths.is_empty());
    }

    #[test]
    fn front_contract_trips_where_rear_rides_through() {
        // The same 2-cycle outage lands differently per axle: 2 misses in
        // an 8-window break the front (1,8) contract but not the rear
        // (2,8) one — the heterogeneous-contract point of satellite 1.
        let mut front = BbwCluster::new();
        front.silence_node(WHEELS[0], 2);
        let fr = front.run(14, constant_pedal);
        assert!(fr.wheel_contract_misses[0] >= 2);
        assert!(
            fr.wheel_contract_violations[0] >= 1,
            "front (1,8) contract must trip on a 2-cycle outage"
        );

        let mut rear = BbwCluster::new();
        rear.silence_node(WHEELS[2], 2);
        let rr = rear.run(14, constant_pedal);
        assert!(rr.wheel_contract_misses[2] >= 2);
        assert_eq!(
            rr.wheel_contract_violations[2], 0,
            "rear (2,8) contract must absorb the same outage"
        );
    }

    #[test]
    fn set_wheel_contracts_replaces_monitors() {
        let mut cluster = BbwCluster::new();
        // Loosen the front axle to (3,8): the 2-cycle outage that trips
        // the default front contract is now absorbed.
        cluster.set_wheel_contracts([MkContract::new(3, 8); 4]);
        cluster.silence_node(WHEELS[0], 2);
        let report = cluster.run(14, constant_pedal);
        assert_eq!(report.wheel_contracts[0], MkContract::new(3, 8));
        assert!(report.wheel_contract_misses[0] >= 2);
        assert_eq!(report.wheel_contract_violations, [0; 4]);
    }

    #[test]
    fn dual_core_left_rs_wheel_rides_through_core_death() {
        let mut cluster = BbwCluster::new();
        cluster.enable_dual_core(WHEELS[1], ProtocolKind::LeftRs);
        cluster.attach_core_death(5, WHEELS[1], false);
        let report = cluster.run(16, constant_pedal);
        assert_eq!(report.core_deaths, vec![(5, WHEELS[1], true)]);
        // The node never misses a slot: no omissions, no degradation, and
        // its contract stays clean.
        assert_eq!(report.omissions, 0);
        assert_eq!(report.degraded_cycles, 0);
        assert_eq!(report.wheel_contract_violations, [0; 4]);
        assert!(!report.service_lost);
    }

    #[test]
    fn dual_core_lock_based_wheel_dies_on_core_death() {
        let mut cluster = BbwCluster::new();
        cluster.enable_dual_core(WHEELS[1], ProtocolKind::LockBased);
        cluster.attach_core_death(5, WHEELS[1], false);
        let report = cluster.run(16, constant_pedal);
        assert_eq!(report.core_deaths, vec![(5, WHEELS[1], false)]);
        // The crashed core leaks its spin lock mid-section; the substrate
        // wedges and the node drops fail-silent for good.
        assert!(report.omissions > 0);
        assert!(report.degraded_cycles > 0);
        assert!(
            report.wheel_contract_violations[1] >= 1,
            "a permanently silent front wheel must break its contract"
        );
        assert!(!report.service_lost, "3-of-4 wheels keep braking");
    }

    #[test]
    fn escalated_core_death_spares_even_the_lock_based_wheel() {
        // Satellite 2 at cluster level: the escalation ladder silences
        // the dying core in an orderly way, revoking its held lock, so
        // even the lock-based substrate survives the very placement that
        // kills it under a crash.
        let mut cluster = BbwCluster::new();
        cluster.enable_dual_core(WHEELS[1], ProtocolKind::LockBased);
        cluster.attach_core_death(5, WHEELS[1], true);
        let report = cluster.run(16, constant_pedal);
        assert_eq!(report.core_deaths, vec![(5, WHEELS[1], true)]);
        assert_eq!(report.omissions, 0);
        assert_eq!(report.degraded_cycles, 0);
    }

    #[test]
    fn single_core_node_dies_on_any_core_death() {
        let mut cluster = BbwCluster::new();
        cluster.attach_core_death(4, WHEELS[3], false);
        let report = cluster.run(16, constant_pedal);
        assert_eq!(report.core_deaths, vec![(4, WHEELS[3], false)]);
        assert!(report.omissions > 0);
        assert!(report.degraded_cycles > 0);
    }

    #[test]
    fn second_core_death_kills_a_surviving_dual_core_node() {
        let mut cluster = BbwCluster::new();
        cluster.enable_dual_core(WHEELS[2], ProtocolKind::LeftRs);
        cluster.attach_core_death(3, WHEELS[2], false);
        cluster.attach_core_death(8, WHEELS[2], false);
        let report = cluster.run(18, constant_pedal);
        assert_eq!(
            report.core_deaths,
            vec![(3, WHEELS[2], true), (8, WHEELS[2], false)],
            "the first death is survivable, the second exhausts the cores"
        );
        assert!(report.omissions > 0);
    }
}
