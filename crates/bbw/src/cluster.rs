//! An executable distributed brake-by-wire cluster.
//!
//! Where [`crate::analytic`] and [`crate::montecarlo`] treat nodes as rate
//! processes, this module actually *runs* the system of Fig. 4: two central
//! unit replicas executing the pedal→force distribution task and four wheel
//! nodes executing PID force controllers — all as TM32 programs under the
//! TEM kernel — exchanging frames over the time-triggered bus with
//! membership, duplex selection and degraded-mode force redistribution.
//!
//! Fault injection happens at machine level (a bit flip inside a chosen
//! node's task copy); its consequences then propagate through the real
//! stack: TEM masks it, or the node omits its slot, membership notices,
//! and the central unit redistributes brake force to the remaining wheels.

use std::collections::BTreeMap;

use nlft_kernel::tem::{InjectionPlan, JobOutcome, TemConfig, TemExecutor};
use nlft_machine::fault::TransientFault;
use nlft_machine::machine::Machine;
use nlft_machine::workloads::{self, Workload};
use nlft_net::bus::{Bus, BusConfig};
use nlft_net::frame::NodeId;
use nlft_net::membership::{Membership, MembershipEvent};
use nlft_net::replication::{select_duplex, DuplexPair, DuplexValue};

/// Bus node ids: two CU replicas then four wheel nodes.
pub const CU_A: NodeId = NodeId(0);
/// Second central-unit replica.
pub const CU_B: NodeId = NodeId(1);
/// Wheel nodes, front-left/front-right/rear-left/rear-right.
pub const WHEELS: [NodeId; 4] = [NodeId(2), NodeId(3), NodeId(4), NodeId(5)];

/// Cluster-level fault to inject in a specific communication cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterInjection {
    /// Cycle in which the fault strikes.
    pub cycle: u32,
    /// Victim node.
    pub node: NodeId,
    /// TEM copy index hit.
    pub copy: u32,
    /// Cycle offset within the copy.
    pub at_cycle: u64,
    /// The machine-level fault.
    pub fault: TransientFault,
}

/// Per-cycle observable record.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleRecord {
    /// Communication cycle number.
    pub cycle: u32,
    /// Pedal input this cycle.
    pub pedal: u32,
    /// Commanded force per wheel (by wheel index), `None` when the wheel
    /// received no set-point or delivered no result.
    pub wheel_force: [Option<u32>; 4],
    /// Nodes in the membership after this cycle.
    pub members: usize,
    /// Whether the CU pair value came from a single replica.
    pub cu_single: bool,
    /// Whether degraded-mode redistribution was active.
    pub degraded: bool,
    /// Membership changes this cycle.
    pub events: Vec<MembershipEvent>,
}

/// Summary of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Every cycle, in order.
    pub records: Vec<CycleRecord>,
    /// Cycles spent in degraded mode.
    pub degraded_cycles: u32,
    /// Omissions observed (a member node missing its slot).
    pub omissions: u32,
    /// `true` if braking service was lost (CU silent or <3 wheels serving).
    pub service_lost: bool,
}

struct StationRuntime {
    workload: Workload,
    machine: Machine,
    tem: TemExecutor,
    /// Remaining cycles of enforced silence (fail-silent restart window).
    silent_for: u32,
}

impl StationRuntime {
    fn new(workload: Workload, budget: u64) -> Self {
        let machine = workload.instantiate();
        StationRuntime {
            workload,
            machine,
            tem: TemExecutor::new(TemConfig::with_budget(budget)),
            silent_for: 0,
        }
    }

    fn run_job(&mut self, inputs: &[u32], plan: Option<InjectionPlan>) -> Option<Vec<u32>> {
        if self.silent_for > 0 {
            self.silent_for -= 1;
            return None;
        }
        let report = self
            .tem
            .run_job(&mut self.machine, &self.workload, inputs, plan);
        match report.outcome {
            JobOutcome::DeliveredClean | JobOutcome::DeliveredMasked { .. } => {
                let outputs = report.outputs.expect("delivered");
                Some(
                    self.workload
                        .output_ports
                        .iter()
                        .map(|&p| outputs[p].unwrap_or(0))
                        .collect(),
                )
            }
            JobOutcome::Omission { .. } => None,
        }
    }
}

/// The running cluster.
pub struct BbwCluster {
    bus: Bus,
    membership: Membership,
    cu_pair: DuplexPair,
    cu: BTreeMap<NodeId, StationRuntime>,
    wheels: BTreeMap<NodeId, StationRuntime>,
    injections: Vec<ClusterInjection>,
    wire_corruptions: Vec<(u32, NodeId)>,
}

impl BbwCluster {
    /// Builds the six-node cluster with the standard workloads.
    pub fn new() -> Self {
        let config = BusConfig::round_robin(6, 4);
        let bus = Bus::new(config.clone());
        // Exclusion after 2 silent cycles, reintegration after 2 good ones —
        // scaled-down versions of the paper's 1.6 s / 3 s windows.
        let membership = Membership::new(&config, 2, 2);

        let dist = workloads::brake_distribution();
        let (_, dist_cycles) = dist.golden_run(&[1000]);
        let pid = workloads::pid_controller();
        let (_, pid_cycles) = pid.golden_run(&[1000, 900]);

        let mut cu = BTreeMap::new();
        for id in [CU_A, CU_B] {
            cu.insert(id, StationRuntime::new(dist.clone(), dist_cycles * 2 + 50));
        }
        let mut wheels = BTreeMap::new();
        for id in WHEELS {
            wheels.insert(id, StationRuntime::new(pid.clone(), pid_cycles * 2 + 50));
        }
        BbwCluster {
            bus,
            membership,
            cu_pair: DuplexPair::new(CU_A, CU_B),
            cu,
            wheels,
            injections: Vec::new(),
            wire_corruptions: Vec::new(),
        }
    }

    /// Schedules a machine-level fault injection.
    pub fn inject(&mut self, injection: ClusterInjection) {
        self.injections.push(injection);
    }

    /// Corrupts `node`'s frame on the wire in the given cycle: the CRC
    /// rejects it at every receiver, so the node is effectively silent for
    /// that cycle — the network-level end-to-end detection of §2.6.
    pub fn corrupt_frame(&mut self, cycle: u32, node: NodeId) {
        self.wire_corruptions.push((cycle, node));
    }

    /// Forces a node silent for `cycles` cycles (models a fail-silent
    /// restart window without machine-level detail).
    pub fn silence_node(&mut self, node: NodeId, cycles: u32) {
        if let Some(s) = self.cu.get_mut(&node).or_else(|| self.wheels.get_mut(&node)) {
            s.silent_for = cycles;
        }
    }

    /// Runs the cluster for `cycles` communication cycles with the given
    /// pedal profile (pedal position per cycle, 0..4095).
    pub fn run(&mut self, cycles: u32, pedal: impl Fn(u32) -> u32) -> ClusterReport {
        let mut records = Vec::with_capacity(cycles as usize);
        let mut degraded_cycles = 0;
        let mut omissions = 0;
        let mut service_lost = false;
        // Wheel set-points computed from the previous cycle's CU frames.
        let mut setpoints: [Option<u32>; 4] = [None; 4];
        let mut measured: [u32; 4] = [0; 4];

        for cycle in 0..cycles {
            let pedal_now = pedal(cycle).min(4095);
            self.bus.start_cycle();

            // Central units: compute the 4-way force distribution under TEM.
            for (&id, station) in self.cu.iter_mut() {
                let plan = plan_for(&self.injections, cycle, id);
                if self.wire_corruptions.contains(&(cycle, id)) {
                    self.bus.corrupt_next_frame(7, 0x40);
                }
                if let Some(outputs) = station.run_job(&[pedal_now], plan) {
                    // Degraded-mode redistribution: scale the shares of the
                    // serving wheels when some are out of the membership.
                    let serving: Vec<usize> = (0..4)
                        .filter(|&w| self.membership.is_member(WHEELS[w]))
                        .collect();
                    let mut payload = vec![0u32; 4];
                    if !serving.is_empty() {
                        let scale_num = 4 as u32;
                        let scale_den = serving.len() as u32;
                        for &w in &serving {
                            payload[w] = outputs[w] * scale_num / scale_den;
                        }
                    }
                    let _ = self.bus.transmit_static(id, payload);
                }
            }

            // Wheel nodes: run PID on last cycle's set-point.
            for (w, &id) in WHEELS.iter().enumerate() {
                let station = self.wheels.get_mut(&id).expect("wheel exists");
                let Some(sp) = setpoints[w] else {
                    // No set-point yet (first cycle or CU silent): stay quiet.
                    continue;
                };
                let plan = plan_for(&self.injections, cycle, id);
                if self.wire_corruptions.contains(&(cycle, id)) {
                    self.bus.corrupt_next_frame(7, 0x40);
                }
                if let Some(outputs) = station.run_job(&[sp, measured[w]], plan) {
                    let force = outputs[0];
                    // First-order actuator: the measured force moves toward
                    // the command.
                    measured[w] = (measured[w] * 3 + force) / 4;
                    let _ = self.bus.transmit_static(id, vec![force]);
                }
            }

            let delivery = self.bus.finish_cycle();

            // Count omissions: nodes that were members going *into* this
            // cycle but missed their slot. Wheels only start transmitting
            // once the first set-points arrive (cycle 1), so their silent
            // first cycle is not an omission.
            for id in [CU_A, CU_B].iter().chain(WHEELS.iter()) {
                let expected = *id == CU_A || *id == CU_B || cycle > 0;
                if expected
                    && self.membership.is_member(*id)
                    && delivery.from_node(self.bus.config(), *id).is_none()
                {
                    omissions += 1;
                }
            }

            let events = self.membership.observe(&delivery);

            // Consume CU duplex value → next cycle's wheel set-points.
            let cu_value = select_duplex(self.bus.config(), &delivery, self.cu_pair);
            let cu_single = matches!(cu_value, DuplexValue::Single { .. });
            match cu_value.payload() {
                Some(forces) if forces.len() == 4 => {
                    for w in 0..4 {
                        setpoints[w] = Some(forces[w]);
                    }
                }
                _ => {
                    for s in &mut setpoints {
                        *s = None;
                    }
                }
            }

            let serving_wheels = WHEELS
                .iter()
                .filter(|&&w| self.membership.is_member(w))
                .count();
            let degraded = serving_wheels < 4;
            if degraded {
                degraded_cycles += 1;
            }
            let cu_alive =
                self.membership.is_member(CU_A) || self.membership.is_member(CU_B);
            if !cu_alive || serving_wheels < 3 {
                service_lost = true;
            }

            let mut wheel_force = [None; 4];
            for (w, &id) in WHEELS.iter().enumerate() {
                wheel_force[w] = delivery
                    .from_node(self.bus.config(), id)
                    .and_then(|f| f.payload.first().copied());
            }

            records.push(CycleRecord {
                cycle,
                pedal: pedal_now,
                wheel_force,
                members: self.membership.members().len(),
                cu_single,
                degraded,
                events,
            });
        }

        ClusterReport {
            records,
            degraded_cycles,
            omissions,
            service_lost,
        }
    }
}

impl Default for BbwCluster {
    fn default() -> Self {
        BbwCluster::new()
    }
}

fn plan_for(
    injections: &[ClusterInjection],
    cycle: u32,
    node: NodeId,
) -> Option<InjectionPlan> {
    injections
        .iter()
        .find(|i| i.cycle == cycle && i.node == node)
        .map(|i| InjectionPlan {
            copy: i.copy,
            at_cycle: i.at_cycle,
            fault: i.fault,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlft_machine::fault::FaultTarget;

    fn constant_pedal(_: u32) -> u32 {
        1000
    }

    #[test]
    fn clean_run_brakes_all_wheels() {
        let mut cluster = BbwCluster::new();
        let report = cluster.run(10, constant_pedal);
        assert!(!report.service_lost);
        assert_eq!(report.degraded_cycles, 0);
        let last = report.records.last().unwrap();
        assert_eq!(last.members, 6);
        // After the pipeline fills, every wheel transmits a force.
        assert!(last.wheel_force.iter().all(|f| f.is_some()));
        // Front wheels get more force than rear (60/40 split).
        assert!(last.wheel_force[0].unwrap() > last.wheel_force[2].unwrap());
    }

    #[test]
    fn pedal_profile_flows_through() {
        let mut cluster = BbwCluster::new();
        let report = cluster.run(12, |c| if c < 6 { 0 } else { 2000 });
        let early = &report.records[4];
        let late = report.records.last().unwrap();
        let sum = |r: &CycleRecord| -> u32 {
            r.wheel_force.iter().map(|f| f.unwrap_or(0)).sum()
        };
        assert!(sum(late) > sum(early), "harder pedal → more total force");
    }

    #[test]
    fn masked_fault_is_invisible_at_cluster_level() {
        let mut cluster = BbwCluster::new();
        cluster.inject(ClusterInjection {
            cycle: 5,
            node: WHEELS[1],
            copy: 0,
            at_cycle: 5,
            fault: TransientFault {
                target: FaultTarget::Pc,
                mask: 1 << 20,
            },
        });
        let report = cluster.run(10, constant_pedal);
        assert!(!report.service_lost);
        assert_eq!(report.omissions, 0, "TEM recovery hides the fault entirely");
        assert_eq!(report.records[5].members, 6);
    }

    #[test]
    fn silenced_wheel_triggers_degraded_redistribution() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(WHEELS[3], 6);
        let report = cluster.run(14, constant_pedal);
        assert!(!report.service_lost, "3-of-4 wheels keep braking");
        assert!(report.degraded_cycles > 0);
        assert!(report.omissions > 0);
        // Membership dropped to 5 at some point.
        assert!(report.records.iter().any(|r| r.members == 5));
        // During degraded operation, serving wheels carry scaled-up force:
        // find a degraded cycle with forces present.
        let degraded_rec = report
            .records
            .iter()
            .rev()
            .find(|r| r.degraded && r.wheel_force[0].is_some())
            .expect("a degraded cycle with force data");
        let clean_rec = report
            .records
            .iter()
            .find(|r| !r.degraded && r.wheel_force[0].is_some())
            .expect("a clean cycle");
        assert!(
            degraded_rec.wheel_force[0].unwrap() > clean_rec.wheel_force[0].unwrap(),
            "remaining wheels must take over the lost wheel's share"
        );
        // And the silenced node reintegrates eventually.
        assert_eq!(report.records.last().unwrap().members, 6);
    }

    #[test]
    fn cu_replica_outage_is_transparent() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(CU_A, 5);
        let report = cluster.run(12, constant_pedal);
        assert!(!report.service_lost);
        // While A is silent, the duplex value comes from a single replica.
        assert!(report.records.iter().any(|r| r.cu_single));
        // Wheels keep receiving set-points: no degraded mode from CU outage.
        let mid = &report.records[6];
        assert!(mid.wheel_force.iter().all(|f| f.is_some()));
    }

    #[test]
    fn losing_both_cu_replicas_loses_service() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(CU_A, 8);
        cluster.silence_node(CU_B, 8);
        let report = cluster.run(10, constant_pedal);
        assert!(report.service_lost);
    }

    #[test]
    fn losing_two_wheels_loses_service() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(WHEELS[0], 8);
        cluster.silence_node(WHEELS[1], 8);
        let report = cluster.run(10, constant_pedal);
        assert!(report.service_lost);
    }

    #[test]
    fn wire_corruption_is_a_single_cycle_omission() {
        let mut cluster = BbwCluster::new();
        cluster.corrupt_frame(5, WHEELS[2]);
        let report = cluster.run(12, constant_pedal);
        assert!(!report.service_lost);
        assert_eq!(report.omissions, 1, "one rejected frame = one omission");
        // Below the exclusion threshold: membership never shrinks.
        assert!(report.records.iter().all(|r| r.members == 6));
        // The victim's force is absent exactly in cycle 5.
        assert!(report.records[5].wheel_force[2].is_none());
        assert!(report.records[6].wheel_force[2].is_some());
    }

    #[test]
    fn repeated_wire_corruption_triggers_exclusion() {
        let mut cluster = BbwCluster::new();
        cluster.corrupt_frame(3, WHEELS[0]);
        cluster.corrupt_frame(4, WHEELS[0]);
        let report = cluster.run(12, constant_pedal);
        assert!(!report.service_lost);
        assert!(
            report.records.iter().any(|r| r.members == 5),
            "two consecutive losses must exclude the node"
        );
        // And it reintegrates once the wire is clean again.
        assert_eq!(report.records.last().unwrap().members, 6);
    }

    #[test]
    fn membership_events_reported() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(WHEELS[2], 4);
        let report = cluster.run(12, constant_pedal);
        let excluded: Vec<_> = report
            .records
            .iter()
            .flat_map(|r| r.events.iter())
            .collect();
        assert!(excluded
            .iter()
            .any(|e| matches!(e, MembershipEvent::Excluded(n) if *n == WHEELS[2])));
        assert!(excluded
            .iter()
            .any(|e| matches!(e, MembershipEvent::Reintegrated(n) if *n == WHEELS[2])));
    }
}
