//! An executable distributed brake-by-wire cluster.
//!
//! Where [`crate::analytic`] and [`crate::montecarlo`] treat nodes as rate
//! processes, this module actually *runs* the system of Fig. 4: two central
//! unit replicas executing the pedal→force distribution task and four wheel
//! nodes executing PID force controllers — all as TM32 programs under the
//! TEM kernel — exchanging frames over the time-triggered bus with
//! membership, duplex selection and degraded-mode force redistribution.
//!
//! Fault injection happens at machine level (a bit flip inside a chosen
//! node's task copy); its consequences then propagate through the real
//! stack: TEM masks it, or the node omits its slot, membership notices,
//! and the central unit redistributes brake force to the remaining wheels.

use std::collections::BTreeMap;

use nlft_core::diagnosis::{AlphaCountConfig, NodeSupervisor};
use nlft_kernel::escalation::{EscalationEvent, EscalationPolicy, NodeHealth};
use nlft_kernel::tem::{InjectionPlan, JobFault, JobOutcome, TemConfig, TemExecutor};
use nlft_machine::fault::{IntermittentFault, StuckAtFault, TransientFault};
use nlft_machine::machine::Machine;
use nlft_machine::workloads::{self, Workload};
use nlft_net::bus::{Bus, BusConfig, CycleDelivery, WireFault};
use nlft_net::frame::NodeId;
use nlft_net::inject::{InjectionCounts, NetFaultInjector, NetFaultPlan};
use nlft_net::membership::{Membership, MembershipEvent};
use nlft_net::replication::{select_duplex_among, DuplexPair, DuplexValue, StateResync};
use nlft_sim::rng::RngStream;

/// Bus node ids: two CU replicas then four wheel nodes.
pub const CU_A: NodeId = NodeId(0);
/// Second central-unit replica.
pub const CU_B: NodeId = NodeId(1);
/// Wheel nodes, front-left/front-right/rear-left/rear-right.
pub const WHEELS: [NodeId; 4] = [NodeId(2), NodeId(3), NodeId(4), NodeId(5)];

/// Cluster-level fault to inject in a specific communication cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterInjection {
    /// Cycle in which the fault strikes.
    pub cycle: u32,
    /// Victim node.
    pub node: NodeId,
    /// TEM copy index hit.
    pub copy: u32,
    /// Cycle offset within the copy.
    pub at_cycle: u64,
    /// The machine-level fault.
    pub fault: TransientFault,
}

/// Per-cycle observable record.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleRecord {
    /// Communication cycle number.
    pub cycle: u32,
    /// Pedal input this cycle.
    pub pedal: u32,
    /// Commanded force per wheel (by wheel index), `None` when the wheel
    /// received no set-point or delivered no result.
    pub wheel_force: [Option<u32>; 4],
    /// Nodes in the membership after this cycle.
    pub members: usize,
    /// Whether the CU pair value came from a single replica.
    pub cu_single: bool,
    /// Whether degraded-mode redistribution was active.
    pub degraded: bool,
    /// Membership changes this cycle.
    pub events: Vec<MembershipEvent>,
}

/// Summary of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Every cycle, in order.
    pub records: Vec<CycleRecord>,
    /// Cycles spent in degraded mode.
    pub degraded_cycles: u32,
    /// Omissions observed (a member node missing its slot).
    pub omissions: u32,
    /// `true` if braking service was lost (CU silent or <3 wheels serving).
    pub service_lost: bool,
    /// `true` if the membership majority was lost at any point (≤ 3 of 6
    /// nodes left in the view) — the cluster can no longer tell who failed.
    pub split_membership: bool,
    /// Smallest membership seen in any cycle.
    pub min_members: usize,
    /// For every readmission during the run: cycles between the exclusion
    /// and the matching [`MembershipEvent::Reintegrated`].
    pub reintegration_latencies: Vec<u32>,
    /// Frames rejected by CRC during this run (bus counter delta).
    pub crc_rejects: u64,
    /// Babbling transmissions blocked by the guardian during this run.
    pub guardian_blocks: u64,
    /// Well-formed forged frames rejected by the identity check.
    pub masquerade_rejects: u64,
    /// Wire corruptions that actually landed on a transmitted frame.
    pub corruptions_applied: u64,
    /// Wire masquerades that actually landed on a transmitted frame.
    pub masquerades_applied: u64,
    /// Escalation-ladder transitions of supervised nodes, in cycle order:
    /// `(cycle, node, event)`.
    pub escalations: Vec<(u32, NodeId, EscalationEvent)>,
    /// Restarts scheduled by supervised nodes during this run.
    pub restarts: u32,
    /// Nodes retired by their supervisor during this run.
    pub retired_nodes: Vec<NodeId>,
}

impl ClusterReport {
    /// The escalation events of one node, in order.
    pub fn escalations_for(&self, node: NodeId) -> Vec<EscalationEvent> {
        self.escalations
            .iter()
            .filter(|(_, n, _)| *n == node)
            .map(|(_, _, e)| *e)
            .collect()
    }
}

/// A node-local intermittent fault: the recurring transient, the job
/// slots elapsed since onset, and a dedicated stream for its recurrence
/// and placement draws.
struct IntermittentRuntime {
    fault: IntermittentFault,
    slots_since_onset: u32,
    rng: RngStream,
}

struct StationRuntime {
    workload: Workload,
    machine: Machine,
    tem_config: TemConfig,
    /// Task cycles of a clean run, for placing recurring injections.
    clean_cycles: u64,
    /// Remaining cycles of enforced silence (fail-silent restart window).
    silent_for: u32,
    /// Diagnosis + escalation, when this node is supervised.
    supervisor: Option<NodeSupervisor>,
    /// A permanent hardware fault: re-asserted before every instruction of
    /// every copy, and deliberately surviving restarts.
    stuck_at: Option<StuckAtFault>,
    /// A recurring (intermittent) fault attached to this node.
    intermittent: Option<IntermittentRuntime>,
}

impl StationRuntime {
    fn new(workload: Workload, clean_cycles: u64) -> Self {
        let machine = workload.instantiate();
        StationRuntime {
            workload,
            machine,
            tem_config: TemConfig::with_budget(clean_cycles * 2 + 50),
            clean_cycles,
            silent_for: 0,
            supervisor: None,
            stuck_at: None,
            intermittent: None,
        }
    }

    /// Whether the escalation ladder holds this node silent.
    fn supervised_silent(&self) -> bool {
        self.supervisor.as_ref().is_some_and(|s| !s.jobs_active())
    }

    /// Advances one silent job slot: restart scheduling/countdown, plus
    /// the intermittent fault's burst clock (wall time passes whether or
    /// not the node executes). A completed restart reboots the machine —
    /// fresh state, same hardware, so a stuck-at survives it.
    fn tick_supervisor(&mut self) -> Vec<EscalationEvent> {
        if let Some(i) = self.intermittent.as_mut() {
            i.slots_since_onset += 1;
        }
        let Some(sup) = self.supervisor.as_mut() else {
            return Vec::new();
        };
        let events = sup.tick_silent();
        if events.contains(&EscalationEvent::Restarted) {
            self.machine = self.workload.instantiate();
        }
        events
    }

    /// The fault manifesting in this job, merging the node's persistent
    /// faults with an externally scheduled one-shot plan.
    fn job_fault(&mut self, plan: Option<InjectionPlan>) -> Option<JobFault> {
        if let Some(stuck) = self.stuck_at {
            return Some(JobFault::StuckAt(stuck));
        }
        if let Some(i) = self.intermittent.as_mut() {
            let since = i.slots_since_onset;
            i.slots_since_onset += 1;
            if i.fault.manifests(since, &mut i.rng) {
                return Some(JobFault::Transient(InjectionPlan {
                    copy: i.rng.uniform_range(0, 2) as u32,
                    at_cycle: i.rng.uniform_range(1, self.clean_cycles.max(2)),
                    fault: i.fault.fault,
                }));
            }
        }
        plan.map(JobFault::Transient)
    }

    fn run_job(
        &mut self,
        inputs: &[u32],
        plan: Option<InjectionPlan>,
    ) -> (Option<Vec<u32>>, Vec<EscalationEvent>) {
        if self.silent_for > 0 {
            self.silent_for -= 1;
            return (None, Vec::new());
        }
        if self.supervised_silent() {
            return (None, self.tick_supervisor());
        }
        let fault = self.job_fault(plan);
        let mut config = self.tem_config;
        if self.supervisor.as_ref().is_some_and(|s| s.tem_triples()) {
            // Suspect / reintegrating: TEM always triples (three copies +
            // majority vote on every job).
            config.min_results = 3;
        }
        let tem = TemExecutor::new(config);
        let report = tem.run_job_with_fault(&mut self.machine, &self.workload, inputs, fault);
        let errored = matches!(
            report.outcome,
            JobOutcome::DeliveredMasked { .. } | JobOutcome::Omission { .. }
        );
        let events = match self.supervisor.as_mut() {
            Some(sup) => sup.observe_job(errored),
            None => Vec::new(),
        };
        let outputs = match report.outcome {
            JobOutcome::DeliveredClean | JobOutcome::DeliveredMasked { .. } => {
                let outputs = report.outputs.expect("delivered");
                Some(
                    self.workload
                        .output_ports
                        .iter()
                        .map(|&p| outputs[p].unwrap_or(0))
                        .collect(),
                )
            }
            JobOutcome::Omission { .. } => None,
        };
        (outputs, events)
    }
}

/// The running cluster.
pub struct BbwCluster {
    bus: Bus,
    membership: Membership,
    cu_pair: DuplexPair,
    cu: BTreeMap<NodeId, StationRuntime>,
    wheels: BTreeMap<NodeId, StationRuntime>,
    injections: Vec<ClusterInjection>,
    wire_corruptions: Vec<(u32, NodeId)>,
    /// Network-level fault injector, when a storm is attached.
    net_injector: Option<NetFaultInjector>,
    /// Per-CU state-resync endpoints, driven when a replica returns from an
    /// outage.
    cu_resync: BTreeMap<NodeId, StateResync>,
    /// Whether each CU was silent (enforced or net-crashed) last cycle.
    cu_silent_last: BTreeMap<NodeId, bool>,
    /// Last delivery, fed into the resync endpoints next cycle.
    prev_delivery: Option<CycleDelivery>,
    /// First cycle of each node's current exclusion episode.
    exclusion_started: BTreeMap<NodeId, u32>,
}

impl BbwCluster {
    /// Builds the six-node cluster with the standard workloads.
    pub fn new() -> Self {
        let config = BusConfig::round_robin(6, 4);
        let bus = Bus::new(config.clone());
        // Exclusion after 2 silent cycles, reintegration after 2 good ones —
        // scaled-down versions of the paper's 1.6 s / 3 s windows.
        let membership = Membership::new(&config, 2, 2);

        let dist = workloads::brake_distribution();
        let (_, dist_cycles) = dist.golden_run(&[1000]);
        let pid = workloads::pid_controller();
        let (_, pid_cycles) = pid.golden_run(&[1000, 900]);

        let mut cu = BTreeMap::new();
        for id in [CU_A, CU_B] {
            cu.insert(id, StationRuntime::new(dist.clone(), dist_cycles));
        }
        let mut wheels = BTreeMap::new();
        for id in WHEELS {
            wheels.insert(id, StationRuntime::new(pid.clone(), pid_cycles));
        }
        let cu_pair = DuplexPair::new(CU_A, CU_B);
        BbwCluster {
            bus,
            membership,
            cu_pair,
            cu,
            wheels,
            injections: Vec::new(),
            wire_corruptions: Vec::new(),
            net_injector: None,
            cu_resync: [CU_A, CU_B]
                .into_iter()
                .map(|id| (id, StateResync::new(id, cu_pair)))
                .collect(),
            cu_silent_last: [CU_A, CU_B].into_iter().map(|id| (id, false)).collect(),
            prev_delivery: None,
            exclusion_started: BTreeMap::new(),
        }
    }

    /// Schedules a machine-level fault injection.
    pub fn inject(&mut self, injection: ClusterInjection) {
        self.injections.push(injection);
    }

    /// Attaches a network fault-injection plan, driven every cycle of
    /// subsequent [`BbwCluster::run`] calls. `rng` should be a dedicated
    /// fork of the experiment's master stream so cluster decisions and
    /// injection decisions never entangle.
    pub fn attach_net_faults(&mut self, plan: NetFaultPlan, rng: RngStream) {
        self.net_injector = Some(NetFaultInjector::new(plan, rng));
    }

    /// Replaces the attached plan (e.g. to quiesce the storm mid-run);
    /// outage windows already opened keep running. No-op when no storm is
    /// attached.
    pub fn set_net_fault_plan(&mut self, plan: NetFaultPlan) {
        if let Some(inj) = self.net_injector.as_mut() {
            inj.set_plan(plan);
        }
    }

    /// Detaches the network fault injector entirely.
    pub fn clear_net_faults(&mut self) {
        self.net_injector = None;
    }

    /// Injection decisions taken by the attached storm so far.
    pub fn net_injection_counts(&self) -> InjectionCounts {
        self.net_injector
            .as_ref()
            .map(|i| i.counts())
            .unwrap_or_default()
    }

    /// Corrupts `node`'s frame on the wire in the given cycle: the CRC
    /// rejects it at every receiver, so the node is effectively silent for
    /// that cycle — the network-level end-to-end detection of §2.6.
    pub fn corrupt_frame(&mut self, cycle: u32, node: NodeId) {
        self.wire_corruptions.push((cycle, node));
    }

    /// Forces a node silent for `cycles` cycles (models a fail-silent
    /// restart window without machine-level detail).
    pub fn silence_node(&mut self, node: NodeId, cycles: u32) {
        if let Some(s) = self.station_mut(node) {
            s.silent_for = cycles;
        }
    }

    fn station_mut(&mut self, node: NodeId) -> Option<&mut StationRuntime> {
        self.cu
            .get_mut(&node)
            .or_else(|| self.wheels.get_mut(&node))
    }

    /// Puts `node` under a diagnosis supervisor: its TEM error stream
    /// feeds an α-count, and the escalation ladder silences, restarts,
    /// reintegrates or retires the node. The resulting
    /// [`EscalationEvent`]s land in [`ClusterReport::escalations`].
    pub fn supervise(&mut self, node: NodeId, alpha: AlphaCountConfig, policy: EscalationPolicy) {
        if let Some(s) = self.station_mut(node) {
            s.supervisor = Some(NodeSupervisor::new(alpha, policy));
        }
    }

    /// Supervises all six nodes with the same configuration.
    pub fn supervise_all(&mut self, alpha: AlphaCountConfig, policy: EscalationPolicy) {
        for id in [CU_A, CU_B].iter().chain(WHEELS.iter()).copied() {
            self.supervise(id, alpha, policy);
        }
    }

    /// Attaches a permanent stuck-at fault to `node`'s processor. It is
    /// re-asserted before every instruction of every TEM copy and — being
    /// hardware — survives node restarts.
    pub fn attach_stuck_at(&mut self, node: NodeId, fault: StuckAtFault) {
        if let Some(s) = self.station_mut(node) {
            s.stuck_at = Some(fault);
        }
    }

    /// Attaches an intermittent fault to `node`: from the next job slot
    /// on, the transient recurs with the fault's recurrence probability
    /// until its burst expires. `rng` should be a dedicated fork of the
    /// experiment's master stream.
    pub fn attach_intermittent(&mut self, node: NodeId, fault: IntermittentFault, rng: RngStream) {
        if let Some(s) = self.station_mut(node) {
            s.intermittent = Some(IntermittentRuntime {
                fault,
                slots_since_onset: 0,
                rng,
            });
        }
    }

    /// The ladder position of a supervised node (`None` when the node is
    /// not supervised).
    pub fn node_health(&self, node: NodeId) -> Option<NodeHealth> {
        self.cu
            .get(&node)
            .or_else(|| self.wheels.get(&node))
            .and_then(|s| s.supervisor.as_ref())
            .map(|sup| sup.health())
    }

    /// Runs the cluster for `cycles` communication cycles with the given
    /// pedal profile (pedal position per cycle, 0..4095). May be called
    /// repeatedly: bus, membership and injector state persist, so a storm
    /// phase can be followed by a quiet phase on the same cluster.
    pub fn run(&mut self, cycles: u32, pedal: impl Fn(u32) -> u32) -> ClusterReport {
        let mut records = Vec::with_capacity(cycles as usize);
        let mut degraded_cycles = 0;
        let mut omissions = 0;
        let mut service_lost = false;
        let mut split_membership = false;
        let mut min_members = self.membership.members().len();
        let mut reintegration_latencies = Vec::new();
        let mut escalations: Vec<(u32, NodeId, EscalationEvent)> = Vec::new();
        let mut restarts = 0;
        let mut retired_nodes: Vec<NodeId> = Vec::new();
        let crc_rejects_0 = self.bus.crc_rejects();
        let guardian_blocks_0 = self.bus.guardian_blocks();
        let masquerade_rejects_0 = self.bus.masquerade_rejects();
        let corruptions_applied_0 = self.bus.corruptions_applied();
        let masquerades_applied_0 = self.bus.masquerades_applied();
        // Wheel set-points computed from the previous cycle's CU frames.
        let mut setpoints: [Option<u32>; 4] = [None; 4];
        let mut measured: [u32; 4] = [0; 4];

        for cycle in 0..cycles {
            let pedal_now = pedal(cycle).min(4095);
            self.bus.start_cycle();

            // Network storm first: decide this cycle's wire faults and
            // which nodes are held down by crash/clock outages.
            let net_silenced: Vec<NodeId> = match self.net_injector.as_mut() {
                Some(inj) => inj.perturb_cycle(&mut self.bus),
                None => Vec::new(),
            };
            let bus_cycle = self.bus.cycle();

            // Central units: compute the 4-way force distribution under TEM.
            for (&id, station) in self.cu.iter_mut() {
                let plan = plan_for(&self.injections, bus_cycle, id);
                if self.wire_corruptions.contains(&(bus_cycle, id)) {
                    let slot = self.bus.config().slot_of(id).expect("CU owns a slot");
                    self.bus
                        .stage_wire_fault(WireFault::CorruptStatic { slot, byte: 7, mask: 0x40 });
                }
                let net_down = net_silenced.contains(&id);
                let was_silent = self.cu_silent_last[&id];
                let silent_now =
                    net_down || station.silent_for > 0 || station.supervised_silent();
                let resync = self.cu_resync.get_mut(&id).expect("CU endpoint");
                if was_silent && !silent_now {
                    // The replica returns: it resumes transmitting at once
                    // (the distribution task is stateless) while refreshing
                    // soft state from its partner over the dynamic segment.
                    resync.begin_resync();
                }
                self.cu_silent_last.insert(id, silent_now);
                let mut our_state: Vec<u32> = Vec::new();
                if net_down {
                    // Held down by the network outage: the node does not
                    // execute, but its supervisor's restart clock still runs.
                    for ev in station.tick_supervisor() {
                        record_escalation(
                            &mut escalations,
                            &mut restarts,
                            &mut retired_nodes,
                            bus_cycle,
                            id,
                            ev,
                        );
                    }
                } else {
                    let (result, events) = station.run_job(&[pedal_now], plan);
                    for ev in events {
                        record_escalation(
                            &mut escalations,
                            &mut restarts,
                            &mut retired_nodes,
                            bus_cycle,
                            id,
                            ev,
                        );
                    }
                    if let Some(outputs) = result {
                        // Degraded-mode redistribution: scale the shares of the
                        // serving wheels when some are out of the membership.
                        let serving: Vec<usize> = (0..4)
                            .filter(|&w| self.membership.is_member(WHEELS[w]))
                            .collect();
                        let mut payload = vec![0u32; 4];
                        if !serving.is_empty() {
                            let scale_num = 4 as u32;
                            let scale_den = serving.len() as u32;
                            for &w in &serving {
                                payload[w] = outputs[w] * scale_num / scale_den;
                            }
                        }
                        our_state = payload.clone();
                        let _ = self.bus.transmit_static(id, payload);
                    }
                }
                if !silent_now {
                    resync.tick(&mut self.bus);
                    if let Some(prev) = &self.prev_delivery {
                        let _ = resync.process_cycle(&mut self.bus, prev, &our_state);
                    }
                }
            }

            // Wheel nodes: run PID on last cycle's set-point.
            for (w, &id) in WHEELS.iter().enumerate() {
                let station = self.wheels.get_mut(&id).expect("wheel exists");
                if net_silenced.contains(&id) {
                    // Crashed / clock-lost: the node does not execute.
                    continue;
                }
                if station.supervised_silent() {
                    // The escalation ladder holds this wheel down (silent,
                    // restarting or retired): advance its restart clock.
                    for ev in station.tick_supervisor() {
                        record_escalation(
                            &mut escalations,
                            &mut restarts,
                            &mut retired_nodes,
                            bus_cycle,
                            id,
                            ev,
                        );
                    }
                    continue;
                }
                let Some(sp) = setpoints[w] else {
                    // No set-point yet (first cycle or CU silent): stay quiet.
                    continue;
                };
                let plan = plan_for(&self.injections, bus_cycle, id);
                if self.wire_corruptions.contains(&(bus_cycle, id)) {
                    let slot = self.bus.config().slot_of(id).expect("wheel owns a slot");
                    self.bus
                        .stage_wire_fault(WireFault::CorruptStatic { slot, byte: 7, mask: 0x40 });
                }
                let (result, events) = station.run_job(&[sp, measured[w]], plan);
                for ev in events {
                    record_escalation(
                        &mut escalations,
                        &mut restarts,
                        &mut retired_nodes,
                        bus_cycle,
                        id,
                        ev,
                    );
                }
                if let Some(outputs) = result {
                    let force = outputs[0];
                    // First-order actuator: the measured force moves toward
                    // the command.
                    measured[w] = (measured[w] * 3 + force) / 4;
                    let _ = self.bus.transmit_static(id, vec![force]);
                }
            }

            let delivery = self.bus.finish_cycle();

            // Count omissions: nodes that were members going *into* this
            // cycle but missed their slot. Wheels only start transmitting
            // once the first set-points arrive (cycle 1), so their silent
            // first cycle is not an omission.
            for id in [CU_A, CU_B].iter().chain(WHEELS.iter()) {
                let expected = *id == CU_A || *id == CU_B || bus_cycle > 0;
                if expected
                    && self.membership.is_member(*id)
                    && delivery.from_node(self.bus.config(), *id).is_none()
                {
                    omissions += 1;
                }
            }

            let events = self.membership.observe(&delivery);
            for ev in &events {
                match ev {
                    MembershipEvent::Excluded(n) => {
                        self.exclusion_started.insert(*n, bus_cycle);
                    }
                    MembershipEvent::Reintegrated(n) => {
                        if let Some(started) = self.exclusion_started.remove(n) {
                            reintegration_latencies.push(bus_cycle - started);
                        }
                    }
                }
            }

            // Consume CU duplex value → next cycle's wheel set-points. The
            // selection is membership-aware: a replica still outside the
            // view (excluded, or restarted and not yet readmitted) cannot
            // poison the pair with stale state.
            let cu_value = select_duplex_among(
                self.bus.config(),
                &delivery,
                self.cu_pair,
                |n| self.membership.is_member(n),
            );
            let cu_single = matches!(cu_value, DuplexValue::Single { .. });
            match cu_value.payload() {
                Some(forces) if forces.len() == 4 => {
                    for w in 0..4 {
                        setpoints[w] = Some(forces[w]);
                    }
                }
                _ => {
                    for s in &mut setpoints {
                        *s = None;
                    }
                }
            }

            let serving_wheels = WHEELS
                .iter()
                .filter(|&&w| self.membership.is_member(w))
                .count();
            let degraded = serving_wheels < 4;
            if degraded {
                degraded_cycles += 1;
            }
            let cu_alive =
                self.membership.is_member(CU_A) || self.membership.is_member(CU_B);
            if !cu_alive || serving_wheels < 3 {
                service_lost = true;
            }

            let mut wheel_force = [None; 4];
            for (w, &id) in WHEELS.iter().enumerate() {
                wheel_force[w] = delivery
                    .from_node(self.bus.config(), id)
                    .and_then(|f| f.payload.first().copied());
            }

            let members = self.membership.members().len();
            min_members = min_members.min(members);
            if members <= 3 {
                split_membership = true;
            }

            records.push(CycleRecord {
                cycle: bus_cycle,
                pedal: pedal_now,
                wheel_force,
                members,
                cu_single,
                degraded,
                events,
            });
            self.prev_delivery = Some(delivery);
        }

        ClusterReport {
            records,
            degraded_cycles,
            omissions,
            service_lost,
            split_membership,
            min_members,
            reintegration_latencies,
            crc_rejects: self.bus.crc_rejects() - crc_rejects_0,
            guardian_blocks: self.bus.guardian_blocks() - guardian_blocks_0,
            masquerade_rejects: self.bus.masquerade_rejects() - masquerade_rejects_0,
            corruptions_applied: self.bus.corruptions_applied() - corruptions_applied_0,
            masquerades_applied: self.bus.masquerades_applied() - masquerades_applied_0,
            escalations,
            restarts,
            retired_nodes,
        }
    }
}

fn record_escalation(
    escalations: &mut Vec<(u32, NodeId, EscalationEvent)>,
    restarts: &mut u32,
    retired_nodes: &mut Vec<NodeId>,
    cycle: u32,
    node: NodeId,
    event: EscalationEvent,
) {
    if matches!(event, EscalationEvent::RestartScheduled { .. }) {
        *restarts += 1;
    }
    if event == EscalationEvent::Retired && !retired_nodes.contains(&node) {
        retired_nodes.push(node);
    }
    escalations.push((cycle, node, event));
}

impl Default for BbwCluster {
    fn default() -> Self {
        BbwCluster::new()
    }
}

fn plan_for(
    injections: &[ClusterInjection],
    cycle: u32,
    node: NodeId,
) -> Option<InjectionPlan> {
    injections
        .iter()
        .find(|i| i.cycle == cycle && i.node == node)
        .map(|i| InjectionPlan {
            copy: i.copy,
            at_cycle: i.at_cycle,
            fault: i.fault,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlft_machine::fault::FaultTarget;

    fn constant_pedal(_: u32) -> u32 {
        1000
    }

    #[test]
    fn clean_run_brakes_all_wheels() {
        let mut cluster = BbwCluster::new();
        let report = cluster.run(10, constant_pedal);
        assert!(!report.service_lost);
        assert_eq!(report.degraded_cycles, 0);
        let last = report.records.last().unwrap();
        assert_eq!(last.members, 6);
        // After the pipeline fills, every wheel transmits a force.
        assert!(last.wheel_force.iter().all(|f| f.is_some()));
        // Front wheels get more force than rear (60/40 split).
        assert!(last.wheel_force[0].unwrap() > last.wheel_force[2].unwrap());
    }

    #[test]
    fn pedal_profile_flows_through() {
        let mut cluster = BbwCluster::new();
        let report = cluster.run(12, |c| if c < 6 { 0 } else { 2000 });
        let early = &report.records[4];
        let late = report.records.last().unwrap();
        let sum = |r: &CycleRecord| -> u32 {
            r.wheel_force.iter().map(|f| f.unwrap_or(0)).sum()
        };
        assert!(sum(late) > sum(early), "harder pedal → more total force");
    }

    #[test]
    fn masked_fault_is_invisible_at_cluster_level() {
        let mut cluster = BbwCluster::new();
        cluster.inject(ClusterInjection {
            cycle: 5,
            node: WHEELS[1],
            copy: 0,
            at_cycle: 5,
            fault: TransientFault {
                target: FaultTarget::Pc,
                mask: 1 << 20,
            },
        });
        let report = cluster.run(10, constant_pedal);
        assert!(!report.service_lost);
        assert_eq!(report.omissions, 0, "TEM recovery hides the fault entirely");
        assert_eq!(report.records[5].members, 6);
    }

    #[test]
    fn silenced_wheel_triggers_degraded_redistribution() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(WHEELS[3], 6);
        let report = cluster.run(14, constant_pedal);
        assert!(!report.service_lost, "3-of-4 wheels keep braking");
        assert!(report.degraded_cycles > 0);
        assert!(report.omissions > 0);
        // Membership dropped to 5 at some point.
        assert!(report.records.iter().any(|r| r.members == 5));
        // During degraded operation, serving wheels carry scaled-up force:
        // find a degraded cycle with forces present.
        let degraded_rec = report
            .records
            .iter()
            .rev()
            .find(|r| r.degraded && r.wheel_force[0].is_some())
            .expect("a degraded cycle with force data");
        let clean_rec = report
            .records
            .iter()
            .find(|r| !r.degraded && r.wheel_force[0].is_some())
            .expect("a clean cycle");
        assert!(
            degraded_rec.wheel_force[0].unwrap() > clean_rec.wheel_force[0].unwrap(),
            "remaining wheels must take over the lost wheel's share"
        );
        // And the silenced node reintegrates eventually.
        assert_eq!(report.records.last().unwrap().members, 6);
    }

    #[test]
    fn cu_replica_outage_is_transparent() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(CU_A, 5);
        let report = cluster.run(12, constant_pedal);
        assert!(!report.service_lost);
        // While A is silent, the duplex value comes from a single replica.
        assert!(report.records.iter().any(|r| r.cu_single));
        // Wheels keep receiving set-points: no degraded mode from CU outage.
        let mid = &report.records[6];
        assert!(mid.wheel_force.iter().all(|f| f.is_some()));
    }

    #[test]
    fn losing_both_cu_replicas_loses_service() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(CU_A, 8);
        cluster.silence_node(CU_B, 8);
        let report = cluster.run(10, constant_pedal);
        assert!(report.service_lost);
    }

    #[test]
    fn losing_two_wheels_loses_service() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(WHEELS[0], 8);
        cluster.silence_node(WHEELS[1], 8);
        let report = cluster.run(10, constant_pedal);
        assert!(report.service_lost);
    }

    #[test]
    fn wire_corruption_is_a_single_cycle_omission() {
        let mut cluster = BbwCluster::new();
        cluster.corrupt_frame(5, WHEELS[2]);
        let report = cluster.run(12, constant_pedal);
        assert!(!report.service_lost);
        assert_eq!(report.omissions, 1, "one rejected frame = one omission");
        // Below the exclusion threshold: membership never shrinks.
        assert!(report.records.iter().all(|r| r.members == 6));
        // The victim's force is absent exactly in cycle 5.
        assert!(report.records[5].wheel_force[2].is_none());
        assert!(report.records[6].wheel_force[2].is_some());
    }

    #[test]
    fn repeated_wire_corruption_triggers_exclusion() {
        let mut cluster = BbwCluster::new();
        cluster.corrupt_frame(3, WHEELS[0]);
        cluster.corrupt_frame(4, WHEELS[0]);
        let report = cluster.run(12, constant_pedal);
        assert!(!report.service_lost);
        assert!(
            report.records.iter().any(|r| r.members == 5),
            "two consecutive losses must exclude the node"
        );
        // And it reintegrates once the wire is clean again.
        assert_eq!(report.records.last().unwrap().members, 6);
    }

    #[test]
    fn storm_on_one_wheel_degrades_but_never_loses_service() {
        use nlft_net::inject::NetFaultRates;

        let mut cluster = BbwCluster::new();
        // A total omission storm on one wheel: every frame it sends is
        // lost, so it is permanently excluded while the storm lasts.
        let plan = NetFaultPlan::quiet().with_node(
            WHEELS[2],
            NetFaultRates {
                omission: 1.0,
                ..NetFaultRates::QUIET
            },
        );
        cluster.attach_net_faults(plan, RngStream::new(0xACCE).fork("net-injector"));
        let storm = cluster.run(20, |_| 1200);
        assert!(!storm.service_lost, "3-of-4 wheels must keep braking");
        assert!(!storm.split_membership);
        assert!(storm.degraded_cycles >= 15, "wheel excluded almost throughout");
        assert_eq!(storm.records.last().unwrap().members, 5);
        assert_eq!(storm.min_members, 5);

        // The storm subsides: the node's fault rate drops to zero and it
        // must reintegrate within `reintegrate_after` cycles of its first
        // clean transmission.
        cluster.set_net_fault_plan(NetFaultPlan::quiet());
        let calm = cluster.run(10, |_| 1200);
        let reintegrate_after = 2; // Membership::new(&config, 2, 2) above
        let back = calm
            .records
            .iter()
            .position(|r| r.members == 6)
            .expect("wheel must reintegrate once the storm ends");
        assert!(
            back < reintegrate_after + 1,
            "reintegration took {back} cycles, window is {reintegrate_after}"
        );
        assert!(!calm.service_lost);
        assert_eq!(calm.reintegration_latencies.len(), 1);
        assert_eq!(calm.records.last().unwrap().members, 6);
    }

    #[test]
    fn cluster_storm_bus_counters_reported_per_run() {
        use nlft_net::inject::NetFaultRates;

        let mut cluster = BbwCluster::new();
        let plan = NetFaultPlan::quiet().with_node(
            WHEELS[0],
            NetFaultRates {
                corruption: 1.0,
                ..NetFaultRates::QUIET
            },
        );
        cluster.attach_net_faults(plan, RngStream::new(0x0C2C).fork("net-injector"));
        let storm = cluster.run(10, |_| 1200);
        // The wheel transmits from cycle 1 on; every frame is corrupted and
        // every corruption is caught by the CRC.
        assert!(storm.corruptions_applied >= 8);
        assert_eq!(storm.crc_rejects, storm.corruptions_applied);
        // Counters are per-run deltas: a quiet second run reports zero.
        cluster.set_net_fault_plan(NetFaultPlan::quiet());
        let calm = cluster.run(5, |_| 1200);
        assert_eq!(calm.crc_rejects, 0);
        assert_eq!(calm.corruptions_applied, 0);
    }

    #[test]
    fn membership_events_reported() {
        let mut cluster = BbwCluster::new();
        cluster.silence_node(WHEELS[2], 4);
        let report = cluster.run(12, constant_pedal);
        let excluded: Vec<_> = report
            .records
            .iter()
            .flat_map(|r| r.events.iter())
            .collect();
        assert!(excluded
            .iter()
            .any(|e| matches!(e, MembershipEvent::Excluded(n) if *n == WHEELS[2])));
        assert!(excluded
            .iter()
            .any(|e| matches!(e, MembershipEvent::Reintegrated(n) if *n == WHEELS[2])));
    }
}
