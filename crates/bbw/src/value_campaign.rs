//! Value-domain storm campaigns over the executable BBW cluster.
//!
//! The node- and network-level campaigns ask *does the cluster still
//! brake*; this campaign asks *does it brake correctly*. Every trial
//! injects value-domain faults — pedal-sensor channels lying, wheel
//! actuators misbehaving, wheel-local command corruption past the bus
//! CRC — optionally on top of a network storm and a machine-level
//! transient, and scores the run against a fault-free twin on
//! braking-safety metrics:
//!
//! * **worst total-force deficit** — the largest per-cycle shortfall of
//!   summed wheel force against the clean reference;
//! * **worst left/right imbalance** — the largest per-cycle asymmetry
//!   between the left and right wheel pairs (a yaw-moment hazard the
//!   total cannot see);
//! * **stale/seal command rejects and held cycles** — how often the
//!   end-to-end checks fired and the hold-last-safe window bridged them;
//! * **undetected value failures** — faults that were neither masked
//!   nor detected by any layer. For single-fault trials this must be
//!   zero: that is the value-domain coverage claim, and the campaign
//!   measures it instead of assuming it.
//!
//! Like every campaign in this workspace the run is deterministic in
//! the seed and invariant in the thread count: each trial forks its
//! stream from `(seed, trial index)`, shard results merge by sums and
//! maxima, and the golden test pins the exact outcome at 1/2/5 threads.

use nlft_machine::fault::FaultSpace;
use nlft_net::inject::{NetFaultPlan, NetFaultRates};
use nlft_sim::rng::RngStream;

use crate::actuator::ActuatorFault;
use crate::cluster::{BbwCluster, ClusterInjection, ClusterReport, CU_A, CU_B, WHEELS};
use crate::sensor::{SensorFault, PEDAL_MAX};

/// What each trial injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueCampaignMode {
    /// Exactly one value-domain fault per trial (a sensor fault, an
    /// actuator fault, or a command fault) and nothing else — the
    /// coverage-measurement mode.
    SingleFault,
    /// One fault of *every* value-domain kind per trial, on top of a
    /// network storm and a machine-level transient — the stress mode.
    CombinedStorm,
}

/// Configuration of a value-domain campaign.
#[derive(Debug, Clone)]
pub struct ValueDomainCampaignConfig {
    /// Number of independent cluster runs.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Communication cycles per run.
    pub cycles: u32,
    /// Worker threads; results are identical for any value.
    pub threads: usize,
    /// What to inject per trial.
    pub mode: ValueCampaignMode,
    /// Network storm intensity in `[0, 1]` (combined mode only).
    pub net_intensity: f64,
}

impl ValueDomainCampaignConfig {
    /// A single-fault coverage campaign.
    pub fn single_fault(trials: u64, seed: u64) -> Self {
        ValueDomainCampaignConfig {
            trials,
            seed,
            cycles: 30,
            threads: 1,
            mode: ValueCampaignMode::SingleFault,
            net_intensity: 0.0,
        }
    }

    /// A combined sensor + actuator + command + network + node storm.
    pub fn combined_storm(trials: u64, seed: u64) -> Self {
        ValueDomainCampaignConfig {
            trials,
            seed,
            cycles: 30,
            threads: 1,
            mode: ValueCampaignMode::CombinedStorm,
            net_intensity: 0.2,
        }
    }
}

/// Per-trial verdicts, most severe first. Each trial gets exactly one:
/// `undetected` beats `service_lost` beats `detected` beats `masked`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValueDomainOutcomes {
    /// Trials run.
    pub trials: u64,
    /// At least one silent value failure — a fault neither masked nor
    /// detected. The headline coverage number: must be zero for
    /// single-fault campaigns.
    pub undetected: u64,
    /// Braking service lost (everything was detected, but too much of
    /// the cluster went down).
    pub service_lost: u64,
    /// Some detection layer fired (flag, demotion, reject, trip, or a
    /// membership exclusion) and service survived.
    pub detected: u64,
    /// The fault left no externally visible trace at all.
    pub masked: u64,
}

/// Everything a value-domain campaign measures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueDomainCampaignResult {
    /// Verdict tallies.
    pub outcomes: ValueDomainOutcomes,
    /// Largest per-cycle total-force shortfall vs the clean twin, over
    /// all trials (force counts).
    pub worst_total_force_deficit: u32,
    /// Largest per-cycle left/right wheel-pair asymmetry, over all
    /// trials (force counts).
    pub worst_left_right_imbalance: u32,
    /// Commands rejected as stale / duplicated / too old.
    pub stale_rejects: u64,
    /// Commands rejected by the application-level seal.
    pub seal_rejects: u64,
    /// Cycles wheels braked on a held last-safe set-point.
    pub held_setpoint_cycles: u64,
    /// Pedal channels demoted by the weakly-hard window.
    pub sensor_demotions: u64,
    /// Actuator monitors tripped (actuator failed to safe release).
    pub actuator_trips: u64,
    /// Silent value failures summed over all trials.
    pub undetected_value_failures: u64,
}

impl ValueDomainCampaignResult {
    /// Measured value-domain detection coverage: the fraction of trials
    /// whose faults were masked or detected rather than silent. This is
    /// the `c_v` parameter the extended fault tree takes as input.
    pub fn detection_coverage(&self) -> f64 {
        if self.outcomes.trials == 0 {
            return 0.0;
        }
        1.0 - self.outcomes.undetected as f64 / self.outcomes.trials as f64
    }

    fn merge(&mut self, other: ValueDomainCampaignResult) {
        self.outcomes.trials += other.outcomes.trials;
        self.outcomes.undetected += other.outcomes.undetected;
        self.outcomes.service_lost += other.outcomes.service_lost;
        self.outcomes.detected += other.outcomes.detected;
        self.outcomes.masked += other.outcomes.masked;
        self.worst_total_force_deficit = self
            .worst_total_force_deficit
            .max(other.worst_total_force_deficit);
        self.worst_left_right_imbalance = self
            .worst_left_right_imbalance
            .max(other.worst_left_right_imbalance);
        self.stale_rejects += other.stale_rejects;
        self.seal_rejects += other.seal_rejects;
        self.held_setpoint_cycles += other.held_setpoint_cycles;
        self.sensor_demotions += other.sensor_demotions;
        self.actuator_trips += other.actuator_trips;
        self.undetected_value_failures += other.undetected_value_failures;
    }
}

/// The campaign's pedal profile: a deterministic ramp whose slew stays
/// inside the voter's rate bound, so a healthy run raises no flags.
pub fn campaign_pedal(cycle: u32) -> u32 {
    (400 + 60 * cycle).min(3500)
}

/// Per-cycle clean-twin reference: `(total force, |left − right|)`,
/// absent where the clean run has no force data yet (pipeline fill).
fn clean_reference(cycles: u32) -> Vec<Option<(u32, u32)>> {
    let mut cluster = BbwCluster::new();
    let report = cluster.run(cycles, campaign_pedal);
    report.records.iter().map(force_metrics).collect()
}

/// Total force and left/right asymmetry of one cycle record, when all
/// wheels reported. Wheels are FL/FR/RL/RR, so left = 0 + 2, right =
/// 1 + 3.
fn force_metrics(record: &crate::cluster::CycleRecord) -> Option<(u32, u32)> {
    let f: Vec<u32> = record.wheel_force.iter().map(|w| w.unwrap_or(0)).collect();
    if record.wheel_force.iter().all(|w| w.is_none()) {
        return None;
    }
    let left = f[0] + f[2];
    let right = f[1] + f[3];
    Some((left + right, left.abs_diff(right)))
}

/// Draws one pedal-sensor fault.
fn draw_sensor_fault(rng: &mut RngStream, cycles: u32) -> (usize, SensorFault, u32) {
    let channel = rng.uniform_range(0, 3) as usize;
    let onset = rng.uniform_range(2, u64::from(cycles / 2)) as u32;
    let fault = match rng.uniform_range(0, 4) {
        0 => SensorFault::StuckAt(rng.uniform_range(0, u64::from(PEDAL_MAX) + 1) as u32),
        1 => {
            let magnitude = rng.uniform_range(400, 2000) as i64;
            let sign = if rng.uniform_range(0, 2) == 0 { 1 } else { -1 };
            SensorFault::Offset(sign * magnitude)
        }
        2 => SensorFault::Drift {
            per_cycle: rng.uniform_range(30, 120) as i64,
        },
        _ => SensorFault::NoiseBurst {
            amplitude: rng.uniform_range(600, 3000) as u32,
            cycles: rng.uniform_range(2, 10) as u32,
        },
    };
    (channel, fault, onset)
}

/// Draws one actuator fault.
fn draw_actuator_fault(rng: &mut RngStream, cycles: u32) -> (usize, ActuatorFault, u32) {
    let wheel = rng.uniform_range(0, 4) as usize;
    let onset = rng.uniform_range(2, u64::from(cycles / 2)) as u32;
    let fault = match rng.uniform_range(0, 3) {
        0 => ActuatorFault::Stuck,
        1 => ActuatorFault::Runaway {
            step: rng.uniform_range(200, 600) as u32,
        },
        _ => {
            let magnitude = rng.uniform_range(100, 300) as i64;
            let sign = if rng.uniform_range(0, 2) == 0 { 1 } else { -1 };
            ActuatorFault::Offset(sign * magnitude)
        }
    };
    (wheel, fault, onset)
}

/// Schedules one wheel-local command fault on the cluster.
fn draw_command_fault(rng: &mut RngStream, cluster: &mut BbwCluster, cycles: u32) {
    let wheel = rng.uniform_range(0, 4) as usize;
    if rng.uniform_range(0, 2) == 0 {
        let cycle = rng.uniform_range(1, u64::from(cycles) - 1) as u32;
        let word = rng.uniform_range(0, 6) as usize;
        let mask = 1u32 << rng.uniform_range(0, 32);
        cluster.corrupt_command_at_wheel(cycle, wheel, word, mask);
    } else {
        let cycle = rng.uniform_range(2, u64::from(cycles) - 1) as u32;
        cluster.replay_command_at_wheel(cycle, wheel);
    }
}

const ALL_NODES: [nlft_net::frame::NodeId; 6] =
    [CU_A, CU_B, WHEELS[0], WHEELS[1], WHEELS[2], WHEELS[3]];

/// Runs the value-domain campaign. Deterministic in the seed and
/// invariant in the thread count.
///
/// # Panics
///
/// Panics if `trials` is zero, `cycles < 8`, or `net_intensity` is
/// outside `[0, 1]`.
pub fn run_value_domain_campaign(config: &ValueDomainCampaignConfig) -> ValueDomainCampaignResult {
    assert!(config.trials > 0, "need trials");
    assert!(config.cycles >= 8, "need enough cycles for onset windows");
    assert!(
        (0.0..=1.0).contains(&config.net_intensity),
        "net_intensity must be in [0, 1]"
    );
    let clean = clean_reference(config.cycles);
    let c = config.clone();
    let campaign = nlft_engine::indexed_campaign(
        "bbw-value-domain",
        "value-trial",
        config.trials,
        ValueDomainCampaignResult::default,
        move |trial, _ctx, result: &mut ValueDomainCampaignResult| {
            result.merge(run_value_shard(&c, &clean, trial, trial + 1));
        },
        |into, from| into.merge(from),
    );
    let engine = nlft_engine::EngineConfig::with_workers(config.threads.max(1));
    nlft_engine::run_trials(campaign, &engine).acc
}

fn run_value_shard(
    config: &ValueDomainCampaignConfig,
    clean: &[Option<(u32, u32)>],
    start: u64,
    end: u64,
) -> ValueDomainCampaignResult {
    let root = RngStream::new(config.seed);
    let mut result = ValueDomainCampaignResult::default();
    for trial in start..end {
        let mut rng = root.fork_indexed("value-trial", trial);
        let mut cluster = BbwCluster::with_rng(rng.fork("pedal-sensors"));
        match config.mode {
            ValueCampaignMode::SingleFault => match rng.uniform_range(0, 3) {
                0 => {
                    let (ch, fault, onset) = draw_sensor_fault(&mut rng, config.cycles);
                    cluster.attach_sensor_fault(ch, fault, onset);
                }
                1 => {
                    let (wheel, fault, onset) = draw_actuator_fault(&mut rng, config.cycles);
                    cluster.attach_actuator_fault(wheel, fault, onset);
                }
                _ => draw_command_fault(&mut rng, &mut cluster, config.cycles),
            },
            ValueCampaignMode::CombinedStorm => {
                let (ch, fault, onset) = draw_sensor_fault(&mut rng, config.cycles);
                cluster.attach_sensor_fault(ch, fault, onset);
                let (wheel, fault, onset) = draw_actuator_fault(&mut rng, config.cycles);
                cluster.attach_actuator_fault(wheel, fault, onset);
                draw_command_fault(&mut rng, &mut cluster, config.cycles);
                if config.net_intensity > 0.0 {
                    let plan = NetFaultPlan::quiet()
                        .with_nodes(&ALL_NODES, NetFaultRates::storm(config.net_intensity));
                    cluster.attach_net_faults(plan, rng.fork("net-injector"));
                }
                let node = ALL_NODES[rng.uniform_range(0, ALL_NODES.len() as u64) as usize];
                let cycle = rng.uniform_range(1, u64::from(config.cycles) - 1) as u32;
                cluster.inject(ClusterInjection {
                    cycle,
                    node,
                    copy: rng.uniform_range(0, 2) as u32,
                    at_cycle: rng.uniform_range(1, 40),
                    fault: FaultSpace::cpu_only().sample(&mut rng),
                });
            }
        }
        let report = cluster.run(config.cycles, campaign_pedal);
        score_trial(&mut result, clean, &report);
    }
    result
}

fn score_trial(
    result: &mut ValueDomainCampaignResult,
    clean: &[Option<(u32, u32)>],
    report: &ClusterReport,
) {
    result.outcomes.trials += 1;
    let v = &report.value;
    let undetected = u64::from(v.undetected_value_failures());
    result.undetected_value_failures += undetected;
    result.stale_rejects += u64::from(v.stale_rejects);
    result.seal_rejects += u64::from(v.seal_rejects);
    result.held_setpoint_cycles += u64::from(v.held_setpoint_cycles);
    result.sensor_demotions += u64::from(v.sensor_demotions);
    result.actuator_trips += v.actuator_trips.len() as u64;

    // Braking-safety metrics against the clean twin, cycle by cycle.
    for (record, reference) in report.records.iter().zip(clean.iter()) {
        let Some((clean_total, _)) = reference else {
            continue;
        };
        let (total, imbalance) = force_metrics(record).unwrap_or((0, 0));
        result.worst_total_force_deficit = result
            .worst_total_force_deficit
            .max(clean_total.saturating_sub(total));
        result.worst_left_right_imbalance = result.worst_left_right_imbalance.max(imbalance);
    }

    let detection_fired = v.sensor_implausible_flags > 0
        || v.sensor_demotions > 0
        || v.command_rejects > 0
        || !v.actuator_trips.is_empty()
        || v.pedal_clamped_cycles > 0
        || report.degraded_cycles > 0
        || report.omissions > 0
        || report.crc_rejects > 0;
    if undetected > 0 {
        result.outcomes.undetected += 1;
    } else if report.service_lost {
        result.outcomes.service_lost += 1;
    } else if detection_fired {
        result.outcomes.detected += 1;
    } else {
        result.outcomes.masked += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fault_campaign_has_zero_silent_failures() {
        let cfg = ValueDomainCampaignConfig::single_fault(40, 0x7A1E);
        let r = run_value_domain_campaign(&cfg);
        assert_eq!(r.outcomes.trials, 40);
        assert_eq!(
            r.outcomes.undetected, 0,
            "every single value fault must be masked or detected: {r:?}"
        );
        assert_eq!(r.undetected_value_failures, 0);
        assert!(
            r.outcomes.service_lost == 0,
            "one value fault must never take the brakes out: {r:?}"
        );
    }

    #[test]
    fn campaign_identical_across_thread_counts() {
        let mut cfg = ValueDomainCampaignConfig::combined_storm(12, 0x5AFE);
        cfg.cycles = 24;
        cfg.threads = 1;
        let one = run_value_domain_campaign(&cfg);
        cfg.threads = 2;
        let two = run_value_domain_campaign(&cfg);
        cfg.threads = 5;
        let five = run_value_domain_campaign(&cfg);
        assert_eq!(one, two, "2 threads diverged from 1");
        assert_eq!(one, five, "5 threads diverged from 1");
        // Golden pin: any change to fork labels, draw order, the sealed
        // command format or the cluster's cycle structure shows up here.
        let o = &one.outcomes;
        assert_eq!(
            (o.trials, o.undetected, o.service_lost, o.detected, o.masked),
            (12, 0, 5, 7, 0),
            "golden outcome distribution moved: {o:?}"
        );
        assert_eq!(
            (
                one.worst_total_force_deficit,
                one.worst_left_right_imbalance
            ),
            (1134, 1637),
            "golden braking-safety metrics moved: {one:?}"
        );
        assert_eq!(
            (
                one.stale_rejects,
                one.seal_rejects,
                one.held_setpoint_cycles
            ),
            (4, 8, 39),
            "golden command-path counters moved: {one:?}"
        );
        assert_eq!((one.sensor_demotions, one.actuator_trips), (10, 12));
        assert_eq!(one.undetected_value_failures, 0);
    }

    #[test]
    fn combined_storm_keeps_metrics_bounded() {
        let cfg = ValueDomainCampaignConfig::combined_storm(10, 0xB0DE);
        let r = run_value_domain_campaign(&cfg);
        // Bounded-degradation claim: even with a sensor fault, an
        // actuator fault, a command fault, a network storm and a CPU
        // transient per trial, the deficit cannot exceed the clean
        // twin's full braking force, and the asymmetry cannot exceed
        // twice it (redistribution may concentrate the whole demand on
        // one side, and the PID overshoots transiently when its scaled
        // set-point jumps).
        let clean_max_total: u32 = {
            let mut c = BbwCluster::new();
            let rep = c.run(cfg.cycles, campaign_pedal);
            rep.records
                .iter()
                .filter_map(force_metrics)
                .map(|(t, _)| t)
                .max()
                .unwrap()
        };
        assert!(r.worst_total_force_deficit <= clean_max_total);
        assert!(r.worst_left_right_imbalance <= 2 * clean_max_total);
        assert!(r.outcomes.trials == 10);
    }
}
