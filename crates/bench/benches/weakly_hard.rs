//! Weakly-hard (m,k) machinery benchmarked end to end: the O(1) window
//! monitor's record loop, the fault-recovery weakly-hard analyzer, and
//! the miss-pattern storm campaign single- and multi-threaded; full
//! mode also runs a larger campaign and writes `WEAKLY_HARD.json`
//! (cross-check verdicts, worst pattern, braking degradation) under
//! `<target>/testkit/`.

use nlft_bbw::{run_miss_pattern_campaign, MissPatternCampaignConfig, MissPatternCampaignResult};
use nlft_kernel::analysis::{analyse_weakly_hard, TemCosts};
use nlft_kernel::contract::MkContract;
use nlft_kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
use nlft_sim::time::SimDuration;
use nlft_sim::weakly_hard::WeaklyHard;
use nlft_testkit::bench::{artifact_path, Bench};
use nlft_testkit::json::Json;
use std::hint::black_box;

fn campaign(trials: u64, threads: usize) -> MissPatternCampaignResult {
    let mut config = MissPatternCampaignConfig::nominal(trials, 0x5702_2005);
    config.threads = threads;
    run_miss_pattern_campaign(&config)
}

fn monitor_sweep(outcomes: u64) -> u64 {
    let mut w = WeaklyHard::new(3, 8);
    let mut violations = 0u64;
    for i in 0..outcomes {
        w.record(i % 3 == 0);
        violations += u64::from(w.is_violated());
    }
    violations
}

fn analyzer_set() -> TaskSet {
    let us = SimDuration::from_micros;
    [
        TaskSpecBuilder::new(TaskId(1), "brake-ctl")
            .period(us(100))
            .deadline(us(80))
            .wcet(us(30))
            .priority(Priority(0))
            .criticality(Criticality::Critical)
            .build()
            .unwrap(),
        TaskSpecBuilder::new(TaskId(2), "force-dist")
            .period(us(200))
            .deadline(us(160))
            .wcet(us(40))
            .priority(Priority(1))
            .criticality(Criticality::Critical)
            .build()
            .unwrap(),
    ]
    .into_iter()
    .collect()
}

fn analyzer_sweep() -> usize {
    let set = analyzer_set();
    let contracts = [
        (TaskId(1), MkContract::new(2, 8)),
        (TaskId(2), MkContract::new(1, 4)),
    ];
    let mut certified = 0usize;
    for tf in (40..200).step_by(10) {
        let bounds = analyse_weakly_hard(
            &set,
            &contracts,
            SimDuration::from_micros(tf),
            &TemCosts::nominal(),
        );
        certified += bounds.iter().filter(|b| b.satisfied).count();
    }
    certified
}

fn report(result: &MissPatternCampaignResult) -> Json {
    let frac = |n: u64| Json::Num(n as f64 / result.trials as f64);
    let mut fields = vec![
        ("trials", Json::UInt(result.trials)),
        ("certified_trials", frac(result.certified_trials)),
        (
            "certified_violations",
            Json::UInt(result.certified_violations),
        ),
        ("bound_breaches", Json::UInt(result.bound_breaches)),
        (
            "bound_reached_trials",
            Json::UInt(result.bound_reached_trials),
        ),
        ("violating_trials", frac(result.violating_trials)),
        ("total_misses", Json::UInt(result.total_misses)),
        (
            "worst_window_misses",
            Json::UInt(u64::from(result.worst_window_misses)),
        ),
        (
            "total_excess_distance",
            Json::UInt(result.total_excess_distance),
        ),
    ];
    if let Some(w) = &result.worst {
        fields.push(("worst_pattern_bits", Json::UInt(w.pattern_bits)));
        fields.push(("worst_misses", Json::UInt(u64::from(w.misses))));
        fields.push(("worst_excess_ppm", Json::UInt(w.score.excess_ppm())));
        fields.push(("worst_stopped", Json::Bool(w.score.stopped)));
    }
    Json::obj(fields)
}

fn main() {
    let mut b = Bench::new("weakly_hard");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    b.bench("monitor_1M_outcomes", || {
        black_box(monitor_sweep(black_box(1_000_000)))
    });
    b.bench("analyzer_tf_sweep", || black_box(analyzer_sweep()));
    b.bench("campaign_20_trials_1_thread", || {
        black_box(campaign(black_box(20), 1))
    });
    b.bench("campaign_20_trials_parallel", || {
        black_box(campaign(black_box(20), threads))
    });

    if b.is_full() {
        let result = campaign(200, threads);
        assert_eq!(result.certified_violations, 0, "analyzer soundness");
        assert_eq!(result.bound_breaches, 0, "bound exactness");
        let path = artifact_path("WEAKLY_HARD.json");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, report(&result).to_string()) {
            Ok(()) => println!("weakly-hard report written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    b.finish();
}
