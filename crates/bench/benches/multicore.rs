//! Multicore resource-sharing machinery benchmarked end to end: the SRP
//! ceiling/blocking analysis, a 2-core executive run under both
//! protocols, and the core-death campaign single- and multi-threaded;
//! full mode also runs a larger campaign and writes `MULTICORE.json`
//! (protocol contrast, retry-cost tightness, certification) under
//! `<target>/testkit/`.

use nlft_core::{run_multicore_campaign, MulticoreCampaignConfig, MulticoreCampaignResult};
use nlft_kernel::multicore::MulticoreExecutive;
use nlft_kernel::resources::{certify, ProtocolKind};
use nlft_machine::fault::CoreDeathFault;
use nlft_testkit::bench::{artifact_path, Bench};
use nlft_testkit::json::Json;
use std::hint::black_box;

fn campaign(trials: u64, threads: usize) -> MulticoreCampaignResult {
    let mut config = MulticoreCampaignConfig::new(trials, 0x2005_0a08);
    config.threads = threads;
    run_multicore_campaign(&config)
}

/// One adversarial mid-section core death played against a protocol.
fn executive_run(kind: ProtocolKind) -> (u64, u64) {
    let mut exec = MulticoreExecutive::reference(2, kind);
    exec.inject(CoreDeathFault {
        core: 0,
        at_tick: 100,
        in_section: true,
        escalated: false,
    });
    let report = exec.run(2_000);
    (report.missed, report.deadlocks)
}

/// Certify the reference workload under both protocols at 2 and 5 cores.
fn certify_sweep() -> usize {
    let mut certified = 0usize;
    for cores in [2usize, 5] {
        let (set, map) = MulticoreExecutive::reference_workload(cores);
        for kind in [ProtocolKind::LockBased, ProtocolKind::LeftRs] {
            certified += certify(&set, &map, kind, cores as u32, 1)
                .iter()
                .filter(|c| c.response.is_some())
                .count();
        }
    }
    certified
}

fn report(result: &MulticoreCampaignResult) -> Json {
    Json::obj(vec![
        ("trials", Json::UInt(result.trials)),
        ("crash_trials", Json::UInt(result.crash_trials)),
        ("escalated_trials", Json::UInt(result.escalated_trials)),
        (
            "lock_failed_crash_trials",
            Json::UInt(result.lock_failed_crash_trials),
        ),
        ("lock_deadlocks", Json::UInt(result.lock_deadlocks)),
        ("lock_misses", Json::UInt(result.lock_misses)),
        (
            "leftrs_clean_trials",
            Json::UInt(result.leftrs_clean_trials),
        ),
        (
            "leftrs_max_retry_cost_us",
            Json::UInt(result.leftrs_max_retry_cost_us),
        ),
        (
            "certified_retry_term_us",
            Json::UInt(result.certified_retry_term_us),
        ),
        (
            "retry_bound_breaches",
            Json::UInt(result.retry_bound_breaches),
        ),
        ("certified_tasks", Json::UInt(result.certified_tasks)),
        ("uncertified_tasks", Json::UInt(result.uncertified_tasks)),
        ("claims_hold", Json::Bool(result.claims_hold())),
    ])
}

fn main() {
    let mut b = Bench::new("multicore");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    b.bench("executive_core_death_lock_based", || {
        black_box(executive_run(black_box(ProtocolKind::LockBased)))
    });
    b.bench("executive_core_death_left_rs", || {
        black_box(executive_run(black_box(ProtocolKind::LeftRs)))
    });
    b.bench("certify_sweep_2_and_5_cores", || black_box(certify_sweep()));
    b.bench("campaign_20_trials_1_thread", || {
        black_box(campaign(black_box(20), 1))
    });
    b.bench("campaign_20_trials_parallel", || {
        black_box(campaign(black_box(20), threads))
    });

    if b.is_full() {
        let result = campaign(200, threads);
        assert!(result.claims_hold(), "campaign claims must hold");
        assert!(
            result.leftrs_max_retry_cost_us <= result.certified_retry_term_us,
            "measured retry cost within the certified term"
        );
        let path = artifact_path("MULTICORE.json");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, report(&result).to_string()) {
            Ok(()) => println!("multicore report written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    b.finish();
}
