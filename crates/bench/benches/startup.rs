//! Blackout-survival campaign against the executable BBW cluster with
//! the TTP/C-style startup protocol enabled, benchmarked single- and
//! multi-threaded; full mode also runs a larger campaign and writes
//! `STARTUP.json` (recovery fraction, cold-start and membership
//! latencies, big-bang/clique-revert counts) under `<target>/testkit/`.

use nlft_bbw::{run_blackout_campaign, BlackoutCampaignConfig, BlackoutCampaignResult};
use nlft_testkit::bench::{artifact_path, Bench};
use nlft_testkit::json::Json;
use std::hint::black_box;

fn campaign(trials: u64, threads: usize) -> BlackoutCampaignResult {
    let mut config = BlackoutCampaignConfig::new(trials, 0xB1AC_2005);
    config.threads = threads;
    run_blackout_campaign(&config)
}

fn report(result: &BlackoutCampaignResult) -> Json {
    let membership = |pct: u32| {
        result
            .membership_percentile(pct)
            .map_or(Json::Null, |v| Json::UInt(u64::from(v)))
    };
    Json::obj([
        ("trials", Json::UInt(result.trials)),
        ("recovery_fraction", Json::Num(result.recovery_fraction())),
        (
            "cold_start_fraction",
            Json::Num(result.cold_start_trials as f64 / result.trials as f64),
        ),
        ("big_bangs", Json::UInt(result.big_bangs)),
        ("clique_reverts", Json::UInt(result.clique_reverts)),
        ("guardian_blocks", Json::UInt(result.guardian_blocks)),
        (
            "held_setpoint_cycles",
            Json::UInt(result.held_setpoint_cycles),
        ),
        ("membership_p50_cycles", membership(50)),
        ("membership_p95_cycles", membership(95)),
        (
            "integration_latency_mean_cycles",
            Json::Num(result.integration_latency_mean()),
        ),
    ])
}

fn main() {
    let mut b = Bench::new("startup");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    b.bench("blackout_20_trials_1_thread", || {
        black_box(campaign(black_box(20), 1))
    });
    b.bench("blackout_20_trials_parallel", || {
        black_box(campaign(black_box(20), threads))
    });

    if b.is_full() {
        let result = campaign(200, threads);
        let path = artifact_path("STARTUP.json");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, report(&result).to_string()) {
            Ok(()) => println!("startup report written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    b.finish();
}
