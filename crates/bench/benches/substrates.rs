//! Microbenchmarks of every substrate: the matrix exponential, CTMC
//! solves, BDD fault trees, the TM32 interpreter, TEM jobs, the scheduler
//! simulation, the TDMA bus and the campaign trial loop.

use nlft_bbw::cluster::BbwCluster;
use nlft_kernel::preemptive::{PreemptiveExecutive, ResidentTask};
use nlft_kernel::sched::FpSimulator;
use nlft_kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
use nlft_kernel::tem::{TemConfig, TemExecutor};
use nlft_machine::workloads;
use nlft_net::bus::{Bus, BusConfig};
use nlft_net::frame::NodeId;
use nlft_reliability::ctmc::CtmcBuilder;
use nlft_reliability::faulttree::FaultTreeBuilder;
use nlft_reliability::linalg::Matrix;
use nlft_sim::time::SimDuration;
use nlft_testkit::bench::Bench;
use std::hint::black_box;

fn bench_linalg() {
    let mut b = Bench::new("linalg");
    for n in [5usize, 10, 20] {
        let mut q = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    q.set(i, j, 0.01 * ((i + j) % 7 + 1) as f64);
                }
            }
        }
        for i in 0..n {
            let row: f64 = (0..n).filter(|&j| j != i).map(|j| q.get(i, j)).sum();
            q.set(i, i, -row);
        }
        {
            let scaled = q.scale(1e5);
            b.bench(&format!("expm_{n}x{n}_stiff"), || black_box(scaled.expm()));
        }
        {
            let rhs = Matrix::identity(n);
            b.bench(&format!("lu_solve_{n}x{n}"), || {
                black_box(
                    q.sub(&Matrix::identity(n))
                        .solve(&rhs)
                        .expect("nonsingular"),
                )
            });
        }
    }
    b.finish();
}

fn bench_ctmc() {
    let mut b5 = CtmcBuilder::new();
    let states: Vec<_> = (0..5).map(|i| b5.state(format!("s{i}"))).collect();
    for i in 0..4 {
        b5.transition(states[i], states[i + 1], 1e-4 * (i + 1) as f64)
            .unwrap();
        b5.transition(states[i + 1], states[i], 1e3).unwrap();
    }
    let chain = b5.build();
    let pi0 = [1.0, 0.0, 0.0, 0.0, 0.0];

    let mut b = Bench::new("ctmc");
    b.bench("transient_5_states_stiff_1y", || {
        black_box(chain.transient(black_box(&pi0), 8760.0).expect("valid"))
    });
    b.bench("mttf_5_states", || {
        chain.mttf(black_box(&pi0), &[states[4]]).ok()
    });
    b.finish();
}

fn bench_faulttree() {
    let mut b = Bench::new("faulttree");
    b.bench("build_8of16_bdd", || {
        let mut ft = FaultTreeBuilder::new();
        let events: Vec<_> = (0..16).map(|i| ft.basic_event(format!("e{i}"))).collect();
        let top = ft.k_of_n(8, events);
        black_box(ft.build(top))
    });
    let mut ft = FaultTreeBuilder::new();
    let events: Vec<_> = (0..16).map(|i| ft.basic_event(format!("e{i}"))).collect();
    let top = ft.k_of_n(8, events);
    let tree = ft.build(top);
    let probs = [0.01; 16];
    b.bench("evaluate_8of16", || {
        black_box(tree.top_probability(black_box(&probs)))
    });
    b.finish();
}

fn bench_machine() {
    let pid = workloads::pid_controller();
    let (_, cycles) = pid.golden_run(&[1000, 900]);

    let mut b = Bench::new("machine");
    b.bench_throughput("pid_single_run", cycles, || {
        let mut m = pid.instantiate();
        m.set_input(0, 1000);
        m.set_input(1, 900);
        black_box(m.run(100_000))
    });
    b.finish();
}

fn bench_tem() {
    let pid = workloads::pid_controller();
    let (_, cycles) = pid.golden_run(&[1000, 900]);
    let tem = TemExecutor::new(TemConfig::with_budget(cycles * 2));

    let mut b = Bench::new("tem");
    let mut m = pid.instantiate();
    b.bench("clean_job_two_copies", || {
        black_box(tem.run_job(&mut m, &pid, &[1000, 900], None))
    });
    b.finish();
}

fn bench_sched() {
    let set: TaskSet = [
        (1u32, 0u32, 5_000u64, 500u64),
        (2, 1, 10_000, 1_000),
        (3, 2, 20_000, 3_000),
    ]
    .into_iter()
    .map(|(id, prio, period, wcet)| {
        TaskSpecBuilder::new(TaskId(id), format!("t{id}"))
            .period(SimDuration::from_micros(period))
            .wcet(SimDuration::from_micros(wcet))
            .priority(Priority(prio))
            .criticality(Criticality::Critical)
            .build()
            .expect("valid")
    })
    .collect();

    let mut b = Bench::new("sched");
    let sim = FpSimulator::new(set.clone());
    b.bench("fp_sim_one_second", || {
        black_box(sim.run(SimDuration::from_secs(1)))
    });
    b.finish();
}

fn bench_preemptive() {
    let mut b = Bench::new("preemptive");
    b.bench("two_tasks_10k_cycles", || {
        let mut exec = PreemptiveExecutive::new(2);
        let mk = |id: u32, prio: u32, period: u64, budget: u64| ResidentTask {
            id: TaskId(id),
            name: format!("t{id}"),
            period_cycles: period,
            deadline_cycles: period,
            budget_cycles: budget,
            priority: Priority(prio),
            inputs: vec![],
            output_port: 0,
            critical: false,
        };
        exec.add_task(mk(1, 0, 400, 150), "ldi r0, 5\nout r0, port0\nhalt")
            .expect("loads");
        exec.add_task(
            mk(2, 1, 2_000, 1_500),
            "    ldi r0, 0
                 ldi r1, 150
                 ldi r2, 1
             loop:
                 add r0, r0, r2
                 sub r1, r1, r2
                 jnz loop
                 out r0, port0
                 halt",
        )
        .expect("loads");
        black_box(exec.run(10_000))
    });
    b.finish();
}

fn bench_net() {
    let mut b = Bench::new("net");
    {
        let mut bus = Bus::new(BusConfig::round_robin(6, 2));
        b.bench("tdma_cycle_6_nodes", || {
            bus.start_cycle();
            for n in 0..6 {
                bus.transmit_static(NodeId(n), vec![1, 2, 3, 4])
                    .expect("own slot");
            }
            black_box(bus.finish_cycle())
        });
    }
    {
        let mut cluster = BbwCluster::new();
        b.bench("bbw_cluster_cycle", || black_box(cluster.run(1, |_| 1000)));
    }
    b.finish();
}

fn main() {
    bench_linalg();
    bench_ctmc();
    bench_faulttree();
    bench_machine();
    bench_tem();
    bench_sched();
    bench_preemptive();
    bench_net();
}
