//! Scenario-DSL pipeline benchmarked end to end: parsing a zoo file,
//! compiling + running a small storm scenario single- and multi-threaded,
//! and a full-zoo sweep; full mode re-runs every zoo scenario against its
//! golden pin and writes `SCENARIO.json` (per-scenario digests) under
//! `<target>/testkit/`.

use std::hint::black_box;
use std::path::PathBuf;

use nlft_bbw::scenario::{check_accept, run_scenario, ScenarioOutcome};
use nlft_reliability::scenario::{parse_scenario, ScenarioSpec};
use nlft_testkit::bench::{artifact_path, Bench};
use nlft_testkit::json::Json;

fn zoo_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("scenarios")
}

/// Every zoo scenario source, sorted by file name for determinism.
fn zoo_sources() -> Vec<String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(zoo_dir())
        .expect("scenarios/ exists at the workspace root")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| std::fs::read_to_string(p).expect("zoo file readable"))
        .collect()
}

fn by_name(specs: &[ScenarioSpec], name: &str) -> ScenarioSpec {
    specs
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario `{name}` in the zoo"))
        .clone()
}

fn report(outcomes: &[ScenarioOutcome]) -> Json {
    Json::obj(vec![
        ("scenarios", Json::from(outcomes.len() as u64)),
        (
            "digests",
            Json::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        Json::obj(vec![
                            ("name", Json::Str(o.name.clone())),
                            ("trials", Json::UInt(o.trials)),
                            ("digest", Json::UInt(u64::from(o.digest))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let mut b = Bench::new("scenario");
    let sources = zoo_sources();
    let specs: Vec<ScenarioSpec> = sources
        .iter()
        .map(|s| parse_scenario(s).expect("zoo scenario parses"))
        .collect();
    let storm = by_name(&specs, "net-storm-nominal");
    let cluster = by_name(&specs, "emi-burst-under-braking");

    b.bench("parse_whole_zoo", || {
        let parsed: Vec<ScenarioSpec> = sources
            .iter()
            .map(|s| parse_scenario(black_box(s)).expect("parses"))
            .collect();
        black_box(parsed.len())
    });
    b.bench("net_storm_nominal_1_thread", || {
        black_box(run_scenario(black_box(&storm), 1).expect("runs"))
    });
    b.bench("net_storm_nominal_5_threads", || {
        black_box(run_scenario(black_box(&storm), 5).expect("runs"))
    });
    b.bench("cluster_emi_burst_1_thread", || {
        black_box(run_scenario(black_box(&cluster), 1).expect("runs"))
    });

    if b.is_full() {
        let mut outcomes = Vec::with_capacity(specs.len());
        for spec in &specs {
            let outcome = run_scenario(spec, 2).expect("zoo scenario runs");
            let failures = check_accept(spec, &outcome);
            assert!(failures.is_empty(), "{}: {failures:?}", spec.name);
            outcomes.push(outcome);
        }
        let path = artifact_path("SCENARIO.json");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, report(&outcomes).to_string()) {
            Ok(()) => println!("scenario report written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    b.finish();
}
