//! Value-domain storm campaign against the executable BBW cluster,
//! benchmarked single- and multi-threaded; full mode also runs larger
//! single-fault and combined-storm campaigns and writes
//! `VALUE_DOMAIN.json` (outcome fractions, measured detection coverage,
//! braking-safety metrics, command-path counters) under
//! `<target>/testkit/`.

use nlft_bbw::{run_value_domain_campaign, ValueDomainCampaignConfig, ValueDomainCampaignResult};
use nlft_testkit::bench::{artifact_path, Bench};
use nlft_testkit::json::Json;
use std::hint::black_box;

fn single_fault(trials: u64, threads: usize) -> ValueDomainCampaignResult {
    let mut config = ValueDomainCampaignConfig::single_fault(trials, 0x5EA1_2005);
    config.threads = threads;
    run_value_domain_campaign(&config)
}

fn combined_storm(trials: u64, threads: usize) -> ValueDomainCampaignResult {
    let mut config = ValueDomainCampaignConfig::combined_storm(trials, 0x5EA1_2006);
    config.threads = threads;
    run_value_domain_campaign(&config)
}

fn report(result: &ValueDomainCampaignResult) -> Json {
    let o = &result.outcomes;
    let frac = |n: u64| Json::Num(n as f64 / o.trials as f64);
    Json::obj([
        ("trials", Json::UInt(o.trials)),
        ("masked", frac(o.masked)),
        ("detected", frac(o.detected)),
        ("service_lost", frac(o.service_lost)),
        ("undetected", frac(o.undetected)),
        ("detection_coverage", Json::Num(result.detection_coverage())),
        (
            "worst_total_force_deficit",
            Json::UInt(u64::from(result.worst_total_force_deficit)),
        ),
        (
            "worst_left_right_imbalance",
            Json::UInt(u64::from(result.worst_left_right_imbalance)),
        ),
        ("seal_rejects", Json::UInt(result.seal_rejects)),
        ("stale_rejects", Json::UInt(result.stale_rejects)),
        (
            "held_setpoint_cycles",
            Json::UInt(result.held_setpoint_cycles),
        ),
        ("sensor_demotions", Json::UInt(result.sensor_demotions)),
        ("actuator_trips", Json::UInt(result.actuator_trips)),
        (
            "undetected_value_failures",
            Json::UInt(result.undetected_value_failures),
        ),
    ])
}

fn main() {
    let mut b = Bench::new("value_domain");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    b.bench("single_fault_20_trials_1_thread", || {
        black_box(single_fault(black_box(20), 1))
    });
    b.bench("combined_storm_20_trials_1_thread", || {
        black_box(combined_storm(black_box(20), 1))
    });
    b.bench("combined_storm_20_trials_parallel", || {
        black_box(combined_storm(black_box(20), threads))
    });

    if b.is_full() {
        let coverage = single_fault(200, threads);
        let storm = combined_storm(200, threads);
        let json = Json::obj([
            ("single_fault", report(&coverage)),
            ("combined_storm", report(&storm)),
        ]);
        let path = artifact_path("VALUE_DOMAIN.json");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, json.to_string()) {
            Ok(()) => println!("value-domain report written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    b.finish();
}
