//! The campaign engine benchmarked in isolation: per-trial scheduling
//! overhead on empty trials (sequential reference vs the work-stealing
//! executor, thread spawn included), steal behaviour under skewed
//! per-trial costs, and the streaming block-merge fold that keeps
//! memory O(workers); full mode re-runs the skewed campaign and writes
//! its scheduling telemetry (steal rate, pending-block high-water
//! mark) to `ENGINE.json` under `<target>/testkit/`.

use std::hint::black_box;

use nlft_engine::{
    indexed_campaign, run_campaign, run_sequential, ClosureCampaign, EngineConfig, EngineReport,
};
use nlft_sim::stats::Histogram;
use nlft_testkit::bench::{artifact_path, Bench};
use nlft_testkit::json::Json;

const EMPTY_TRIALS: u64 = 10_000;
const SKEWED_TRIALS: u64 = 2_048;
const SKEW_BLOCK: u64 = 8;
const MERGE_BLOCKS: usize = 256;

/// Three rounds of xorshift per unit of `rounds` — deterministic spin
/// work whose cost scales linearly with `rounds`.
fn spin(mut x: u64, rounds: u32) -> u64 {
    for _ in 0..rounds {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// A campaign whose trial body is a single wrapping add: everything the
/// benchmark measures is engine overhead (block partition, deque
/// traffic, fold ordering), not trial work.
#[allow(clippy::type_complexity)]
fn empty_campaign() -> ClosureCampaign<
    u64,
    impl Fn() -> u64,
    impl Fn(u64, &nlft_engine::TrialCtx<'_>, &mut u64),
    impl Fn(&mut u64, u64),
> {
    indexed_campaign(
        "bench-engine-empty",
        "unused",
        EMPTY_TRIALS,
        || 0u64,
        |trial, _ctx, acc: &mut u64| *acc = acc.wrapping_add(trial),
        |into, from| *into = into.wrapping_add(from),
    )
}

/// A campaign with a 200:1 cost skew aligned against the round-robin
/// deal: blocks are dealt to deques by `block_index % workers`, so with
/// [`SKEW_BLOCK`]-sized blocks and four workers, every heavy block
/// (`block_index % 4 == 0`) lands on worker 0's deque — the other three
/// run dry and must steal from its back.
#[allow(clippy::type_complexity)]
fn skewed_campaign() -> ClosureCampaign<
    u64,
    impl Fn() -> u64,
    impl Fn(u64, &nlft_engine::TrialCtx<'_>, &mut u64),
    impl Fn(&mut u64, u64),
> {
    indexed_campaign(
        "bench-engine-skewed",
        "unused",
        SKEWED_TRIALS,
        || 0u64,
        |trial, _ctx, acc: &mut u64| {
            let rounds = if (trial / SKEW_BLOCK).is_multiple_of(4) {
                10_000
            } else {
                50
            };
            *acc ^= spin(trial | 1, rounds);
        },
        |into, from| *into ^= from,
    )
}

/// One block-partial accumulator as the executor's fold loop sees it:
/// a populated histogram whose counters the streaming merge folds in.
fn block_partials() -> Vec<Histogram> {
    (0..MERGE_BLOCKS)
        .map(|block| {
            let mut h = Histogram::new(0.0, 100.0, 32);
            for i in 0..64u64 {
                let x = spin(block as u64 * 64 + i + 1, 1) % 1_000;
                h.record(x as f64 / 10.0);
            }
            h
        })
        .collect()
}

fn telemetry(report: &EngineReport) -> Json {
    Json::obj(vec![
        ("trials", Json::UInt(report.trials)),
        ("completed", Json::UInt(report.completed)),
        ("blocks", Json::UInt(report.blocks)),
        ("steals", Json::UInt(report.steals)),
        ("workers", Json::UInt(report.workers as u64)),
        (
            "max_pending_blocks",
            Json::UInt(report.max_pending_blocks as u64),
        ),
    ])
}

fn main() {
    let mut b = Bench::new("engine");

    // The sequential twin and the threaded executor run the identical
    // block partition and fold, so their accumulators must agree
    // bit-for-bit — asserted here on every iteration for free.
    let seq_acc = run_sequential(&empty_campaign(), &EngineConfig::default()).acc;

    b.bench_throughput("empty_trials_sequential", EMPTY_TRIALS, || {
        let run = run_sequential(black_box(&empty_campaign()), &EngineConfig::default());
        assert_eq!(run.acc, seq_acc);
        black_box(run.acc)
    });
    b.bench_throughput("empty_trials_4_workers", EMPTY_TRIALS, || {
        let run = run_campaign(black_box(empty_campaign()), &EngineConfig::with_workers(4));
        assert_eq!(run.acc, seq_acc, "executor must match sequential twin");
        black_box(run.acc)
    });
    let skew_cfg = EngineConfig {
        workers: 4,
        block_size: Some(SKEW_BLOCK),
        ..EngineConfig::default()
    };
    b.bench_throughput("skewed_trials_4_workers", SKEWED_TRIALS, || {
        let run = run_campaign(black_box(skewed_campaign()), &skew_cfg);
        black_box((run.acc, run.report.steals))
    });
    b.bench_with_setup("streaming_merge_256_blocks", block_partials, |partials| {
        let mut folded = Histogram::new(0.0, 100.0, 32);
        for partial in &partials {
            folded.merge(partial);
        }
        black_box(folded.count())
    });

    if b.is_full() {
        let run = run_campaign(skewed_campaign(), &skew_cfg);
        let path = artifact_path("ENGINE.json");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, telemetry(&run.report).to_string()) {
            Ok(()) => println!("engine telemetry written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    b.finish();
}
