//! Figure 13 — subsystem reliabilities (CU duplex, wheel subsystem in full
//! and degraded mode), printed and benchmarked.

use nlft_bbw::analytic::{central_unit, wheel_subsystem, Functionality, Policy, HOURS_PER_YEAR};
use nlft_bbw::params::BbwParams;
use nlft_bench::{fig13, report};
use nlft_reliability::model::ReliabilityModel;
use nlft_testkit::bench::Bench;
use std::hint::black_box;

fn print_figure() {
    print!("{}", report::heading("Figure 13 — regenerated series"));
    let series: Vec<(String, Vec<(f64, f64)>)> = fig13::generate()
        .into_iter()
        .map(|c| (c.label, c.points))
        .collect();
    print!("{}", report::series_table("t_hours", &series));
}

fn main() {
    let mut b = Bench::new("fig13");
    if b.is_full() {
        print_figure();
    }
    let params = BbwParams::paper();

    {
        let cu = central_unit(&params, Policy::Nlft);
        b.bench("central_unit_transient", || {
            black_box(cu.reliability(black_box(HOURS_PER_YEAR)))
        });
    }
    {
        let wn = wheel_subsystem(&params, Policy::Nlft, Functionality::Degraded);
        b.bench("wheel_subsystem_transient", || {
            black_box(wn.reliability(black_box(HOURS_PER_YEAR)))
        });
    }
    {
        let wn = wheel_subsystem(&params, Policy::Nlft, Functionality::Degraded);
        b.bench("subsystem_mttf_exact", || {
            black_box(wn.mttf().expect("finite"))
        });
    }
    b.bench("full_figure_generation", || black_box(fig13::generate()));
    b.finish();
}
