//! Figure 13 — subsystem reliabilities (CU duplex, wheel subsystem in full
//! and degraded mode), printed and benchmarked.

use criterion::{criterion_group, criterion_main, Criterion};
use nlft_bbw::analytic::{central_unit, wheel_subsystem, Functionality, Policy, HOURS_PER_YEAR};
use nlft_bbw::params::BbwParams;
use nlft_bench::{fig13, report};
use nlft_reliability::model::ReliabilityModel;
use std::hint::black_box;

fn print_figure() {
    print!("{}", report::heading("Figure 13 — regenerated series"));
    let series: Vec<(String, Vec<(f64, f64)>)> = fig13::generate()
        .into_iter()
        .map(|c| (c.label, c.points))
        .collect();
    print!("{}", report::series_table("t_hours", &series));
}

fn bench(c: &mut Criterion) {
    print_figure();
    let params = BbwParams::paper();

    let mut group = c.benchmark_group("fig13");
    group.bench_function("central_unit_transient", |b| {
        let cu = central_unit(&params, Policy::Nlft);
        b.iter(|| black_box(cu.reliability(black_box(HOURS_PER_YEAR))))
    });
    group.bench_function("wheel_subsystem_transient", |b| {
        let wn = wheel_subsystem(&params, Policy::Nlft, Functionality::Degraded);
        b.iter(|| black_box(wn.reliability(black_box(HOURS_PER_YEAR))))
    });
    group.bench_function("subsystem_mttf_exact", |b| {
        let wn = wheel_subsystem(&params, Policy::Nlft, Functionality::Degraded);
        b.iter(|| black_box(wn.mttf().expect("finite")))
    });
    group.bench_function("full_figure_generation", |b| {
        b.iter(|| black_box(fig13::generate()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
