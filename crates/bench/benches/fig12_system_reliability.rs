//! Figure 12 — BBW system reliability over one year (4 configurations).
//!
//! Prints the regenerated figure data once, then benchmarks the analytic
//! pipeline that produces it (Markov transient solves + fault-tree
//! composition + numeric MTTF).

use nlft_bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
use nlft_bbw::params::BbwParams;
use nlft_bench::{fig12, report};
use nlft_reliability::model::ReliabilityModel;
use nlft_testkit::bench::Bench;
use std::hint::black_box;

fn print_figure() {
    print!("{}", report::heading("Figure 12 — regenerated series"));
    let curves = fig12::generate();
    let series: Vec<(String, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|c| (c.label.clone(), c.points.clone()))
        .collect();
    print!("{}", report::series_table("t_hours", &series));
    for c in &curves {
        println!("MTTF {:<16} {:.3} years", c.label, c.mttf_years);
    }
}

fn main() {
    let mut b = Bench::new("fig12");
    if b.is_full() {
        print_figure();
    }
    let params = BbwParams::paper();

    b.bench("build_system_model", || {
        black_box(BbwSystem::new(
            black_box(&params),
            Policy::Nlft,
            Functionality::Degraded,
        ))
    });
    {
        let sys = BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded);
        b.bench("reliability_one_point", || {
            black_box(sys.reliability(black_box(HOURS_PER_YEAR)))
        });
    }
    {
        let sys = BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded);
        let grid: Vec<f64> = (0..=12).map(|m| m as f64 * 730.0).collect();
        b.bench("reliability_series_13_points", || {
            black_box(sys.reliability_series(black_box(&grid)))
        });
    }
    b.bench_with_setup(
        "mttf_numeric",
        || BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded),
        |sys| black_box(sys.mttf_hours()),
    );
    b.bench("full_figure_generation", || black_box(fig12::generate()));
    b.finish();
}
