//! Figure 12 — BBW system reliability over one year (4 configurations).
//!
//! Prints the regenerated figure data once, then benchmarks the analytic
//! pipeline that produces it (Markov transient solves + fault-tree
//! composition + numeric MTTF).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nlft_bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
use nlft_bbw::params::BbwParams;
use nlft_bench::{fig12, report};
use nlft_reliability::model::ReliabilityModel;
use std::hint::black_box;

fn print_figure() {
    print!("{}", report::heading("Figure 12 — regenerated series"));
    let curves = fig12::generate();
    let series: Vec<(String, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|c| (c.label.clone(), c.points.clone()))
        .collect();
    print!("{}", report::series_table("t_hours", &series));
    for c in &curves {
        println!("MTTF {:<16} {:.3} years", c.label, c.mttf_years);
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let params = BbwParams::paper();

    let mut group = c.benchmark_group("fig12");
    group.bench_function("build_system_model", |b| {
        b.iter(|| {
            black_box(BbwSystem::new(
                black_box(&params),
                Policy::Nlft,
                Functionality::Degraded,
            ))
        })
    });
    group.bench_function("reliability_one_point", |b| {
        let sys = BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded);
        b.iter(|| black_box(sys.reliability(black_box(HOURS_PER_YEAR))))
    });
    group.bench_function("reliability_series_13_points", |b| {
        let sys = BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded);
        let grid: Vec<f64> = (0..=12).map(|m| m as f64 * 730.0).collect();
        b.iter(|| black_box(sys.reliability_series(black_box(&grid))))
    });
    group.bench_function("mttf_numeric", |b| {
        b.iter_batched(
            || BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded),
            |sys| black_box(sys.mttf_hours()),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("full_figure_generation", |b| {
        b.iter(|| black_box(fig12::generate()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
