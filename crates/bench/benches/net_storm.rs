//! Network fault-storm campaign against the executable BBW cluster,
//! benchmarked single- and multi-threaded; full mode also runs a larger
//! campaign and writes `NET_STORM.json` (outcome fractions, measured
//! coverage parameters, reintegration latency percentiles) under
//! `<target>/testkit/`.

use nlft_bbw::{run_net_storm_campaign, NetStormCampaignConfig, NetStormCampaignResult};
use nlft_testkit::bench::{artifact_path, Bench};
use nlft_testkit::json::Json;
use std::hint::black_box;

fn campaign(trials: u64, threads: usize) -> NetStormCampaignResult {
    let mut config = NetStormCampaignConfig::new(trials, 0x5702_2005);
    config.threads = threads;
    run_net_storm_campaign(&config)
}

fn report(result: &NetStormCampaignResult) -> Json {
    let o = &result.outcomes;
    let frac = |n: u64| Json::Num(n as f64 / o.trials as f64);
    let latency = |pct: u32| {
        result
            .reintegration_percentile(pct)
            .map_or(Json::Null, |v| Json::UInt(u64::from(v)))
    };
    Json::obj([
        ("trials", Json::UInt(o.trials)),
        ("unaffected", frac(o.unaffected)),
        ("omission_only", frac(o.omission_only)),
        ("degraded_episode", frac(o.degraded_episode)),
        ("service_lost", frac(o.service_lost)),
        ("split_membership", frac(o.split_membership)),
        ("injected_faults", Json::UInt(result.injected.total())),
        ("crc_reject_rate", Json::Num(result.crc_reject_rate())),
        (
            "guardian_block_rate",
            Json::Num(result.guardian_block_rate()),
        ),
        (
            "masquerade_reject_rate",
            Json::Num(result.masquerade_reject_rate()),
        ),
        ("reintegration_p50_cycles", latency(50)),
        ("reintegration_p95_cycles", latency(95)),
    ])
}

fn main() {
    let mut b = Bench::new("net_storm");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    b.bench("campaign_20_trials_1_thread", || {
        black_box(campaign(black_box(20), 1))
    });
    b.bench("campaign_20_trials_parallel", || {
        black_box(campaign(black_box(20), threads))
    });

    if b.is_full() {
        let result = campaign(200, threads);
        let path = artifact_path("NET_STORM.json");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, report(&result).to_string()) {
            Ok(()) => println!("storm report written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    b.finish();
}
