//! Diagnosis-and-recovery campaign benchmarks: the α-count node-level
//! recovery campaign single- and multi-threaded, plus the analytic
//! escalation-chain solve. Full mode runs a larger campaign and writes
//! `DIAGNOSIS.json` (verdict fractions, false-retirement Wilson interval,
//! detection/retirement latencies, analytic DTMC cross-check) under
//! `<target>/testkit/`.

use nlft_core::campaign::{run_recovery_campaign, RecoveryCampaignConfig, RecoveryCampaignResult};
use nlft_core::diagnosis::escalation_chain;
use nlft_kernel::escalation::EscalationPolicy;
use nlft_reliability::dtmc::AbsorbingDtmc;
use nlft_sim::stats::Confidence;
use nlft_testkit::bench::{artifact_path, Bench};
use nlft_testkit::json::Json;
use std::hint::black_box;

fn campaign(trials: u64, threads: usize) -> RecoveryCampaignResult {
    let mut config = RecoveryCampaignConfig::new(trials, 0xD1A6_2005);
    config.threads = threads;
    run_recovery_campaign(&config)
}

fn analytic_retirement_slots(p_err: f64) -> f64 {
    let chain = escalation_chain(EscalationPolicy::default(), p_err);
    AbsorbingDtmc::new(chain.matrix.clone(), &chain.retired)
        .expect("ladder chain is absorbing")
        .expected_steps_to_absorption(chain.start)
        .expect("retirement reachable")
}

fn report(result: &RecoveryCampaignResult) -> Json {
    let c = &result.counts;
    let frac = |n: u64| Json::Num(n as f64 / result.trials as f64);
    let (fr_lo, fr_hi) = result.false_retirement.wilson_interval(Confidence::C95);
    Json::obj([
        ("trials", Json::UInt(result.trials)),
        ("masked_transient", frac(c.masked_transient)),
        ("recovered", frac(c.recovered)),
        ("retired", frac(c.retired)),
        ("false_retirement", frac(c.false_retirement)),
        ("missed_permanent", frac(c.missed_permanent)),
        ("unresolved", frac(c.unresolved)),
        (
            "false_retirement_rate",
            Json::Num(result.false_retirement.estimate()),
        ),
        ("false_retirement_wilson_lo", Json::Num(fr_lo)),
        ("false_retirement_wilson_hi", Json::Num(fr_hi)),
        (
            "detection_latency_jobs",
            Json::Num(result.detection_latency_jobs.mean()),
        ),
        (
            "retirement_latency_jobs",
            Json::Num(result.retirement_latency_jobs.mean()),
        ),
        ("restarts_total", Json::UInt(result.restarts_total)),
        (
            "undetected_wrong_jobs",
            Json::UInt(result.undetected_wrong_jobs),
        ),
        (
            "analytic_retirement_slots_p1",
            Json::Num(analytic_retirement_slots(1.0)),
        ),
    ])
}

fn main() {
    let mut b = Bench::new("diagnosis");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    b.bench("recovery_campaign_30_trials_1_thread", || {
        black_box(campaign(black_box(30), 1))
    });
    b.bench("recovery_campaign_30_trials_parallel", || {
        black_box(campaign(black_box(30), threads))
    });
    b.bench("escalation_chain_solve", || {
        black_box(analytic_retirement_slots(black_box(0.5)))
    });

    if b.is_full() {
        let result = campaign(400, threads);
        let path = artifact_path("DIAGNOSIS.json");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, report(&result).to_string()) {
            Ok(()) => println!("diagnosis report written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    b.finish();
}
