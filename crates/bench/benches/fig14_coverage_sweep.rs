//! Figure 14 — reliability after five hours for varying error-detection
//! coverage and transient fault rate, printed and benchmarked.

use criterion::{criterion_group, criterion_main, Criterion};
use nlft_bbw::analytic::{BbwSystem, Functionality, Policy};
use nlft_bbw::params::BbwParams;
use nlft_bench::{fig14, report};
use nlft_reliability::model::ReliabilityModel;
use std::hint::black_box;

fn print_figure() {
    print!("{}", report::heading("Figure 14 — regenerated series"));
    let series: Vec<(String, Vec<(f64, f64)>)> = fig14::generate()
        .into_iter()
        .map(|s| (format!("{} C_D={}", s.policy, s.coverage), s.points))
        .collect();
    print!("{}", report::series_table("lambda_t_multiplier", &series));
}

fn bench(c: &mut Criterion) {
    print_figure();

    let mut group = c.benchmark_group("fig14");
    group.bench_function("one_sweep_point", |b| {
        b.iter(|| {
            let p = BbwParams::paper()
                .with_coverage(black_box(0.999))
                .with_transient_multiplier(black_box(100.0));
            let sys = BbwSystem::new(&p, Policy::Nlft, Functionality::Degraded);
            black_box(sys.reliability(fig14::MISSION_HOURS))
        })
    });
    group.bench_function("full_sweep_56_points", |b| {
        b.iter(|| black_box(fig14::generate()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
