//! Figure 14 — reliability after five hours for varying error-detection
//! coverage and transient fault rate, printed and benchmarked.

use nlft_bbw::analytic::{BbwSystem, Functionality, Policy};
use nlft_bbw::params::BbwParams;
use nlft_bench::{fig14, report};
use nlft_reliability::model::ReliabilityModel;
use nlft_testkit::bench::Bench;
use std::hint::black_box;

fn print_figure() {
    print!("{}", report::heading("Figure 14 — regenerated series"));
    let series: Vec<(String, Vec<(f64, f64)>)> = fig14::generate()
        .into_iter()
        .map(|s| (format!("{} C_D={}", s.policy, s.coverage), s.points))
        .collect();
    print!("{}", report::series_table("lambda_t_multiplier", &series));
}

fn main() {
    let mut b = Bench::new("fig14");
    if b.is_full() {
        print_figure();
    }

    b.bench("one_sweep_point", || {
        let p = BbwParams::paper()
            .with_coverage(black_box(0.999))
            .with_transient_multiplier(black_box(100.0));
        let sys = BbwSystem::new(&p, Policy::Nlft, Functionality::Degraded);
        black_box(sys.reliability(fig14::MISSION_HOURS))
    });
    b.bench("full_sweep_56_points", || black_box(fig14::generate()));
    b.finish();
}
