//! Monte-Carlo cross-validation of the Figure 12 analytic curves,
//! printed and benchmarked.

use nlft_bbw::analytic::{Functionality, Policy};
use nlft_bbw::montecarlo::{run_monte_carlo, MonteCarloConfig};
use nlft_bench::{report, xcheck};
use nlft_testkit::bench::Bench;
use std::hint::black_box;

fn print_table() {
    print!(
        "{}",
        report::heading("Monte-Carlo cross-check — regenerated")
    );
    println!(
        "{:<16}{:>10}{:>12}{:>12}{:>24}",
        "config", "t (h)", "analytic", "MC", "95% CI"
    );
    for row in xcheck::generate(5_000, 0x5EED) {
        println!(
            "{:<16}{:>10.0}{:>12.4}{:>12.4}      [{:.4}, {:.4}]",
            row.label, row.t_hours, row.analytic, row.monte_carlo, row.ci.0, row.ci.1
        );
    }
}

fn main() {
    let mut b = Bench::new("montecarlo");
    if b.is_full() {
        print_table();
    }

    b.bench("100_replications_one_year", || {
        let cfg =
            MonteCarloConfig::one_year(Policy::Nlft, Functionality::Degraded, 100, black_box(11));
        black_box(run_monte_carlo(&cfg))
    });
    b.finish();
}
