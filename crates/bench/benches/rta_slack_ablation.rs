//! Fault-tolerant RTA slack ablation (§2.8): how much slack buys how much
//! fault resilience, printed and benchmarked.

use nlft_bench::{report, rta};
use nlft_kernel::analysis::{
    analyse_with_faults, min_tolerable_fault_interval, tem_transform, TemCosts,
};
use nlft_sim::time::SimDuration;
use nlft_testkit::bench::Bench;
use std::hint::black_box;

fn print_table() {
    print!("{}", report::heading("FT-RTA slack ablation — regenerated"));
    println!(
        "{:>14}{:>18}{:>26}",
        "utilisation", "TEM utilisation", "min fault interval (us)"
    );
    for row in rta::generate() {
        println!(
            "{:>14.2}{:>18.2}{:>26}",
            row.utilisation,
            row.tem_utilisation,
            row.min_fault_interval_us
                .map(|v| v.to_string())
                .unwrap_or_else(|| "unschedulable".to_string())
        );
    }
}

fn main() {
    let mut b = Bench::new("rta");
    if b.is_full() {
        print_table();
    }
    let costs = TemCosts::nominal();
    let set = tem_transform(&rta::task_set(0.30), &costs);

    b.bench("ft_analysis_three_tasks", || {
        black_box(analyse_with_faults(
            black_box(&set),
            SimDuration::from_millis(5),
            &costs,
        ))
    });
    b.bench("min_fault_interval_search", || {
        black_box(min_tolerable_fault_interval(
            black_box(&set),
            &costs,
            SimDuration::from_micros(10),
        ))
    });
    b.bench("full_ablation", || black_box(rta::generate()));
    b.finish();
}
