//! Table 1 — error-detection mechanism matrix and parameter estimation
//! from a fault-injection campaign, printed and benchmarked.

use nlft_bench::{report, table1};
use nlft_core::campaign::{run_campaign, CampaignConfig};
use nlft_core::policy::NodePolicy;
use nlft_testkit::bench::Bench;
use std::hint::black_box;

fn print_table() {
    print!(
        "{}",
        report::heading("Table 1 — regenerated detection matrix")
    );
    for policy in [NodePolicy::LightweightNlft, NodePolicy::FailSilent] {
        let result = table1::generate(5_000, 0x7AB1E, policy);
        println!("policy: {policy}");
        print!("{}", result.matrix.render_table());
        println!("{result}\n");
    }
}

fn main() {
    let mut b = Bench::new("table1");
    if b.is_full() {
        print_table();
    }

    for policy in [NodePolicy::LightweightNlft, NodePolicy::FailSilent] {
        b.bench(&format!("campaign_100_trials_{policy}"), || {
            let cfg = CampaignConfig::new(100, black_box(7), policy);
            black_box(run_campaign(&cfg))
        });
    }
    b.finish();
}
