//! Table 1 — error-detection mechanism matrix and parameter estimation
//! from a fault-injection campaign, printed and benchmarked.

use criterion::{criterion_group, criterion_main, Criterion};
use nlft_bench::{report, table1};
use nlft_core::campaign::{run_campaign, CampaignConfig};
use nlft_core::policy::NodePolicy;
use std::hint::black_box;

fn print_table() {
    print!("{}", report::heading("Table 1 — regenerated detection matrix"));
    for policy in [NodePolicy::LightweightNlft, NodePolicy::FailSilent] {
        let result = table1::generate(5_000, 0x7AB1E, policy);
        println!("policy: {policy}");
        print!("{}", result.matrix.render_table());
        println!("{result}\n");
    }
}

fn bench(c: &mut Criterion) {
    print_table();

    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    for policy in [NodePolicy::LightweightNlft, NodePolicy::FailSilent] {
        group.bench_function(format!("campaign_100_trials_{policy}"), |b| {
            b.iter(|| {
                let cfg = CampaignConfig::new(100, black_box(7), policy);
                black_box(run_campaign(&cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
