//! Plain-text and CSV rendering of experiment results.
//!
//! The harness binary prints human-readable tables; CSV output feeds
//! external plotting. Both renderers are deliberately dependency-free.

use std::fmt::Write as _;

/// Renders a labelled series set as an aligned text table:
/// first column = x values, one column per series.
///
/// # Panics
///
/// Panics if the series have differing lengths or mismatched x values.
pub fn series_table(x_label: &str, series: &[(String, Vec<(f64, f64)>)]) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let n = series[0].1.len();
    for (name, pts) in series {
        assert_eq!(pts.len(), n, "series `{name}` has a different length");
    }
    let mut out = String::new();
    let _ = write!(out, "{x_label:>12}");
    for (name, _) in series {
        let _ = write!(out, "{name:>18}");
    }
    out.push('\n');
    for i in 0..n {
        let x = series[0].1[i].0;
        let _ = write!(out, "{x:>12.1}");
        for (name, pts) in series {
            assert!(
                (pts[i].0 - x).abs() < 1e-9,
                "series `{name}` x values diverge at row {i}"
            );
            let _ = write!(out, "{:>18.6}", pts[i].1);
        }
        out.push('\n');
    }
    out
}

/// Renders the same data as CSV (header row, then one row per x).
///
/// # Panics
///
/// Panics under the same conditions as [`series_table`].
pub fn series_csv(x_label: &str, series: &[(String, Vec<(f64, f64)>)]) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let n = series[0].1.len();
    let mut out = String::new();
    let _ = write!(out, "{x_label}");
    for (name, pts) in series {
        assert_eq!(pts.len(), n, "series `{name}` has a different length");
        let _ = write!(out, ",{}", name.replace(',', ";"));
    }
    out.push('\n');
    for i in 0..n {
        let _ = write!(out, "{}", series[0].1[i].0);
        for (_, pts) in series {
            let _ = write!(out, ",{}", pts[i].1);
        }
        out.push('\n');
    }
    out
}

/// Formats a horizontal rule + section heading for the harness output.
pub fn heading(title: &str) -> String {
    format!("\n{}\n{title}\n{}\n", "=".repeat(72), "-".repeat(72))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(String, Vec<(f64, f64)>)> {
        vec![
            ("a".to_string(), vec![(0.0, 1.0), (1.0, 0.5)]),
            ("b".to_string(), vec![(0.0, 1.0), (1.0, 0.25)]),
        ]
    }

    #[test]
    fn table_contains_all_values() {
        let t = series_table("t", &sample());
        assert!(t.contains("0.500000"));
        assert!(t.contains("0.250000"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn csv_round_trips_structure() {
        let c = series_csv("t", &sample());
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "t,a,b");
        assert_eq!(lines[1], "0,1,1");
        assert_eq!(lines[2], "1,0.5,0.25");
    }

    #[test]
    fn csv_escapes_commas_in_names() {
        let s = vec![("x,y".to_string(), vec![(0.0, 1.0)])];
        let c = series_csv("t", &s);
        assert!(c.starts_with("t,x;y"));
    }

    #[test]
    #[should_panic(expected = "different length")]
    fn ragged_series_rejected() {
        let s = vec![
            ("a".to_string(), vec![(0.0, 1.0)]),
            ("b".to_string(), vec![(0.0, 1.0), (1.0, 1.0)]),
        ];
        series_table("t", &s);
    }

    #[test]
    fn heading_includes_title() {
        assert!(heading("Figure 12").contains("Figure 12"));
    }
}
