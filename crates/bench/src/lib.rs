//! # nlft-bench — experiment harnesses for every table and figure
//!
//! Each paper artifact has a generator function here returning plain data,
//! consumed by both the Criterion benches (`benches/`) and the printable
//! harness binary (`src/bin/paper_figures.rs`). Keeping generation in a
//! library makes every number in EXPERIMENTS.md reproducible from one
//! entry point.
//!
//! | artifact | generator |
//! |----------|-----------|
//! | Figure 12 (system reliability, 1 year) | [`fig12::generate`] |
//! | Figure 13 (subsystem reliability)      | [`fig13::generate`] |
//! | Figure 14 (coverage × fault-rate sweep)| [`fig14::generate`] |
//! | Table 1 (EDM detection matrix)         | [`table1::generate`] |
//! | Monte-Carlo cross-check (extension)    | [`xcheck::generate`] |
//! | FT-RTA slack ablation (extension)      | [`rta::generate`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod trajectory;

/// Figure 12: BBW system reliability over one year, four configurations.
pub mod fig12 {
    use nlft_bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
    use nlft_bbw::params::BbwParams;
    use nlft_reliability::model::ReliabilityModel;
    use nlft_testkit::json::{Json, ToJson};

    /// One configuration's curve.
    #[derive(Debug, Clone)]
    pub struct Curve {
        /// Configuration label, e.g. `"NLFT/degraded"`.
        pub label: String,
        /// `(t_hours, reliability)` points.
        pub points: Vec<(f64, f64)>,
        /// Mean time to failure in years.
        pub mttf_years: f64,
    }

    impl ToJson for Curve {
        fn to_json(&self) -> Json {
            Json::obj([
                ("label", Json::from(self.label.as_str())),
                ("points", points_json(&self.points)),
                ("mttf_years", Json::from(self.mttf_years)),
            ])
        }
    }

    pub(crate) fn points_json(points: &[(f64, f64)]) -> Json {
        Json::Arr(points.iter().map(|&(a, b)| Json::pair(a, b)).collect())
    }

    /// The four paper configurations in presentation order.
    pub fn configurations() -> [(&'static str, Policy, Functionality); 4] {
        [
            ("FS/full", Policy::FailSilent, Functionality::Full),
            ("NLFT/full", Policy::Nlft, Functionality::Full),
            ("FS/degraded", Policy::FailSilent, Functionality::Degraded),
            ("NLFT/degraded", Policy::Nlft, Functionality::Degraded),
        ]
    }

    /// Generates the Fig. 12 curves on a monthly grid.
    pub fn generate() -> Vec<Curve> {
        let params = BbwParams::paper();
        let grid: Vec<f64> = (0..=12).map(|m| m as f64 * HOURS_PER_YEAR / 12.0).collect();
        configurations()
            .into_iter()
            .map(|(label, policy, functionality)| {
                let sys = BbwSystem::new(&params, policy, functionality);
                Curve {
                    label: label.to_string(),
                    points: grid.iter().map(|&t| (t, sys.reliability(t))).collect(),
                    mttf_years: sys.mttf_hours() / HOURS_PER_YEAR,
                }
            })
            .collect()
    }
}

/// Figure 13: per-subsystem reliability over one year.
pub mod fig13 {
    use nlft_bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
    use nlft_bbw::params::BbwParams;
    use nlft_reliability::model::ReliabilityModel;
    use nlft_testkit::json::{Json, ToJson};

    /// One subsystem's curve.
    #[derive(Debug, Clone)]
    pub struct Curve {
        /// Subsystem label, e.g. `"CU duplex (NLFT)"`.
        pub label: String,
        /// `(t_hours, reliability)` points.
        pub points: Vec<(f64, f64)>,
    }

    impl ToJson for Curve {
        fn to_json(&self) -> Json {
            Json::obj([
                ("label", Json::from(self.label.as_str())),
                ("points", crate::fig12::points_json(&self.points)),
            ])
        }
    }

    /// Generates the Fig. 13 subsystem curves.
    pub fn generate() -> Vec<Curve> {
        let params = BbwParams::paper();
        let grid: Vec<f64> = (0..=12).map(|m| m as f64 * HOURS_PER_YEAR / 12.0).collect();
        let mut out = Vec::new();
        for (name, policy) in [("FS", Policy::FailSilent), ("NLFT", Policy::Nlft)] {
            let full = BbwSystem::new(&params, policy, Functionality::Full);
            let degraded = BbwSystem::new(&params, policy, Functionality::Degraded);
            out.push(Curve {
                label: format!("CU duplex ({name})"),
                points: grid
                    .iter()
                    .map(|&t| (t, full.central_unit().reliability(t)))
                    .collect(),
            });
            out.push(Curve {
                label: format!("WN full ({name})"),
                points: grid
                    .iter()
                    .map(|&t| (t, full.wheel_subsystem().reliability(t)))
                    .collect(),
            });
            out.push(Curve {
                label: format!("WN degraded ({name})"),
                points: grid
                    .iter()
                    .map(|&t| (t, degraded.wheel_subsystem().reliability(t)))
                    .collect(),
            });
        }
        out
    }
}

/// Figure 14: R(5 h) in degraded mode against the transient fault rate, for
/// several coverage values, FS vs NLFT.
pub mod fig14 {
    use nlft_bbw::analytic::{BbwSystem, Functionality, Policy};
    use nlft_bbw::params::BbwParams;
    use nlft_reliability::model::ReliabilityModel;
    use nlft_testkit::json::{Json, ToJson};

    /// Mission time the paper uses for this figure.
    pub const MISSION_HOURS: f64 = 5.0;

    /// One `(coverage, policy)` series over fault-rate multipliers.
    #[derive(Debug, Clone)]
    pub struct Series {
        /// Coverage `C_D` of the series.
        pub coverage: f64,
        /// `"FS"` or `"NLFT"`.
        pub policy: String,
        /// `(multiplier of λ_T, reliability at 5 h)` points.
        pub points: Vec<(f64, f64)>,
    }

    impl ToJson for Series {
        fn to_json(&self) -> Json {
            Json::obj([
                ("coverage", Json::from(self.coverage)),
                ("policy", Json::from(self.policy.as_str())),
                ("points", crate::fig12::points_json(&self.points)),
            ])
        }
    }

    /// Coverage values swept (paper shows a comparable spread).
    pub const COVERAGES: [f64; 4] = [0.9, 0.99, 0.999, 0.9999];

    /// Transient-rate multipliers swept (log scale).
    pub fn multipliers() -> Vec<f64> {
        (0..=6).map(|i| 10f64.powf(i as f64 * 0.5)).collect()
    }

    /// Generates the sweep.
    pub fn generate() -> Vec<Series> {
        let mut out = Vec::new();
        for &coverage in &COVERAGES {
            for (label, policy) in [("FS", Policy::FailSilent), ("NLFT", Policy::Nlft)] {
                let points = multipliers()
                    .into_iter()
                    .map(|m| {
                        let p = BbwParams::paper()
                            .with_coverage(coverage)
                            .with_transient_multiplier(m);
                        let sys = BbwSystem::new(&p, policy, Functionality::Degraded);
                        (m, sys.reliability(MISSION_HOURS))
                    })
                    .collect();
                out.push(Series {
                    coverage,
                    policy: label.to_string(),
                    points,
                });
            }
        }
        out
    }
}

/// Table 1: which mechanism detects which fault class, plus the parameter
/// estimates (`C_D`, `P_T`, `P_OM`, `P_FS`) from a fault-injection campaign.
pub mod table1 {
    use nlft_core::campaign::{run_campaign, CampaignConfig, CampaignResult};
    use nlft_core::policy::NodePolicy;

    /// Runs the campaign behind the table.
    pub fn generate(trials: u64, seed: u64, policy: NodePolicy) -> CampaignResult {
        let mut config = CampaignConfig::new(trials, seed, policy);
        config.threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        run_campaign(&config)
    }
}

/// Extension: Monte-Carlo cross-validation of the Fig. 12 curves.
pub mod xcheck {
    use nlft_bbw::analytic::{BbwSystem, Functionality, Policy};
    use nlft_bbw::montecarlo::{run_monte_carlo, MonteCarloConfig};
    use nlft_bbw::params::BbwParams;
    use nlft_reliability::model::ReliabilityModel;
    use nlft_testkit::json::{Json, ToJson};

    /// One comparison row.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Configuration label.
        pub label: String,
        /// Evaluation time (hours).
        pub t_hours: f64,
        /// Analytic reliability.
        pub analytic: f64,
        /// Monte-Carlo estimate.
        pub monte_carlo: f64,
        /// 95% Wilson band of the estimate.
        pub ci: (f64, f64),
    }

    impl ToJson for Row {
        fn to_json(&self) -> Json {
            Json::obj([
                ("label", Json::from(self.label.as_str())),
                ("t_hours", Json::from(self.t_hours)),
                ("analytic", Json::from(self.analytic)),
                ("monte_carlo", Json::from(self.monte_carlo)),
                ("ci", Json::pair(self.ci.0, self.ci.1)),
            ])
        }
    }

    /// Generates the cross-check table.
    pub fn generate(replications: u64, seed: u64) -> Vec<Row> {
        let grid = vec![2_000.0, 5_000.0, 8_760.0];
        let mut rows = Vec::new();
        for (label, policy, functionality) in [
            ("FS/degraded", Policy::FailSilent, Functionality::Degraded),
            ("NLFT/degraded", Policy::Nlft, Functionality::Degraded),
        ] {
            let mut cfg = MonteCarloConfig::one_year(policy, functionality, replications, seed);
            cfg.grid_hours = grid.clone();
            cfg.threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let mc = run_monte_carlo(&cfg);
            let analytic = BbwSystem::new(&BbwParams::paper(), policy, functionality);
            let rel = mc.reliability();
            let bands = mc.curve.confidence_band(Default::default());
            for (i, &t) in grid.iter().enumerate() {
                rows.push(Row {
                    label: label.to_string(),
                    t_hours: t,
                    analytic: analytic.reliability(t),
                    monte_carlo: rel[i],
                    ci: bands[i],
                });
            }
        }
        rows
    }
}

/// Extension: ablations of the design choices — ECC memory and reserved
/// recovery slack — measured end to end (campaign → parameters → system
/// reliability).
pub mod ablation {
    use nlft_bbw::analytic::{BbwSystem, Functionality, Policy, HOURS_PER_YEAR};
    use nlft_bbw::params::BbwParams;
    use nlft_core::campaign::{run_campaign, CampaignConfig};
    use nlft_core::policy::NodePolicy;
    use nlft_machine::fault::FaultSpace;
    use nlft_reliability::model::ReliabilityModel;
    use nlft_testkit::json::{Json, ToJson};

    /// One slack-pressure ablation row.
    #[derive(Debug, Clone)]
    pub struct SlackRow {
        /// Fraction of jobs with no recovery slack.
        pub tight_fraction: f64,
        /// Measured masking probability.
        pub p_t: f64,
        /// Measured omission probability.
        pub p_om: f64,
        /// System R(1 year) with the measured split plugged into the
        /// degraded-mode analytic model.
        pub r_one_year: f64,
    }

    impl ToJson for SlackRow {
        fn to_json(&self) -> Json {
            Json::obj([
                ("tight_fraction", Json::from(self.tight_fraction)),
                ("p_t", Json::from(self.p_t)),
                ("p_om", Json::from(self.p_om)),
                ("r_one_year", Json::from(self.r_one_year)),
            ])
        }
    }

    /// Sweeps deadline pressure: how much reliability does reserved slack
    /// buy? (§2.8's a-priori slack reservation, quantified end to end.)
    pub fn slack_pressure(trials: u64, seed: u64) -> Vec<SlackRow> {
        [0.0, 0.05, 0.1, 0.2, 0.5, 1.0]
            .into_iter()
            .map(|tight| {
                let mut cfg = CampaignConfig::new(trials, seed, NodePolicy::LightweightNlft);
                cfg.tight_deadline_fraction = tight;
                cfg.threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                let r = run_campaign(&cfg);
                let (p_t, p_om, p_fs) = (
                    r.counts.p_t().estimate(),
                    r.counts.p_om().estimate(),
                    r.counts.p_fs().estimate(),
                );
                let sum = (p_t + p_om + p_fs).max(1e-12);
                let mut params = BbwParams::paper();
                params.p_t = p_t / sum;
                params.p_om = p_om / sum;
                params.p_fs = p_fs / sum;
                let sys = BbwSystem::new(&params, Policy::Nlft, Functionality::Degraded);
                SlackRow {
                    tight_fraction: tight,
                    p_t,
                    p_om,
                    r_one_year: sys.reliability(HOURS_PER_YEAR),
                }
            })
            .collect()
    }

    /// One ECC ablation row.
    #[derive(Debug, Clone)]
    pub struct EccRow {
        /// Whether ECC was enabled.
        pub ecc: bool,
        /// Policy under test.
        pub policy: String,
        /// Measured coverage over a memory-inclusive fault space.
        pub coverage: f64,
        /// Faults with no observable effect.
        pub benign: u64,
        /// Undetected wrong outputs.
        pub undetected: u64,
    }

    impl ToJson for EccRow {
        fn to_json(&self) -> Json {
            Json::obj([
                ("ecc", Json::from(self.ecc)),
                ("policy", Json::from(self.policy.as_str())),
                ("coverage", Json::from(self.coverage)),
                ("benign", Json::from(self.benign)),
                ("undetected", Json::from(self.undetected)),
            ])
        }
    }

    /// Compares coverage with and without ECC memory under a fault space
    /// that includes memory words — Table 1's ECC row, ablated.
    pub fn ecc(trials: u64, seed: u64) -> Vec<EccRow> {
        let mut out = Vec::new();
        for policy in [NodePolicy::FailSilent, NodePolicy::LightweightNlft] {
            for ecc in [true, false] {
                let mut cfg = CampaignConfig::new(trials, seed, policy);
                cfg.space = FaultSpace::seu(nlft_machine::workloads::MEM_BYTES);
                cfg.ecc = ecc;
                cfg.threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                let r = run_campaign(&cfg);
                out.push(EccRow {
                    ecc,
                    policy: policy.to_string(),
                    coverage: r.counts.coverage().estimate(),
                    benign: r.counts.benign,
                    undetected: r.counts.undetected,
                });
            }
        }
        out
    }
}

/// Extension: fault-tolerant RTA slack ablation — the shortest tolerable
/// fault inter-arrival time as utilisation grows (§2.8).
pub mod rta {
    use nlft_kernel::analysis::{min_tolerable_fault_interval, tem_transform, TemCosts};
    use nlft_kernel::task::{Criticality, Priority, TaskId, TaskSet, TaskSpecBuilder};
    use nlft_sim::time::SimDuration;
    use nlft_testkit::json::{Json, ToJson};

    /// One ablation row.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Single-copy utilisation of the task set.
        pub utilisation: f64,
        /// Utilisation after the TEM transformation (two copies + compare).
        pub tem_utilisation: f64,
        /// Shortest tolerable fault inter-arrival time (µs), `None` when
        /// even rare faults break a deadline.
        pub min_fault_interval_us: Option<u64>,
    }

    impl ToJson for Row {
        fn to_json(&self) -> Json {
            Json::obj([
                ("utilisation", Json::from(self.utilisation)),
                ("tem_utilisation", Json::from(self.tem_utilisation)),
                (
                    "min_fault_interval_us",
                    self.min_fault_interval_us.map_or(Json::Null, Json::from),
                ),
            ])
        }
    }

    /// A three-task set scaled to a target single-copy utilisation.
    pub fn task_set(utilisation: f64) -> TaskSet {
        // Base shape: periods 5/10/20 ms; WCETs scaled to hit `utilisation`.
        let scale = utilisation / 0.35; // base utilisation = 0.35
        let mk = |id: u32, prio: u32, period_us: u64, base_wcet_us: f64| {
            TaskSpecBuilder::new(TaskId(id), format!("t{id}"))
                .period(SimDuration::from_micros(period_us))
                .wcet(SimDuration::from_micros(
                    (base_wcet_us * scale).max(1.0) as u64
                ))
                .priority(Priority(prio))
                .criticality(Criticality::Critical)
                .build()
                .expect("valid task")
        };
        [
            mk(1, 0, 5_000, 500.0),    // U = 0.10 at base
            mk(2, 1, 10_000, 1_000.0), // U = 0.10 at base
            mk(3, 2, 20_000, 3_000.0), // U = 0.15 at base
        ]
        .into_iter()
        .collect()
    }

    /// Generates the ablation over single-copy utilisations.
    pub fn generate() -> Vec<Row> {
        let costs = TemCosts::nominal();
        [0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45]
            .into_iter()
            .map(|u| {
                let set = task_set(u);
                let tem_set = tem_transform(&set, &costs);
                let min_tf =
                    min_tolerable_fault_interval(&tem_set, &costs, SimDuration::from_micros(10));
                Row {
                    utilisation: set.utilisation(),
                    tem_utilisation: tem_set.utilisation(),
                    min_fault_interval_us: min_tf.map(|d| d.as_micros()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig12_has_four_ordered_curves() {
        let curves = super::fig12::generate();
        assert_eq!(curves.len(), 4);
        for c in &curves {
            assert_eq!(c.points.len(), 13);
            assert!(
                (c.points[0].1 - 1.0).abs() < 1e-9,
                "{} starts at 1",
                c.label
            );
            assert!(c.mttf_years > 0.0);
        }
        let get = |label: &str| {
            curves
                .iter()
                .find(|c| c.label == label)
                .unwrap()
                .points
                .last()
                .unwrap()
                .1
        };
        assert!(get("NLFT/degraded") > get("FS/degraded"));
    }

    #[test]
    fn fig13_identifies_bottleneck() {
        let curves = super::fig13::generate();
        assert_eq!(curves.len(), 6);
        let last = |label: &str| {
            curves
                .iter()
                .find(|c| c.label == label)
                .unwrap()
                .points
                .last()
                .unwrap()
                .1
        };
        assert!(last("WN degraded (FS)") < last("CU duplex (FS)"));
    }

    #[test]
    fn fig14_series_monotone_in_coverage() {
        let series = super::fig14::generate();
        assert_eq!(series.len(), 8);
        let val = |cov: f64, pol: &str| {
            series
                .iter()
                .find(|s| s.coverage == cov && s.policy == pol)
                .unwrap()
                .points
                .last()
                .unwrap()
                .1
        };
        assert!(val(0.9999, "NLFT") > val(0.9, "NLFT"));
        assert!(val(0.9999, "FS") > val(0.9, "FS"));
    }

    #[test]
    fn rta_ablation_tightens_with_load() {
        let rows = super::rta::generate();
        assert!(rows.len() >= 6);
        let feasible: Vec<_> = rows
            .iter()
            .filter_map(|r| r.min_fault_interval_us.map(|v| (r.utilisation, v)))
            .collect();
        assert!(feasible.len() >= 2, "some configurations must be feasible");
        for w in feasible.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "higher load cannot tolerate faster faults: {w:?}"
            );
        }
    }

    #[test]
    fn slack_ablation_shows_omissions_rising() {
        let rows = super::ablation::slack_pressure(400, 7);
        assert_eq!(rows.len(), 6);
        let first = &rows[0];
        let last = rows.last().expect("nonempty");
        assert!(last.p_om > first.p_om, "pressure must raise omissions");
        assert!(last.p_t < first.p_t, "pressure must lower masking");
    }

    #[test]
    fn ecc_ablation_reports_both_configurations() {
        let rows = super::ablation::ecc(400, 9);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.ecc) && rows.iter().any(|r| !r.ecc));
    }

    #[test]
    fn table1_campaign_smoke() {
        let r = super::table1::generate(60, 99, nlft_core::policy::NodePolicy::LightweightNlft);
        assert_eq!(r.trials, 60);
    }
}
