//! Scenario-zoo runner: list, run and verify the declarative fault
//! campaigns under `scenarios/`.
//!
//! ```text
//! cargo run --release --bin scenario_run -- list [filter]
//! cargo run --release --bin scenario_run -- run [filter] [--threads N]
//!     [--engine] [--trial-budget-ms N]
//!     [--checkpoint FILE [--checkpoint-every N]] [--resume FILE]
//! cargo run --release --bin scenario_run -- verify [filter]
//! cargo run --release --bin scenario_run -- pin [filter]
//! ```
//!
//! * `list` — names, families and trial counts, optionally filtered by
//!   substring.
//! * `run` — run matching scenarios, print their verdict/metric
//!   counters and digests, and check each acceptance clause; exits
//!   non-zero if any clause fails. Engine flags (cluster family only):
//!   `--engine` forces the work-stealing executor even at one worker
//!   (the digest must not change — CI uses this as a differential gate
//!   against the sequential reference), `--trial-budget-ms` arms the
//!   per-trial watchdog, `--checkpoint FILE` streams resumable
//!   checkpoints to a file every `--checkpoint-every` trials, and
//!   `--resume FILE` continues a previously checkpointed run.
//! * `verify` — the CI gate: every matching scenario runs at 1, 2 and
//!   5 threads; the three outcomes must be bit-identical and match the
//!   scenario's `pin`. Fails hard on drift or a missing pin.
//! * `pin` — print the `pin 0x…` line for each scenario (for authoring
//!   new zoo entries).

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use nlft_bbw::scenario::{
    check_accept, run_scenario, run_scenario_with, ScenarioEngineOptions, ScenarioOutcome,
};
use nlft_reliability::scenario::{parse_scenario, ScenarioSpec};

/// The `scenarios/` directory at the workspace root.
fn zoo_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("scenarios")
}

/// Loads every `*.scn` file, sorted by file name for a stable order.
fn load_zoo(filter: Option<&str>) -> Result<Vec<(PathBuf, ScenarioSpec)>, String> {
    let dir = zoo_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    paths.sort();
    let mut zoo = Vec::new();
    for path in paths {
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let spec = parse_scenario(&source).map_err(|e| format!("{}: {e}", path.display()))?;
        if filter.is_none_or(|f| spec.name.contains(f)) {
            zoo.push((path, spec));
        }
    }
    Ok(zoo)
}

fn print_outcome(outcome: &ScenarioOutcome) {
    println!(
        "  trials {}  digest 0x{:08x}",
        outcome.trials, outcome.digest
    );
    let verdicts: Vec<String> = outcome
        .verdicts
        .iter()
        .filter(|&&(_, v)| v > 0)
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    println!("  verdicts: {}", verdicts.join("  "));
}

fn cmd_list(zoo: &[(PathBuf, ScenarioSpec)]) {
    for (path, spec) in zoo {
        println!(
            "{:<32} {:<12} trials {:<6} {}",
            spec.name,
            spec.params.family(),
            spec.trials,
            path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
        );
    }
    println!("{} scenarios", zoo.len());
}

/// Engine flags collected from the command line (cluster family only).
#[derive(Default)]
struct EngineFlags {
    engine: bool,
    trial_budget_ms: Option<u64>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: u64,
    resume: Option<PathBuf>,
}

impl EngineFlags {
    fn active(&self) -> bool {
        self.engine
            || self.trial_budget_ms.is_some()
            || self.checkpoint.is_some()
            || self.resume.is_some()
    }
}

fn cmd_run(zoo: &[(PathBuf, ScenarioSpec)], threads: usize, flags: &EngineFlags) -> bool {
    let mut ok = true;
    for (_, spec) in zoo {
        println!("== {} ({})", spec.name, spec.params.family());
        if flags.active() && spec.params.family() != "cluster" {
            println!("  skipped: engine flags apply to cluster-family scenarios only");
            continue;
        }
        let resume = match &flags.resume {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(text) => Some(text),
                Err(e) => {
                    ok = false;
                    println!("  resume FAILED: cannot read {}: {e}", path.display());
                    continue;
                }
            },
            None => None,
        };
        let sink = flags.checkpoint.clone();
        let written = RefCell::new(0u64);
        let save = |done: u64, encoded: String| {
            let path = sink.as_ref().expect("callback only wired with a sink");
            if let Err(e) = std::fs::write(path, encoded) {
                eprintln!("  checkpoint write FAILED at trial {done}: {e}");
            } else {
                *written.borrow_mut() += 1;
            }
        };
        let opts = ScenarioEngineOptions {
            force_engine: flags.engine,
            trial_budget: flags.trial_budget_ms.map(Duration::from_millis),
            resume,
            checkpoint_every: if flags.checkpoint.is_some() {
                // A handful of snapshots per run unless the user pinned a cadence.
                if flags.checkpoint_every > 0 {
                    flags.checkpoint_every
                } else {
                    (spec.trials / 8).max(1)
                }
            } else {
                0
            },
            on_checkpoint: flags.checkpoint.is_some().then_some(&save as _),
        };
        match run_scenario_with(spec, threads, &opts) {
            Ok(outcome) => {
                print_outcome(&outcome);
                if let Some(path) = &flags.checkpoint {
                    println!(
                        "  checkpoints: {} written to {}",
                        written.borrow(),
                        path.display()
                    );
                }
                let failures = check_accept(spec, &outcome);
                if failures.is_empty() {
                    println!("  accept: ok");
                } else {
                    ok = false;
                    for f in &failures {
                        println!("  accept FAILED: {f}");
                    }
                }
            }
            Err(e) => {
                ok = false;
                println!("  compile FAILED: {e}");
            }
        }
    }
    ok
}

/// The CI gate: bit-identical at 1/2/5 threads and equal to the pin.
fn cmd_verify(zoo: &[(PathBuf, ScenarioSpec)]) -> bool {
    let mut ok = true;
    for (path, spec) in zoo {
        let outcomes: Vec<ScenarioOutcome> = match [1usize, 2, 5]
            .iter()
            .map(|&t| run_scenario(spec, t))
            .collect::<Result<_, _>>()
        {
            Ok(v) => v,
            Err(e) => {
                println!("FAIL {:<32} compile error: {e}", spec.name);
                ok = false;
                continue;
            }
        };
        if outcomes[0] != outcomes[1] || outcomes[0] != outcomes[2] {
            println!(
                "FAIL {:<32} thread-count drift: 0x{:08x} / 0x{:08x} / 0x{:08x}",
                spec.name, outcomes[0].digest, outcomes[1].digest, outcomes[2].digest
            );
            ok = false;
            continue;
        }
        let outcome = &outcomes[0];
        let failures = check_accept(spec, outcome);
        match spec.accept.pin {
            None => {
                println!(
                    "FAIL {:<32} unpinned (add `pin 0x{:08x}` to {})",
                    spec.name,
                    outcome.digest,
                    path.display()
                );
                ok = false;
            }
            Some(_) if failures.is_empty() => {
                println!("ok   {:<32} 0x{:08x}", spec.name, outcome.digest);
            }
            Some(_) => {
                for f in &failures {
                    println!("FAIL {:<32} {f}", spec.name);
                }
                ok = false;
            }
        }
    }
    ok
}

fn cmd_pin(zoo: &[(PathBuf, ScenarioSpec)]) -> bool {
    for (_, spec) in zoo {
        match run_scenario(spec, 1) {
            Ok(outcome) => println!("{:<32} pin 0x{:08x}", spec.name, outcome.digest),
            Err(e) => {
                println!("{:<32} compile FAILED: {e}", spec.name);
                return false;
            }
        }
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("list");
    let mut filter = None;
    let mut threads = 1usize;
    let mut flags = EngineFlags::default();
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .unwrap_or(1);
            }
            "--engine" => flags.engine = true,
            "--trial-budget-ms" => {
                flags.trial_budget_ms = it.next().and_then(|v| v.parse().ok());
            }
            "--checkpoint" => {
                flags.checkpoint = it.next().map(PathBuf::from);
            }
            "--checkpoint-every" => {
                flags.checkpoint_every = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            }
            "--resume" => {
                flags.resume = it.next().map(PathBuf::from);
            }
            _ => filter = Some(arg.as_str()),
        }
    }
    let zoo = match load_zoo(filter) {
        Ok(zoo) => zoo,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if zoo.is_empty() {
        eprintln!("no scenarios match");
        return ExitCode::FAILURE;
    }
    let ok = match command {
        "list" => {
            cmd_list(&zoo);
            true
        }
        "run" => cmd_run(&zoo, threads, &flags),
        "verify" => cmd_verify(&zoo),
        "pin" => cmd_pin(&zoo),
        other => {
            eprintln!("unknown command `{other}` (expected list, run, verify, pin)");
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
