//! Regenerates every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p nlft-bench --bin paper_figures [--csv] [--json] [--trials N] [--reps N]
//! ```
//!
//! `--json` prints one machine-readable document with every figure's data
//! instead of the human tables; the layout matches the old serde-derived
//! artifacts field for field.

use nlft_bench::{ablation, fig12, fig13, fig14, report, rta, table1, xcheck};
use nlft_core::policy::NodePolicy;
use nlft_testkit::json::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let trials = flag_value(&args, "--trials").unwrap_or(20_000);
    let reps = flag_value(&args, "--reps").unwrap_or(20_000);

    if args.iter().any(|a| a == "--json") {
        let doc = Json::obj([
            ("fig12", fig12::generate().to_json()),
            ("fig13", fig13::generate().to_json()),
            ("fig14", fig14::generate().to_json()),
            ("xcheck", xcheck::generate(reps, 0x5EED).to_json()),
            (
                "slack_ablation",
                ablation::slack_pressure(trials.min(5_000), 0xAB1A).to_json(),
            ),
            (
                "ecc_ablation",
                ablation::ecc(trials.min(5_000), 0xECC).to_json(),
            ),
            ("rta", rta::generate().to_json()),
        ]);
        println!("{doc}");
        return;
    }

    print!(
        "{}",
        report::heading("Figure 12 — BBW system reliability over one year")
    );
    let curves = fig12::generate();
    let series: Vec<(String, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|c| (c.label.clone(), c.points.clone()))
        .collect();
    print!(
        "{}",
        if csv {
            report::series_csv("t_hours", &series)
        } else {
            report::series_table("t_hours", &series)
        }
    );
    println!("\nMTTF (years):");
    for c in &curves {
        println!("  {:<16} {:.3}", c.label, c.mttf_years);
    }
    let r = |label: &str| {
        curves
            .iter()
            .find(|c| c.label == label)
            .expect("known label")
    };
    let fs = r("FS/degraded");
    let nlft = r("NLFT/degraded");
    let r_fs = fs.points.last().expect("points").1;
    let r_nlft = nlft.points.last().expect("points").1;
    println!(
        "\nHeadline: R(1y) degraded {:.3} -> {:.3} (+{:.0}%), MTTF {:.2}y -> {:.2}y (+{:.0}%)",
        r_fs,
        r_nlft,
        (r_nlft / r_fs - 1.0) * 100.0,
        fs.mttf_years,
        nlft.mttf_years,
        (nlft.mttf_years / fs.mttf_years - 1.0) * 100.0
    );
    println!("Paper:    R(1y) degraded 0.45 -> 0.70 (+55%), MTTF 1.2y -> 1.9y (+~60%)");

    print!(
        "{}",
        report::heading("Figure 13 — subsystem reliability over one year")
    );
    let curves = fig13::generate();
    let series: Vec<(String, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|c| (c.label.clone(), c.points.clone()))
        .collect();
    print!(
        "{}",
        if csv {
            report::series_csv("t_hours", &series)
        } else {
            report::series_table("t_hours", &series)
        }
    );

    print!(
        "{}",
        report::heading("Figure 14 — R(5h), degraded mode, coverage × transient-rate sweep")
    );
    let series: Vec<(String, Vec<(f64, f64)>)> = fig14::generate()
        .into_iter()
        .map(|s| (format!("{} C_D={}", s.policy, s.coverage), s.points))
        .collect();
    print!(
        "{}",
        if csv {
            report::series_csv("lambda_t_multiplier", &series)
        } else {
            report::series_table("lambda_t_multiplier", &series)
        }
    );

    print!(
        "{}",
        report::heading("Table 1 — EDM detection matrix + parameter estimation (campaign)")
    );
    for policy in [NodePolicy::LightweightNlft, NodePolicy::FailSilent] {
        let result = table1::generate(trials, 0x7AB1E, policy);
        println!("policy: {policy}  ({} injections)", result.trials);
        print!("{}", result.matrix.render_table());
        println!("{result}");
        println!();
    }
    println!("Paper §3.3 assumes: C_D = 0.99, P_T = 0.90, P_OM = 0.05, P_FS = 0.05");

    print!(
        "{}",
        report::heading("Extension — Monte-Carlo cross-validation of Figure 12")
    );
    println!(
        "{:<16}{:>10}{:>12}{:>12}{:>24}",
        "config", "t (h)", "analytic", "MC", "95% CI"
    );
    for row in xcheck::generate(reps, 0x5EED) {
        println!(
            "{:<16}{:>10.0}{:>12.4}{:>12.4}      [{:.4}, {:.4}]",
            row.label, row.t_hours, row.analytic, row.monte_carlo, row.ci.0, row.ci.1
        );
    }

    print!(
        "{}",
        report::heading("Extension — slack-pressure ablation (campaign -> params -> R(1y))")
    );
    println!(
        "{:>16}{:>10}{:>10}{:>12}",
        "tight fraction", "P_T", "P_OM", "R(1 year)"
    );
    for row in ablation::slack_pressure(trials.min(5_000), 0xAB1A) {
        println!(
            "{:>16.2}{:>10.4}{:>10.4}{:>12.4}",
            row.tight_fraction, row.p_t, row.p_om, row.r_one_year
        );
    }

    print!(
        "{}",
        report::heading("Extension — ECC ablation (memory-inclusive fault space)")
    );
    println!(
        "{:<22}{:>6}{:>12}{:>10}{:>12}",
        "policy", "ECC", "coverage", "benign", "undetected"
    );
    for row in ablation::ecc(trials.min(5_000), 0xECC) {
        println!(
            "{:<22}{:>6}{:>12.4}{:>10}{:>12}",
            row.policy,
            if row.ecc { "on" } else { "off" },
            row.coverage,
            row.benign,
            row.undetected
        );
    }

    print!(
        "{}",
        report::heading("Extension — parameter sensitivity of R(t) (generalised Fig. 14)")
    );
    for (label, t) in [("t = 5 hours", 5.0), ("t = 1 year", 8_760.0)] {
        println!("{label}:");
        let rows = nlft_bbw::sensitivity::sensitivity(
            &nlft_bbw::params::BbwParams::paper(),
            nlft_bbw::analytic::Policy::Nlft,
            nlft_bbw::analytic::Functionality::Degraded,
            t,
        );
        print!("{}", nlft_bbw::sensitivity::render(&rows));
        println!();
    }

    print!(
        "{}",
        report::heading("Extension — distributed fault injection over the executable cluster")
    );
    let cfg = nlft_bbw::cluster_campaign::ClusterCampaignConfig::new(trials.min(2_000), 0xC1A5);
    let r = nlft_bbw::cluster_campaign::run_cluster_campaign(&cfg);
    println!(
        "{} cluster runs, one machine-level transient each:\n  invisible at the vehicle boundary: {} ({:.1}%)\n  omission-only episodes: {}\n  degraded-mode episodes: {}\n  braking lost: {}",
        r.trials,
        r.unaffected,
        r.masking_fraction() * 100.0,
        r.omission_only,
        r.degraded_episode,
        r.service_lost
    );

    print!(
        "{}",
        report::heading("Extension — fault-tolerant RTA slack ablation (§2.8)")
    );
    println!(
        "{:>14}{:>18}{:>26}",
        "utilisation", "TEM utilisation", "min fault interval (us)"
    );
    for row in rta::generate() {
        println!(
            "{:>14.2}{:>18.2}{:>26}",
            row.utilisation,
            row.tem_utilisation,
            row.min_fault_interval_us
                .map(|v| v.to_string())
                .unwrap_or_else(|| "unschedulable".to_string())
        );
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
