//! Bench-trajectory driver: snapshot a baseline, or compare against it.
//!
//! ```text
//! cargo run --release -p nlft-bench --bin bench_compare -- snapshot [--out PATH]
//! cargo run --release -p nlft-bench --bin bench_compare -- compare [--baseline PATH]
//! ```
//!
//! Both modes read the `BENCH_<group>.json` artifacts that `cargo bench`
//! leaves under `<target>/testkit/` (or `NLFT_BENCH_OUT`). `snapshot`
//! merges them — together with the golden Figure 12 digest — into one
//! baseline document (default `BENCH_BASELINE.json`). `compare` prints a
//! ratio table against the baseline: timing slowdowns are warnings only
//! (hardware varies), but golden-digest drift exits nonzero — the
//! optimisations this trajectory tracks must be bit-invisible.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nlft_bench::trajectory;
use nlft_testkit::bench::artifact_path;
use nlft_testkit::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("snapshot") => {
            let out = flag(&args, "--out").unwrap_or_else(|| PathBuf::from("BENCH_BASELINE.json"));
            snapshot(&out)
        }
        Some("compare") => {
            let baseline =
                flag(&args, "--baseline").unwrap_or_else(|| PathBuf::from("BENCH_BASELINE.json"));
            compare(&baseline)
        }
        _ => {
            eprintln!("usage: bench_compare snapshot [--out PATH] | compare [--baseline PATH]");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Collects every `BENCH_*.json` group report from the artifact directory.
fn fresh_reports() -> Vec<Json> {
    let dir = artifact_path("probe");
    let Some(dir) = dir.parent() else {
        return Vec::new();
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut reports = Vec::new();
    let mut names: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    names.sort();
    for path in names {
        match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
            Ok(text) => match Json::parse(&text) {
                Ok(doc) if doc.get("group").is_some() => reports.push(doc),
                Ok(_) => eprintln!("skipping {} (no group field)", path.display()),
                Err(e) => eprintln!("skipping {} ({e})", path.display()),
            },
            Err(e) => eprintln!("skipping {} ({e})", path.display()),
        }
    }
    reports
}

fn snapshot(out: &Path) -> ExitCode {
    let reports = fresh_reports();
    if reports.is_empty() {
        eprintln!(
            "no BENCH_*.json artifacts found — run `cargo bench -p nlft-bench` first \
             (artifacts land under <target>/testkit/ or $NLFT_BENCH_OUT)"
        );
        return ExitCode::FAILURE;
    }
    let doc = trajectory::merge_baseline(reports);
    let groups = doc
        .get("groups")
        .and_then(Json::as_arr)
        .map_or(0, <[_]>::len);
    match std::fs::write(out, format!("{doc}\n")) {
        Ok(()) => {
            println!(
                "baseline with {groups} group(s) written to {}",
                out.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

fn compare(baseline_path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("could not parse {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let cmp = trajectory::compare(&baseline, &fresh_reports());
    print!("{}", cmp.render());
    if cmp.golden_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
