//! The committed bench trajectory: snapshotting `BENCH_*.json` artifacts
//! into one `BENCH_BASELINE.json`, and comparing a fresh run against it.
//!
//! The baseline serves two different promises and treats them differently:
//!
//! * **Timings** (median ns per benchmark) are hardware-dependent, so the
//!   comparison is *fail-soft*: slowdowns beyond a threshold produce
//!   prominent warnings in the report, never a failure.
//! * **Golden results** (a CRC-32 digest over the bit-exact Figure 12
//!   reliability curves) are hardware-independent, so any drift is a hard
//!   failure — an optimisation that changes a single output bit is a bug,
//!   not a regression to tolerate.
//!
//! Driven by the `bench_compare` binary; `scripts/verify.sh` runs the
//! compare after the bench step.

use std::fmt::Write as _;

use nlft_testkit::json::Json;

use crate::fig12;

/// Baseline file schema version (bump on layout changes).
pub const SCHEMA: u64 = 1;

/// Warn when a benchmark's median slows down by more than this factor.
pub const SLOWDOWN_WARN_RATIO: f64 = 1.25;

/// CRC-32 digest over the bit-exact Figure 12 curves (labels, every
/// `(t, R(t))` point and the MTTF, all f64s taken as raw bits). Any
/// change to the analytic pipeline — intended or not — moves this digest.
pub fn golden_digest() -> u32 {
    let mut bytes = Vec::new();
    for curve in fig12::generate() {
        bytes.extend_from_slice(curve.label.as_bytes());
        bytes.push(0);
        for (t, r) in &curve.points {
            bytes.extend_from_slice(&t.to_bits().to_le_bytes());
            bytes.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        bytes.extend_from_slice(&curve.mttf_years.to_bits().to_le_bytes());
    }
    nlft_sim::crc::crc32(&bytes)
}

/// Merges per-group bench reports (the parsed contents of the
/// `BENCH_<group>.json` files) into one baseline document. Groups are
/// sorted by name so the committed artifact diffs stably.
pub fn merge_baseline(mut groups: Vec<Json>) -> Json {
    groups.sort_by(|a, b| {
        let name = |j: &Json| j.get("group").and_then(|g| g.as_str().map(String::from));
        name(a).cmp(&name(b))
    });
    Json::obj([
        ("schema", Json::from(SCHEMA)),
        (
            "golden",
            Json::obj([("fig12_crc32", Json::from(u64::from(golden_digest())))]),
        ),
        ("groups", Json::Arr(groups)),
    ])
}

/// One benchmark's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// `group/name` of the benchmark.
    pub key: String,
    /// Baseline median (ns).
    pub baseline_ns: f64,
    /// Fresh median (ns), `None` when the benchmark was not re-run.
    pub current_ns: Option<f64>,
}

impl Delta {
    /// `current / baseline`; `None` without a fresh measurement.
    pub fn ratio(&self) -> Option<f64> {
        self.current_ns.map(|c| c / self.baseline_ns)
    }

    /// `true` when the slowdown exceeds [`SLOWDOWN_WARN_RATIO`].
    pub fn slow(&self) -> bool {
        self.ratio().is_some_and(|r| r > SLOWDOWN_WARN_RATIO)
    }
}

/// The outcome of comparing a fresh bench run against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-benchmark timing deltas, in baseline order.
    pub deltas: Vec<Delta>,
    /// Golden digest recorded in the baseline, if present.
    pub baseline_digest: Option<u64>,
    /// Golden digest of the current build.
    pub current_digest: u32,
}

impl Comparison {
    /// `true` when the current build reproduces the baseline's golden
    /// results bit for bit (vacuously true for baselines without one).
    pub fn golden_ok(&self) -> bool {
        self.baseline_digest
            .is_none_or(|d| d == u64::from(self.current_digest))
    }

    /// Human-readable report: one line per benchmark plus a verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .deltas
            .iter()
            .map(|d| d.key.len())
            .max()
            .unwrap_or(0)
            .max(9);
        let _ = writeln!(
            out,
            "{:<width$} {:>12} {:>12} {:>7}",
            "benchmark", "baseline", "current", "ratio"
        );
        for d in &self.deltas {
            match d.current_ns {
                Some(c) => {
                    let ratio = d.ratio().expect("current present");
                    let flag = if d.slow() { "  SLOWER" } else { "" };
                    let _ = writeln!(
                        out,
                        "{:<width$} {:>12} {:>12} {:>6.2}x{}",
                        d.key,
                        fmt_ns(d.baseline_ns),
                        fmt_ns(c),
                        ratio,
                        flag
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:<width$} {:>12} {:>12}   (not re-run)",
                        d.key,
                        fmt_ns(d.baseline_ns),
                        "-"
                    );
                }
            }
        }
        let slow = self.deltas.iter().filter(|d| d.slow()).count();
        if slow > 0 {
            let _ = writeln!(
                out,
                "WARNING: {slow} benchmark(s) slower than baseline by >{:.0}% \
                 (timing comparison is advisory, not failing)",
                (SLOWDOWN_WARN_RATIO - 1.0) * 100.0
            );
        }
        match self.baseline_digest {
            Some(d) if d == u64::from(self.current_digest) => {
                let _ = writeln!(out, "golden fig12 digest: match ({:#010x})", d);
            }
            Some(d) => {
                let _ = writeln!(
                    out,
                    "ERROR: golden fig12 digest drift: baseline {:#010x}, current {:#010x}",
                    d, self.current_digest
                );
            }
            None => {
                let _ = writeln!(out, "baseline has no golden digest (pre-trajectory)");
            }
        }
        out
    }
}

/// Compares a baseline document against freshly produced per-group
/// reports. Benchmarks present in the baseline but absent from the fresh
/// set are reported as not re-run (the bench step may only exercise a
/// subset of groups).
pub fn compare(baseline: &Json, fresh_groups: &[Json]) -> Comparison {
    let mut deltas = Vec::new();
    for group in baseline.get("groups").and_then(Json::as_arr).unwrap_or(&[]) {
        let gname = group.get("group").and_then(Json::as_str).unwrap_or("?");
        for bench in group
            .get("benchmarks")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
        {
            let name = bench.get("name").and_then(Json::as_str).unwrap_or("?");
            let Some(base_ns) = bench.get("median_ns").and_then(Json::as_f64) else {
                continue;
            };
            deltas.push(Delta {
                key: format!("{gname}/{name}"),
                baseline_ns: base_ns,
                current_ns: lookup(fresh_groups, gname, name),
            });
        }
    }
    Comparison {
        deltas,
        baseline_digest: baseline
            .get("golden")
            .and_then(|g| g.get("fig12_crc32"))
            .and_then(Json::as_f64)
            .map(|v| v as u64),
        current_digest: golden_digest(),
    }
}

fn lookup(groups: &[Json], group: &str, name: &str) -> Option<f64> {
    groups
        .iter()
        .find(|g| g.get("group").and_then(Json::as_str) == Some(group))?
        .get("benchmarks")
        .and_then(Json::as_arr)?
        .iter()
        .find(|b| b.get("name").and_then(Json::as_str) == Some(name))?
        .get("median_ns")
        .and_then(Json::as_f64)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(name: &str, benches: &[(&str, f64)]) -> Json {
        Json::obj([
            ("group", Json::from(name)),
            (
                "benchmarks",
                Json::arr(benches.iter().map(|&(n, m)| {
                    Json::obj([("name", Json::from(n)), ("median_ns", Json::from(m))])
                })),
            ),
        ])
    }

    #[test]
    fn golden_digest_is_stable_within_a_build() {
        assert_eq!(golden_digest(), golden_digest());
    }

    #[test]
    fn merge_sorts_groups_and_embeds_digest() {
        let doc = merge_baseline(vec![group("net", &[]), group("machine", &[])]);
        let names: Vec<_> = doc
            .get("groups")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|g| g.get("group").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, ["machine", "net"]);
        assert_eq!(doc.get("schema").unwrap().as_f64(), Some(SCHEMA as f64));
        let digest = doc.get("golden").unwrap().get("fig12_crc32").unwrap();
        assert_eq!(digest.as_f64(), Some(f64::from(golden_digest())));
    }

    #[test]
    fn compare_flags_slowdowns_and_missing_benches() {
        let baseline = merge_baseline(vec![group(
            "machine",
            &[("fast", 100.0), ("slow", 100.0), ("gone", 100.0)],
        )]);
        let fresh = [group("machine", &[("fast", 90.0), ("slow", 200.0)])];
        let cmp = compare(&baseline, &fresh);
        assert_eq!(cmp.deltas.len(), 3);
        assert!(!cmp.deltas[0].slow(), "speedup is not a warning");
        assert!(cmp.deltas[1].slow(), "2x slowdown must warn");
        assert_eq!(cmp.deltas[2].current_ns, None);
        assert!(cmp.golden_ok(), "same build reproduces its own digest");
        let report = cmp.render();
        assert!(report.contains("SLOWER"), "{report}");
        assert!(report.contains("not re-run"), "{report}");
        assert!(report.contains("digest: match"), "{report}");
    }

    #[test]
    fn compare_detects_golden_drift() {
        let mut baseline = merge_baseline(vec![]);
        // Corrupt the recorded digest.
        if let Json::Obj(fields) = &mut baseline {
            for (k, v) in fields.iter_mut() {
                if k == "golden" {
                    *v = Json::obj([("fig12_crc32", Json::from(0u64))]);
                }
            }
        }
        let cmp = compare(&baseline, &[]);
        assert!(!cmp.golden_ok());
        assert!(cmp.render().contains("digest drift"));
    }

    #[test]
    fn baseline_without_digest_is_tolerated() {
        let baseline = Json::obj([("groups", Json::arr([]))]);
        let cmp = compare(&baseline, &[]);
        assert!(cmp.golden_ok(), "vacuous pass for pre-trajectory baselines");
        assert!(cmp.render().contains("no golden digest"));
    }
}
