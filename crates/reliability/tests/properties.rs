//! Property-based tests for the dependability-analysis engine.

use nlft_reliability::ctmc::{CtmcBuilder, StateId};
use nlft_reliability::faulttree::{FaultTreeBuilder, GateId};
use nlft_reliability::model::{CtmcReliability, Exponential, ReliabilityModel};
use nlft_reliability::rbd::Block;
use nlft_testkit::prop::{gens, Suite};
use nlft_testkit::prop_assert;
use nlft_testkit::rng::TkRng;

const SUITE: Suite = Suite::new(0x5EED_0021).cases(64);

/// Printable ASCII plus newline — the charset of the original
/// `[ -~\n]{0,300}` fuzz strategy.
const PRINTABLE_AND_NEWLINE: &str = concat!(
    " !\"#$%&'()*+,-./0123456789:;<=>?",
    "@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_",
    "`abcdefghijklmnopqrstuvwxyz{|}~\n"
);

/// Builds a random irreducible-ish CTMC over `n` states with rates drawn
/// from `rates` (cyclically), plus a guaranteed forward chain so every
/// state is reachable.
fn random_ctmc(n: usize, rates: &[f64]) -> nlft_reliability::ctmc::Ctmc {
    let mut b = CtmcBuilder::new();
    let states: Vec<StateId> = (0..n).map(|i| b.state(format!("s{i}"))).collect();
    let mut k = 0usize;
    for i in 0..n {
        let j = (i + 1) % n;
        let rate = rates[k % rates.len()].abs().max(1e-6);
        b.transition(states[i], states[j], rate).unwrap();
        k += 1;
        // Occasional extra edge.
        if rates[k % rates.len()] > 0.5 {
            let target = (i + 2) % n;
            if target != i {
                b.transition(states[i], states[target], rates[k % rates.len()])
                    .unwrap();
            }
            k += 1;
        }
    }
    b.build()
}

/// Transient distributions are valid probability vectors at any time.
#[test]
fn ctmc_transient_is_distribution() {
    SUITE.check(
        "ctmc_transient_is_distribution",
        {
            let mut rates = gens::vec(|r| r.f64_range(0.01, 5.0), 4..12);
            move |r: &mut TkRng| (r.usize_range(2, 6), rates(r), r.f64_range(0.0, 100.0))
        },
        |(n, rates, t)| {
            let n = *n;
            let chain = random_ctmc(n, rates);
            let mut pi0 = vec![0.0; n];
            pi0[0] = 1.0;
            let pi = chain.transient(&pi0, *t).unwrap();
            let sum: f64 = pi.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
            for &p in &pi {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            }
            Ok(())
        },
    );
}

/// The two transient algorithms agree wherever uniformization applies.
#[test]
fn ctmc_expm_matches_uniformization() {
    SUITE.check(
        "ctmc_expm_matches_uniformization",
        {
            let mut rates = gens::vec(|r| r.f64_range(0.01, 2.0), 4..10);
            move |r: &mut TkRng| (r.usize_range(2, 5), rates(r), r.f64_range(0.01, 20.0))
        },
        |(n, rates, t)| {
            let n = *n;
            let chain = random_ctmc(n, rates);
            let mut pi0 = vec![0.0; n];
            pi0[0] = 1.0;
            let a = chain.transient(&pi0, *t).unwrap();
            let u = chain.transient_uniformized(&pi0, *t, 1e-12).unwrap();
            for (x, y) in a.iter().zip(&u) {
                prop_assert!((x - y).abs() < 1e-8, "{x} vs {y}");
            }
            Ok(())
        },
    );
}

/// Reliability of an absorbing chain is non-increasing in time.
#[test]
fn absorbing_reliability_monotone() {
    SUITE.check(
        "absorbing_reliability_monotone",
        |r: &mut TkRng| {
            (
                r.f64_range(1e-4, 1.0),
                r.f64_range(0.1, 100.0),
                r.f64_range(1e-4, 1.0),
            )
        },
        |&(lam, mu, nu)| {
            let mut b = CtmcBuilder::new();
            let s0 = b.state("up");
            let s1 = b.state("deg");
            let f = b.state("f");
            b.transition(s0, s1, lam).unwrap();
            b.transition(s1, s0, mu).unwrap();
            b.transition(s1, f, nu).unwrap();
            let model = CtmcReliability::new(b.build(), vec![1.0, 0.0, 0.0], vec![f]);
            let mut last = 1.0f64;
            for i in 0..20 {
                let r = model.reliability(i as f64 * 5.0);
                prop_assert!(r <= last + 1e-12, "reliability increased: {last} -> {r}");
                prop_assert!((0.0..=1.0).contains(&r));
                last = r;
            }
            Ok(())
        },
    );
}

/// RBD algebra: series is bounded by its weakest child, parallel by its
/// strongest, and k-of-n is monotone in k.
#[test]
fn rbd_bounds() {
    SUITE.check(
        "rbd_bounds",
        {
            let mut ps = gens::vec(|r| r.f64_range(1e-6, 1e-2), 2..6);
            move |r: &mut TkRng| (ps(r), r.f64_range(1.0, 1000.0))
        },
        |(ps, t)| {
            let t = *t;
            let blocks: Vec<Block> = ps
                .iter()
                .map(|&r| Block::component(Exponential::new(r)))
                .collect();
            let child_r: Vec<f64> = blocks.iter().map(|b| b.reliability(t)).collect();
            let min = child_r.iter().cloned().fold(1.0, f64::min);
            let max = child_r.iter().cloned().fold(0.0, f64::max);

            let series = Block::series(blocks.clone()).reliability(t);
            prop_assert!(series <= min + 1e-12);
            let parallel = Block::parallel(blocks.clone()).reliability(t);
            prop_assert!(parallel >= max - 1e-12);
            prop_assert!(parallel <= 1.0);

            let mut last = 1.0f64;
            for k in 1..=blocks.len() {
                let r = Block::k_of_n(k, blocks.clone()).reliability(t);
                prop_assert!(r <= last + 1e-12, "k-of-n must decrease with k");
                last = r;
            }
            // 1-of-n == parallel, n-of-n == series.
            prop_assert!(
                (Block::k_of_n(1, blocks.clone()).reliability(t) - parallel).abs() < 1e-12
            );
            prop_assert!(
                (Block::k_of_n(blocks.len(), blocks).reliability(t) - series).abs() < 1e-12
            );
            Ok(())
        },
    );
}

/// BDD fault-tree evaluation equals brute-force enumeration over all
/// event assignments, including shared events.
#[test]
fn faulttree_matches_enumeration() {
    SUITE.check(
        "faulttree_matches_enumeration",
        {
            let mut probs = gens::vec(|r| r.f64_range(0.0, 1.0), 2..7);
            move |r: &mut TkRng| (probs(r), r.range(0, 6) as u8)
        },
        |(probs, structure)| {
            let structure = *structure;
            let n = probs.len();
            let mut b = FaultTreeBuilder::new();
            let events: Vec<GateId> = (0..n).map(|i| b.basic_event(format!("e{i}"))).collect();
            // A few fixed shapes over n events, including one with sharing.
            let top = match structure % 6 {
                0 => b.or(events.clone()),
                1 => b.and(events.clone()),
                2 => b.k_of_n((n / 2).max(1), events.clone()),
                3 => {
                    let left = b.and(events[..n / 2 + 1].to_vec());
                    let right = b.or(events[n / 2..].to_vec());
                    b.or(vec![left, right])
                }
                4 => {
                    // Shared first event in two AND branches.
                    let shared = b.shared_event(nlft_reliability::faulttree::EventId(0));
                    let a1 = b.and(vec![events[0], events[n - 1]]);
                    let a2 = b.and(vec![shared, events[n / 2]]);
                    b.or(vec![a1, a2])
                }
                _ => {
                    let inner = b.k_of_n(1.max(n - 1), events.clone());
                    b.or(vec![inner, events[0]])
                }
            };
            let tree = b.build(top);

            // Brute force over all 2^n assignments, evaluating the same shape.
            let eval = |assign: &[bool]| -> bool {
                match structure % 6 {
                    0 => assign.iter().any(|&x| x),
                    1 => assign.iter().all(|&x| x),
                    2 => assign.iter().filter(|&&x| x).count() >= (n / 2).max(1),
                    3 => {
                        assign[..n / 2 + 1].iter().all(|&x| x) || assign[n / 2..].iter().any(|&x| x)
                    }
                    4 => assign[0] && (assign[n - 1] || assign[n / 2]),
                    _ => assign.iter().filter(|&&x| x).count() >= 1.max(n - 1) || assign[0],
                }
            };
            let mut expect = 0.0f64;
            for mask in 0..(1u32 << n) {
                let assign: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
                if eval(&assign) {
                    let p: f64 = assign
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| if x { probs[i] } else { 1.0 - probs[i] })
                        .product();
                    expect += p;
                }
            }
            let got = tree.top_probability(probs);
            prop_assert!(
                (got - expect).abs() < 1e-9,
                "bdd {got} vs enumeration {expect}"
            );
            Ok(())
        },
    );
}

/// Birnbaum importance lies in [0, 1] for monotone trees.
#[test]
fn birnbaum_in_unit_interval() {
    SUITE.check(
        "birnbaum_in_unit_interval",
        gens::vec(|r| r.f64_range(0.0, 1.0), 2..6),
        |probs| {
            let mut b = FaultTreeBuilder::new();
            let events: Vec<GateId> = (0..probs.len())
                .map(|i| b.basic_event(format!("e{i}")))
                .collect();
            let top = b.k_of_n((probs.len() / 2).max(1), events);
            let tree = b.build(top);
            for imp in tree.birnbaum_importance(probs) {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&imp));
            }
            Ok(())
        },
    );
}

/// The DSL parser is total: arbitrary input text produces a result or
/// an error with a line number — never a panic.
#[test]
fn lang_parser_never_panics() {
    SUITE.check(
        "lang_parser_never_panics",
        gens::string_from(PRINTABLE_AND_NEWLINE, 0..301),
        |src| {
            match nlft_reliability::lang::parse(src) {
                Ok(_) => {}
                Err(e) => prop_assert!(e.line <= src.lines().count() + 1),
            }
            Ok(())
        },
    );
}

/// Structured fuzz: random keyword soup with valid-ish shapes.
#[test]
fn lang_parser_total_on_keyword_soup() {
    SUITE.check(
        "lang_parser_total_on_keyword_soup",
        {
            let mut words = gens::vec(
                gens::select(vec![
                    "bind",
                    "markov",
                    "rbd",
                    "ftree",
                    "end",
                    "trans",
                    "init",
                    "absorb",
                    "comp",
                    "series",
                    "parallel",
                    "kofn",
                    "basic",
                    "and",
                    "or",
                    "top",
                    "x",
                    "y",
                    "1.5",
                    "-2",
                    "exp(1)",
                    "markov(x)",
                    "(",
                    ")",
                    "*",
                    "+",
                ]),
                0..60,
            );
            move |r: &mut TkRng| (words(r), r.usize_range(1, 6))
        },
        |(words, newline_every)| {
            let mut src = String::new();
            for (i, w) in words.iter().enumerate() {
                src.push_str(w);
                src.push(if i % newline_every == 0 { '\n' } else { ' ' });
            }
            let _ = nlft_reliability::lang::parse(&src);
            Ok(())
        },
    );
}

/// The SHARPE-style DSL agrees with programmatic construction for
/// arbitrary two-state chains.
#[test]
fn lang_matches_programmatic() {
    SUITE.check(
        "lang_matches_programmatic",
        |r: &mut TkRng| (r.f64_range(1e-6, 1.0), r.f64_range(0.0, 100.0)),
        |&(lam, t)| {
            let src = format!("markov m\n trans up down {lam}\n absorb down\n init up 1\nend");
            let set = nlft_reliability::lang::parse(&src).unwrap();
            let got = set.reliability("m", t).unwrap();
            prop_assert!((got - (-lam * t).exp()).abs() < 1e-9);
            Ok(())
        },
    );
}
