//! The zoo-wide format→parse property: every scenario file under
//! `scenarios/` parses, and re-parsing its canonical rendering yields
//! an identical AST. Also pins the parser's diagnostic quality on a
//! few representative misspellings.

use std::path::PathBuf;

use nlft_reliability::scenario::{format_scenario, parse_scenario};

fn zoo_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("scenarios")
}

fn zoo_sources() -> Vec<(String, String)> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(zoo_dir())
        .expect("scenarios/ exists at the workspace root")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&p).expect("zoo file readable");
            (name, source)
        })
        .collect()
}

#[test]
fn zoo_is_big_enough() {
    assert!(
        zoo_sources().len() >= 15,
        "the scenario zoo must hold at least 15 scenarios"
    );
}

#[test]
fn every_zoo_scenario_parses() {
    for (file, source) in zoo_sources() {
        if let Err(e) = parse_scenario(&source) {
            panic!("{file}: {e}");
        }
    }
}

#[test]
fn format_parse_round_trips_every_zoo_scenario() {
    for (file, source) in zoo_sources() {
        let spec = parse_scenario(&source).unwrap_or_else(|e| panic!("{file}: {e}"));
        let formatted = format_scenario(&spec);
        let reparsed = parse_scenario(&formatted)
            .unwrap_or_else(|e| panic!("{file}: canonical form failed to re-parse: {e}"));
        assert_eq!(spec, reparsed, "{file}: format → parse must round-trip");
        // The canonical form is a fixed point: formatting it again is a
        // no-op, so the formatter itself is deterministic.
        assert_eq!(
            formatted,
            format_scenario(&reparsed),
            "{file}: canonical form must be a fixed point"
        );
    }
}

#[test]
fn every_zoo_scenario_is_pinned() {
    for (file, source) in zoo_sources() {
        let spec = parse_scenario(&source).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(
            spec.accept.pin.is_some(),
            "{file}: zoo scenarios must carry a golden `pin`"
        );
    }
}

#[test]
fn misspelled_zoo_keyword_gets_a_hint() {
    // Take a real zoo file and corrupt one keyword; the error must carry
    // the line and a did-you-mean suggestion.
    let (_, source) = zoo_sources()
        .into_iter()
        .find(|(f, _)| f == "net-storm-nominal.scn")
        .expect("net-storm-nominal.scn in the zoo");
    let corrupted = source.replace("intensity", "intensty");
    let e = parse_scenario(&corrupted).unwrap_err();
    assert!(
        e.message.contains("did you mean `intensity`?"),
        "expected a hint, got: {e}"
    );
    assert!(
        e.line > 0 && e.col > 0,
        "diagnostic carries a position: {e}"
    );
}
