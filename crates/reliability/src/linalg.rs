//! Dense linear algebra for Markov dependability models.
//!
//! Everything the CTMC solver needs, self-contained: a row-major [`Matrix`]
//! with the usual operations, LU decomposition with partial pivoting for
//! linear solves (MTTF computations), and the scaling-and-squaring Padé-13
//! matrix exponential (Higham 2005) for transient solutions. The Padé
//! route matters here: the paper's models mix repair rates around 10³/h
//! with fault rates around 10⁻⁴/h over one-year horizons, which is far too
//! stiff for explicit integration and too long for plain uniformization.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error from a linear solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular (or numerically so) and cannot be factorised.
    Singular,
    /// Operand dimensions are incompatible.
    DimensionMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a nested slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut m = Matrix::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "ragged rows");
            for (j, &v) in r.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to an element.
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        let cur = self.get(r, c);
        self.set(r, c, cur + v);
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible dimensions.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "incompatible dimensions for mul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Row-vector times matrix: `v * self`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (j, o) in out.iter_mut().enumerate() {
                *o += vi * self.get(i, j);
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        out
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
        out
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Matrix {
        let mut out = self.clone();
        for a in &mut out.data {
            *a *= k;
        }
        out
    }

    /// 1-norm (maximum absolute column sum).
    pub fn one_norm(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self.get(i, j).abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Solves `self * X = b` for multiple right-hand sides via LU with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Singular`] when a pivot vanishes,
    /// [`LinalgError::DimensionMismatch`] when shapes disagree.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != self.cols || b.rows != self.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = lu.get(col, col).abs();
            for r in col + 1..n {
                let v = lu.get(r, col).abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot != col {
                for j in 0..n {
                    let tmp = lu.get(col, j);
                    lu.set(col, j, lu.get(pivot, j));
                    lu.set(pivot, j, tmp);
                }
                perm.swap(col, pivot);
            }
            let d = lu.get(col, col);
            for r in col + 1..n {
                let factor = lu.get(r, col) / d;
                lu.set(r, col, factor);
                for j in col + 1..n {
                    let v = lu.get(r, j) - factor * lu.get(col, j);
                    lu.set(r, j, v);
                }
            }
        }

        // Apply to each RHS column.
        let mut x = Matrix::zeros(n, b.cols);
        for rhs in 0..b.cols {
            // Permuted forward substitution (Ly = Pb).
            let mut y = vec![0.0; n];
            for i in 0..n {
                let mut v = b.get(perm[i], rhs);
                for (j, &yj) in y.iter().enumerate().take(i) {
                    v -= lu.get(i, j) * yj;
                }
                y[i] = v;
            }
            // Back substitution (Ux = y).
            for i in (0..n).rev() {
                let mut v = y[i];
                for j in i + 1..n {
                    v -= lu.get(i, j) * x.get(j, rhs);
                }
                x.set(i, rhs, v / lu.get(i, i));
            }
        }
        Ok(x)
    }

    /// Matrix exponential `e^self` by scaling-and-squaring with a Padé-13
    /// approximant (Higham 2005). Exact to machine precision for the small,
    /// stiff generator matrices of dependability models.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or contains non-finite entries.
    pub fn expm(&self) -> Matrix {
        assert_eq!(self.rows, self.cols, "expm needs a square matrix");
        assert!(
            self.data.iter().all(|v| v.is_finite()),
            "expm needs finite entries"
        );
        const THETA_13: f64 = 5.371_920_351_148_152;
        #[rustfmt::skip]
        const B: [f64; 14] = [
            64_764_752_532_480_000.0, 32_382_376_266_240_000.0, 7_771_770_303_897_600.0,
            1_187_353_796_428_800.0, 129_060_195_264_000.0, 10_559_470_521_600.0,
            670_442_572_800.0, 33_522_128_640.0, 1_323_241_920.0, 40_840_800.0,
            960_960.0, 16_380.0, 182.0, 1.0,
        ];
        let norm = self.one_norm();
        let s = if norm > THETA_13 {
            (norm / THETA_13).log2().ceil().max(0.0) as u32
        } else {
            0
        };
        let a = self.scale(0.5f64.powi(s as i32));
        let n = self.rows;
        let id = Matrix::identity(n);

        let a2 = a.mul(&a);
        let a4 = a2.mul(&a2);
        let a6 = a2.mul(&a4);

        // U = A [ A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I ]
        let u_inner = a6.scale(B[13]).add(&a4.scale(B[11])).add(&a2.scale(B[9]));
        let u = a.mul(
            &a6.mul(&u_inner)
                .add(&a6.scale(B[7]))
                .add(&a4.scale(B[5]))
                .add(&a2.scale(B[3]))
                .add(&id.scale(B[1])),
        );
        // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
        let v_inner = a6.scale(B[12]).add(&a4.scale(B[10])).add(&a2.scale(B[8]));
        let v = a6
            .mul(&v_inner)
            .add(&a6.scale(B[6]))
            .add(&a4.scale(B[4]))
            .add(&a2.scale(B[2]))
            .add(&id.scale(B[0]));

        // r13(A) = (V - U)^{-1} (V + U)
        let mut r = v
            .sub(&u)
            .solve(&v.add(&u))
            .expect("(V-U) is nonsingular for scaled matrices");
        for _ in 0..s {
            r = r.mul(&r);
        }
        r
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(Matrix::identity(3).get(2, 2), 1.0);
        assert_eq!(Matrix::identity(3).get(0, 2), 0.0);
    }

    #[test]
    fn multiplication() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn vec_mul_is_row_vector_product() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.vec_mul(&[1.0, 1.0]), vec![4.0, 6.0]);
        assert_eq!(m.vec_mul(&[1.0, 0.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn one_norm_is_max_col_sum() {
        let m = Matrix::from_rows(&[&[1.0, -7.0], &[-2.0, 3.0]]);
        assert_eq!(m.one_norm(), 10.0);
    }

    #[test]
    fn solve_known_system() {
        // x + 2y = 5; 3x + 4y = 11 → x=1, y=2
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[11.0]]);
        let x = a.solve(&b).unwrap();
        assert_close(x.get(0, 0), 1.0, 1e-12);
        assert_close(x.get(1, 0), 2.0, 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[7.0]]);
        let x = a.solve(&b).unwrap();
        assert_close(x.get(0, 0), 7.0, 1e-12);
        assert_close(x.get(1, 0), 3.0, 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0]]);
        assert_eq!(a.solve(&b), Err(LinalgError::Singular));
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = Matrix::zeros(4, 4);
        let e = z.expm();
        for i in 0..4 {
            for j in 0..4 {
                assert_close(e.get(i, j), if i == j { 1.0 } else { 0.0 }, 1e-14);
            }
        }
    }

    #[test]
    fn expm_of_diagonal() {
        let d = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -2.0]]);
        let e = d.expm();
        assert_close(e.get(0, 0), 1.0f64.exp(), 1e-12);
        assert_close(e.get(1, 1), (-2.0f64).exp(), 1e-12);
        assert_close(e.get(0, 1), 0.0, 1e-12);
    }

    #[test]
    fn expm_of_nilpotent() {
        // N = [[0,1],[0,0]] → e^N = I + N.
        let n = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let e = n.expm();
        assert_close(e.get(0, 0), 1.0, 1e-14);
        assert_close(e.get(0, 1), 1.0, 1e-14);
        assert_close(e.get(1, 1), 1.0, 1e-14);
    }

    #[test]
    fn expm_rotation_matches_trig() {
        // A = [[0,-θ],[θ,0]] → e^A = rotation by θ.
        let theta = 1.234;
        let a = Matrix::from_rows(&[&[0.0, -theta], &[theta, 0.0]]);
        let e = a.expm();
        assert_close(e.get(0, 0), theta.cos(), 1e-12);
        assert_close(e.get(0, 1), -theta.sin(), 1e-12);
        assert_close(e.get(1, 0), theta.sin(), 1e-12);
    }

    #[test]
    fn expm_handles_stiff_generator() {
        // 2-state birth-death with wildly separated rates, the shape of the
        // paper's models: λ = 1e-4, μ = 1e3, horizon 8760h.
        let lam = 1e-4;
        let mu = 1e3;
        let t = 8760.0;
        let q = Matrix::from_rows(&[&[-lam, lam], &[mu, -mu]]);
        let e = q.scale(t).expm();
        let p_up = e.get(0, 0);
        // Analytic: p_up(t) = μ/(λ+μ) + λ/(λ+μ) e^{-(λ+μ)t} → steady state.
        let expect = mu / (lam + mu);
        assert_close(p_up, expect, 1e-9);
        // Rows of a stochastic matrix sum to 1.
        assert_close(e.get(0, 0) + e.get(0, 1), 1.0, 1e-9);
        assert_close(e.get(1, 0) + e.get(1, 1), 1.0, 1e-9);
    }

    #[test]
    fn expm_semigroup_property() {
        let a = Matrix::from_rows(&[&[-0.3, 0.3, 0.0], &[0.1, -0.4, 0.3], &[0.0, 0.2, -0.2]]);
        let e2 = a.scale(2.0).expm();
        let e1 = a.expm();
        let e1e1 = e1.mul(&e1);
        for i in 0..3 {
            for j in 0..3 {
                assert_close(e2.get(i, j), e1e1.get(i, j), 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn expm_rejects_non_square() {
        Matrix::zeros(2, 3).expm();
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        Matrix::zeros(0, 1);
    }
}
