//! The common reliability-model interface and primitive models.
//!
//! Every analyzable object — a component, a Markov subsystem, a reliability
//! block diagram, a fault tree — exposes `R(t)`, the probability of having
//! operated correctly throughout `[0, t]`. Hierarchical composition (the
//! SHARPE idiom the paper uses) is then just models nesting models.

use std::sync::Arc;

use crate::ctmc::{Ctmc, StateId};

/// Anything with a reliability function `R(t)`.
///
/// `t` is in hours, matching the paper's rate units. Implementations must
/// return values in `[0, 1]`, non-increasing in `t`, with `R(0) = 1` for a
/// system that starts fault-free.
pub trait ReliabilityModel {
    /// Probability of surviving `[0, t_hours]` without failure.
    fn reliability(&self, t_hours: f64) -> f64;

    /// Unreliability `1 − R(t)`.
    fn unreliability(&self, t_hours: f64) -> f64 {
        1.0 - self.reliability(t_hours)
    }
}

impl<M: ReliabilityModel + ?Sized> ReliabilityModel for &M {
    fn reliability(&self, t_hours: f64) -> f64 {
        (**self).reliability(t_hours)
    }
}

impl<M: ReliabilityModel + ?Sized> ReliabilityModel for Arc<M> {
    fn reliability(&self, t_hours: f64) -> f64 {
        (**self).reliability(t_hours)
    }
}

impl<M: ReliabilityModel + ?Sized> ReliabilityModel for Box<M> {
    fn reliability(&self, t_hours: f64) -> f64 {
        (**self).reliability(t_hours)
    }
}

/// A component with exponentially distributed lifetime: `R(t) = e^{-λt}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Failure rate per hour.
    pub rate: f64,
}

impl Exponential {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is nonnegative and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be nonnegative");
        Exponential { rate }
    }
}

impl ReliabilityModel for Exponential {
    fn reliability(&self, t_hours: f64) -> f64 {
        (-self.rate * t_hours).exp()
    }
}

/// A component seen through an imperfect detection layer: only the
/// *undetected* fraction `1 − c` of its failures reaches the output as a
/// silent (value-domain) failure, so
/// `U_covered(t) = (1 − c) · U_inner(t)`.
///
/// This is the standard coverage factor of Bouricius/Arnold applied at
/// the fault-tree leaf: a detected failure is handled elsewhere in the
/// tree (redundancy exhaustion, fail-safe release), while the coverage
/// miss is a basic event of its own. With `c = 1` the event vanishes;
/// with `c = 0` the wrapper is the inner model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveredModel<M> {
    inner: M,
    coverage: f64,
}

impl<M: ReliabilityModel> CoveredModel<M> {
    /// Wraps `inner` with detection coverage `c`.
    ///
    /// # Panics
    ///
    /// Panics unless `coverage` is in `[0, 1]`.
    pub fn new(inner: M, coverage: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be in [0, 1]"
        );
        CoveredModel { inner, coverage }
    }

    /// The detection coverage `c`.
    pub fn coverage(&self) -> f64 {
        self.coverage
    }
}

impl<M: ReliabilityModel> ReliabilityModel for CoveredModel<M> {
    fn reliability(&self, t_hours: f64) -> f64 {
        1.0 - (1.0 - self.coverage) * self.inner.unreliability(t_hours)
    }
}

/// An absorbing CTMC viewed through its up-states: `R(t)` is the
/// probability of never having entered the absorbing (failure) states —
/// valid when the failure states trap (no repair out of them), which holds
/// for every model in the paper.
#[derive(Debug, Clone)]
pub struct CtmcReliability {
    chain: Ctmc,
    initial: Vec<f64>,
    failure_states: Vec<StateId>,
}

impl CtmcReliability {
    /// Creates the view.
    ///
    /// # Panics
    ///
    /// Panics if a failure state has an outgoing transition (it would not
    /// be absorbing, and `R(t)` would not equal `P(not yet failed)`).
    pub fn new(chain: Ctmc, initial: Vec<f64>, failure_states: Vec<StateId>) -> Self {
        for &f in &failure_states {
            for j in 0..chain.num_states() {
                if j != f.0 {
                    assert!(
                        chain.generator().get(f.0, j) == 0.0,
                        "failure state {} is not absorbing",
                        chain.name(f)
                    );
                }
            }
        }
        CtmcReliability {
            chain,
            initial,
            failure_states,
        }
    }

    /// The wrapped chain.
    pub fn chain(&self) -> &Ctmc {
        &self.chain
    }

    /// Mean time to failure of this subsystem.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::ctmc::CtmcError`] (e.g. infinite MTTF).
    pub fn mttf(&self) -> Result<f64, crate::ctmc::CtmcError> {
        self.chain.mttf(&self.initial, &self.failure_states)
    }
}

impl ReliabilityModel for CtmcReliability {
    fn reliability(&self, t_hours: f64) -> f64 {
        let pi = self
            .chain
            .transient(&self.initial, t_hours)
            .expect("initial distribution validated at construction");
        1.0 - self.chain.probability_in(&pi, &self.failure_states)
    }
}

/// Numerically integrates `MTTF = ∫₀^∞ R(t) dt` by adaptive Simpson over
/// doubling windows, stopping when the tail contribution is negligible.
///
/// Works for any model; exact-CTMC MTTFs are preferred where available.
///
/// # Panics
///
/// Panics if `rel_tol` is not in `(0, 1)`.
pub fn mttf_numeric(model: &impl ReliabilityModel, rel_tol: f64) -> f64 {
    assert!(rel_tol > 0.0 && rel_tol < 1.0, "rel_tol must be in (0,1)");
    let mut total = 0.0f64;
    let mut lo = 0.0f64;
    let mut width = 1.0f64;
    // Integrate [lo, lo+width], doubling the window until R is tiny and the
    // window stops contributing.
    for _ in 0..256 {
        let hi = lo + width;
        let seg = adaptive_simpson(model, lo, hi, rel_tol * (total.max(1.0)), 24);
        total += seg;
        if model.reliability(hi) < 1e-12 && seg < rel_tol * total.max(f64::MIN_POSITIVE) {
            break;
        }
        lo = hi;
        width *= 2.0;
    }
    total
}

fn adaptive_simpson(model: &impl ReliabilityModel, a: f64, b: f64, tol: f64, depth: u32) -> f64 {
    let m = 0.5 * (a + b);
    let fa = model.reliability(a);
    let fb = model.reliability(b);
    let fm = model.reliability(m);
    simpson_step(model, a, b, fa, fm, fb, tol, depth)
}

#[allow(clippy::too_many_arguments)]
fn simpson_step(
    model: &impl ReliabilityModel,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = model.reliability(lm);
    let frm = model.reliability(rm);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    let split = left + right;
    if depth == 0 || (split - whole).abs() <= 15.0 * tol {
        split + (split - whole) / 15.0
    } else {
        simpson_step(model, a, m, fa, flm, fm, tol / 2.0, depth - 1)
            + simpson_step(model, m, b, fm, frm, fb, tol / 2.0, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn exponential_basics() {
        let m = Exponential::new(0.01);
        assert_eq!(m.reliability(0.0), 1.0);
        assert_close(m.reliability(100.0), (-1.0f64).exp(), 1e-12);
        assert_close(m.unreliability(100.0), 1.0 - (-1.0f64).exp(), 1e-12);
    }

    #[test]
    fn exponential_mttf_numeric_matches_inverse_rate() {
        let m = Exponential::new(0.02);
        let mttf = mttf_numeric(&m, 1e-9);
        assert_close(mttf, 50.0, 1e-4);
    }

    #[test]
    fn ctmc_reliability_with_repair() {
        // 0 -λ→ 1 -ν→ F; 1 -μ→ 0. R(t) strictly decreasing; MTTF matches
        // the closed form used in the ctmc tests.
        let (lam, mu, nu) = (0.01, 1.0, 0.1);
        let mut b = CtmcBuilder::new();
        let s0 = b.state("ok");
        let s1 = b.state("degraded");
        let f = b.state("failed");
        b.transition(s0, s1, lam).unwrap();
        b.transition(s1, s0, mu).unwrap();
        b.transition(s1, f, nu).unwrap();
        let model = CtmcReliability::new(b.build(), vec![1.0, 0.0, 0.0], vec![f]);
        assert_close(model.reliability(0.0), 1.0, 1e-12);
        let r1 = model.reliability(10.0);
        let r2 = model.reliability(100.0);
        assert!(r1 > r2 && r2 > 0.0);
        let expect = ((nu + mu) / lam + 1.0) / nu;
        assert_close(model.mttf().unwrap(), expect, 1e-6);
        // Numeric MTTF agrees with the exact linear-solve MTTF.
        let numeric = mttf_numeric(&model, 1e-8);
        assert_close(numeric, expect, expect * 1e-4);
    }

    #[test]
    #[should_panic(expected = "not absorbing")]
    fn non_absorbing_failure_state_rejected() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 1.0).unwrap();
        b.transition(down, up, 1.0).unwrap(); // repair out of "failure"
        CtmcReliability::new(b.build(), vec![1.0, 0.0], vec![down]);
    }

    #[test]
    fn covered_model_scales_the_unreliability() {
        let inner = Exponential::new(1e-4);
        let covered = CoveredModel::new(inner, 0.95);
        let t = 5_000.0;
        let expected = 0.05 * inner.unreliability(t);
        assert!((covered.unreliability(t) - expected).abs() < 1e-12);
    }

    #[test]
    fn covered_model_limits() {
        let inner = Exponential::new(1e-3);
        let perfect = CoveredModel::new(inner, 1.0);
        let blind = CoveredModel::new(inner, 0.0);
        for t in [0.0, 100.0, 10_000.0] {
            assert_eq!(perfect.reliability(t), 1.0, "c = 1 never fails silently");
            assert!((blind.reliability(t) - inner.reliability(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn covered_model_is_monotone_in_coverage() {
        let inner = Exponential::new(1e-3);
        let t = 2_000.0;
        let mut last = -1.0;
        for c in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let r = CoveredModel::new(inner, c).reliability(t);
            assert!(r > last, "higher coverage must mean higher reliability");
            last = r;
        }
    }

    #[test]
    #[should_panic(expected = "coverage must be in [0, 1]")]
    fn covered_model_rejects_bad_coverage() {
        let _ = CoveredModel::new(Exponential::new(1e-3), 1.5);
    }

    #[test]
    fn trait_objects_and_references_work() {
        let m = Exponential::new(0.1);
        let by_ref: &dyn ReliabilityModel = &m;
        assert_eq!(by_ref.reliability(0.0), 1.0);
        let boxed: Box<dyn ReliabilityModel> = Box::new(m);
        assert_eq!(boxed.reliability(0.0), 1.0);
        let arced: Arc<dyn ReliabilityModel> = Arc::new(m);
        assert_eq!(arced.reliability(0.0), 1.0);
    }
}
