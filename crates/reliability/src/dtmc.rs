//! Absorbing discrete-time Markov chains.
//!
//! The recovery-escalation ladder in the kernel is a *discrete*-time
//! process — one transition per job slot — so comparing its analytic
//! behaviour against the fault-injection campaign needs DTMC machinery,
//! not the continuous-time solver in [`crate::ctmc`]. This module provides
//! the two quantities the recovery analysis consumes: the expected number
//! of steps to absorption (via the fundamental matrix, solved with the LU
//! machinery in [`crate::linalg`]) and finite-horizon absorption
//! probabilities (via distribution-vector iteration).

use crate::linalg::{LinalgError, Matrix};
use std::fmt;

/// Error from constructing or solving an absorbing DTMC.
#[derive(Debug, Clone, PartialEq)]
pub enum DtmcError {
    /// The transition matrix is not square, or is empty.
    NotSquare,
    /// A row does not sum to 1 (within tolerance). Carries the row index.
    NotStochastic(usize),
    /// A state declared absorbing does not self-loop with probability 1.
    NotAbsorbing(usize),
    /// An index is out of range for the chain.
    BadState(usize),
    /// No absorbing state was declared, so absorption questions are moot.
    NoAbsorbingStates,
    /// The fundamental-matrix solve failed (the chain has a transient
    /// component that can never reach absorption).
    Singular,
}

impl fmt::Display for DtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtmcError::NotSquare => write!(f, "transition matrix is not square"),
            DtmcError::NotStochastic(i) => write!(f, "row {i} does not sum to 1"),
            DtmcError::NotAbsorbing(i) => write!(f, "state {i} is not absorbing"),
            DtmcError::BadState(i) => write!(f, "state index {i} out of range"),
            DtmcError::NoAbsorbingStates => write!(f, "chain has no absorbing states"),
            DtmcError::Singular => write!(f, "fundamental matrix is singular"),
        }
    }
}

impl std::error::Error for DtmcError {}

/// Tolerance for row-stochasticity checks.
const ROW_SUM_TOL: f64 = 1e-9;

/// An absorbing discrete-time Markov chain.
///
/// Holds a row-stochastic transition matrix together with the set of
/// absorbing states. Construction validates the structure; the solvers
/// then answer the two questions the recovery analysis asks: *how long
/// until absorption?* and *where do we end up within a horizon?*
#[derive(Debug, Clone)]
pub struct AbsorbingDtmc {
    /// Row-stochastic transition matrix, `p[i][j]` = P(i → j).
    p: Vec<Vec<f64>>,
    /// Sorted indices of absorbing states.
    absorbing: Vec<usize>,
    /// Sorted indices of transient (non-absorbing) states.
    transient: Vec<usize>,
}

impl AbsorbingDtmc {
    /// Builds a chain from a row-stochastic matrix and its absorbing set.
    ///
    /// Validates that the matrix is square, every row sums to 1 within
    /// `1e-9`, and every declared absorbing state self-loops with
    /// probability 1.
    pub fn new(p: Vec<Vec<f64>>, absorbing: &[usize]) -> Result<Self, DtmcError> {
        let n = p.len();
        if n == 0 || p.iter().any(|row| row.len() != n) {
            return Err(DtmcError::NotSquare);
        }
        for (i, row) in p.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > ROW_SUM_TOL
                || row.iter().any(|&v| !(0.0..=1.0 + ROW_SUM_TOL).contains(&v))
            {
                return Err(DtmcError::NotStochastic(i));
            }
        }
        if absorbing.is_empty() {
            return Err(DtmcError::NoAbsorbingStates);
        }
        let mut abs: Vec<usize> = absorbing.to_vec();
        abs.sort_unstable();
        abs.dedup();
        for &a in &abs {
            if a >= n {
                return Err(DtmcError::BadState(a));
            }
            if (p[a][a] - 1.0).abs() > ROW_SUM_TOL {
                return Err(DtmcError::NotAbsorbing(a));
            }
        }
        let transient: Vec<usize> = (0..n).filter(|i| !abs.contains(i)).collect();
        Ok(AbsorbingDtmc {
            p,
            absorbing: abs,
            transient,
        })
    }

    /// Number of states in the chain.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True when the chain has no states (never — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// The sorted absorbing-state indices.
    pub fn absorbing_states(&self) -> &[usize] {
        &self.absorbing
    }

    /// Expected number of steps until absorption, starting from `from`.
    ///
    /// Solves `(I − Q) t = 1` where `Q` is the transient-to-transient
    /// submatrix — the classic fundamental-matrix computation. Starting in
    /// an absorbing state gives 0. Fails with [`DtmcError::Singular`] when
    /// some transient state cannot reach absorption.
    pub fn expected_steps_to_absorption(&self, from: usize) -> Result<f64, DtmcError> {
        if from >= self.len() {
            return Err(DtmcError::BadState(from));
        }
        if self.absorbing.contains(&from) {
            return Ok(0.0);
        }
        let m = self.transient.len();
        let mut a = Matrix::identity(m);
        for (ri, &i) in self.transient.iter().enumerate() {
            for (rj, &j) in self.transient.iter().enumerate() {
                a.set(ri, rj, a.get(ri, rj) - self.p[i][j]);
            }
        }
        let mut ones = Matrix::zeros(m, 1);
        for r in 0..m {
            ones.set(r, 0, 1.0);
        }
        let t = a.solve(&ones).map_err(|e| match e {
            LinalgError::Singular => DtmcError::Singular,
            LinalgError::DimensionMismatch => DtmcError::NotSquare,
        })?;
        let idx = self
            .transient
            .iter()
            .position(|&i| i == from)
            .expect("from is transient");
        Ok(t.get(idx, 0))
    }

    /// Probability of being in one of `targets` after at most `horizon`
    /// steps, starting from `from`.
    ///
    /// Iterates the distribution vector `horizon` times; since targets are
    /// typically absorbing, this is the CDF of the absorption time.
    pub fn absorption_probability(
        &self,
        from: usize,
        horizon: u32,
        targets: &[usize],
    ) -> Result<f64, DtmcError> {
        let n = self.len();
        if from >= n {
            return Err(DtmcError::BadState(from));
        }
        for &t in targets {
            if t >= n {
                return Err(DtmcError::BadState(t));
            }
        }
        let mut dist = vec![0.0; n];
        dist[from] = 1.0;
        for _ in 0..horizon {
            let mut next = vec![0.0; n];
            for (i, &mass) in dist.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                for (j, &pij) in self.p[i].iter().enumerate() {
                    if pij > 0.0 {
                        next[j] += mass * pij;
                    }
                }
            }
            dist = next;
        }
        Ok(targets.iter().map(|&t| dist[t]).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn rejects_malformed_chains() {
        assert_eq!(
            AbsorbingDtmc::new(vec![], &[0]).unwrap_err(),
            DtmcError::NotSquare
        );
        assert_eq!(
            AbsorbingDtmc::new(vec![vec![0.5, 0.4], vec![0.0, 1.0]], &[1]).unwrap_err(),
            DtmcError::NotStochastic(0)
        );
        assert_eq!(
            AbsorbingDtmc::new(vec![vec![0.5, 0.5], vec![0.1, 0.9]], &[1]).unwrap_err(),
            DtmcError::NotAbsorbing(1)
        );
        assert_eq!(
            AbsorbingDtmc::new(vec![vec![0.5, 0.5], vec![0.0, 1.0]], &[]).unwrap_err(),
            DtmcError::NoAbsorbingStates
        );
        assert_eq!(
            AbsorbingDtmc::new(vec![vec![0.5, 0.5], vec![0.0, 1.0]], &[7]).unwrap_err(),
            DtmcError::BadState(7)
        );
    }

    #[test]
    fn deterministic_chain_counts_its_steps() {
        // 0 → 1 → 2 → absorbed: exactly 3 steps from state 0.
        let p = vec![
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0, 1.0],
        ];
        let chain = AbsorbingDtmc::new(p, &[3]).unwrap();
        let steps = chain.expected_steps_to_absorption(0).unwrap();
        assert!(close(steps, 3.0, 1e-12), "steps {steps}");
        assert_eq!(chain.expected_steps_to_absorption(3).unwrap(), 0.0);
        // Finite-horizon CDF: not absorbed by 2, certainly by 3.
        assert!(close(
            chain.absorption_probability(0, 2, &[3]).unwrap(),
            0.0,
            1e-12
        ));
        assert!(close(
            chain.absorption_probability(0, 3, &[3]).unwrap(),
            1.0,
            1e-12
        ));
    }

    #[test]
    fn geometric_absorption_time_matches_closed_form() {
        // Flip a p-coin each step: expected steps = 1/p.
        let p_succ = 0.25;
        let p = vec![vec![1.0 - p_succ, p_succ], vec![0.0, 1.0]];
        let chain = AbsorbingDtmc::new(p, &[1]).unwrap();
        let steps = chain.expected_steps_to_absorption(0).unwrap();
        assert!(close(steps, 4.0, 1e-9), "steps {steps}");
        // CDF after k steps is 1 - (1-p)^k.
        let cdf = chain.absorption_probability(0, 5, &[1]).unwrap();
        assert!(close(cdf, 1.0 - 0.75f64.powi(5), 1e-12), "cdf {cdf}");
    }

    #[test]
    fn gamblers_ruin_splits_between_the_two_absorbers() {
        // Fair gambler's ruin on {0..4}, absorbing at 0 and 4. From state
        // 2: P(end at 4) = 1/2, expected duration = 2 * (4-2) = 4.
        let p = vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.5, 0.0, 0.5, 0.0, 0.0],
            vec![0.0, 0.5, 0.0, 0.5, 0.0],
            vec![0.0, 0.0, 0.5, 0.0, 0.5],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ];
        let chain = AbsorbingDtmc::new(p, &[0, 4]).unwrap();
        let steps = chain.expected_steps_to_absorption(2).unwrap();
        assert!(close(steps, 4.0, 1e-9), "steps {steps}");
        let win = chain.absorption_probability(2, 10_000, &[4]).unwrap();
        assert!(close(win, 0.5, 1e-6), "win {win}");
    }

    #[test]
    fn unreachable_absorption_is_singular() {
        // State 0 self-loops among transients only in a disconnected pair.
        let p = vec![
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let chain = AbsorbingDtmc::new(p, &[2]).unwrap();
        assert_eq!(
            chain.expected_steps_to_absorption(0).unwrap_err(),
            DtmcError::Singular
        );
    }
}
