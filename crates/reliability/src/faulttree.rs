//! Fault trees with exact BDD evaluation — the fault-tree half of SHARPE.
//!
//! The paper's system model (Fig. 5) is a fault tree whose basic events are
//! subsystem failures. This module supports AND/OR/k-of-n gates over a DAG
//! of nodes with *shared* basic events, evaluated exactly through a reduced
//! ordered binary decision diagram (BDD) — naive gate-by-gate probability
//! arithmetic would double-count shared events.
//!
//! [`HierarchicalTree`] closes the SHARPE loop: basic events are themselves
//! [`ReliabilityModel`]s (Markov chains, RBDs, …), and the tree is again a
//! `ReliabilityModel`, so models nest arbitrarily.

use std::collections::HashMap;
use std::sync::Arc;

use crate::model::ReliabilityModel;

/// Index of a basic event (a BDD variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub usize);

/// Index of a gate/node in the tree DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(usize);

#[derive(Debug, Clone)]
enum Node {
    Basic(EventId),
    And(Vec<GateId>),
    Or(Vec<GateId>),
    KOfN(usize, Vec<GateId>),
}

/// Builder for a fault tree.
///
/// # Examples
///
/// ```
/// use nlft_reliability::faulttree::FaultTreeBuilder;
///
/// // System fails if the CU fails OR the wheel-node subsystem fails (Fig. 5).
/// let mut b = FaultTreeBuilder::new();
/// let cu = b.basic_event("central unit fails");
/// let wn = b.basic_event("wheel subsystem fails");
/// let top = b.or(vec![cu, wn]);
/// let tree = b.build(top);
/// let p = tree.top_probability(&[0.1, 0.2]);
/// assert!((p - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultTreeBuilder {
    event_names: Vec<String>,
    nodes: Vec<Node>,
}

impl FaultTreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        FaultTreeBuilder::default()
    }

    /// Declares a basic event; returns its gate for wiring. The event's
    /// index (for the probability vector) is allocated in call order.
    pub fn basic_event(&mut self, name: impl Into<String>) -> GateId {
        let ev = EventId(self.event_names.len());
        self.event_names.push(name.into());
        self.nodes.push(Node::Basic(ev));
        GateId(self.nodes.len() - 1)
    }

    /// References an already-declared basic event again (shared event).
    ///
    /// # Panics
    ///
    /// Panics if the event does not exist.
    pub fn shared_event(&mut self, event: EventId) -> GateId {
        assert!(event.0 < self.event_names.len(), "unknown event");
        self.nodes.push(Node::Basic(event));
        GateId(self.nodes.len() - 1)
    }

    /// AND gate: fails when **all** children fail.
    ///
    /// # Panics
    ///
    /// Panics on empty children or dangling ids.
    pub fn and(&mut self, children: Vec<GateId>) -> GateId {
        self.check_children(&children);
        self.nodes.push(Node::And(children));
        GateId(self.nodes.len() - 1)
    }

    /// OR gate: fails when **any** child fails.
    ///
    /// # Panics
    ///
    /// Panics on empty children or dangling ids.
    pub fn or(&mut self, children: Vec<GateId>) -> GateId {
        self.check_children(&children);
        self.nodes.push(Node::Or(children));
        GateId(self.nodes.len() - 1)
    }

    /// k-of-n gate: fails when at least `k` children fail.
    ///
    /// # Panics
    ///
    /// Panics on empty children, dangling ids, or `k` out of range.
    pub fn k_of_n(&mut self, k: usize, children: Vec<GateId>) -> GateId {
        self.check_children(&children);
        assert!(k >= 1 && k <= children.len(), "k out of range");
        self.nodes.push(Node::KOfN(k, children));
        GateId(self.nodes.len() - 1)
    }

    fn check_children(&self, children: &[GateId]) {
        assert!(!children.is_empty(), "gate needs children");
        for c in children {
            assert!(c.0 < self.nodes.len(), "dangling gate id");
        }
    }

    /// Compiles the tree rooted at `top` into its BDD.
    ///
    /// # Panics
    ///
    /// Panics if `top` is dangling.
    pub fn build(self, top: GateId) -> FaultTree {
        assert!(top.0 < self.nodes.len(), "dangling top gate");
        let mut bdd = Bdd::new();
        let mut memo: HashMap<usize, u32> = HashMap::new();
        let root = compile(&self.nodes, top.0, &mut bdd, &mut memo);
        FaultTree {
            event_names: self.event_names,
            bdd,
            root,
        }
    }
}

fn compile(nodes: &[Node], idx: usize, bdd: &mut Bdd, memo: &mut HashMap<usize, u32>) -> u32 {
    if let Some(&r) = memo.get(&idx) {
        return r;
    }
    let result = match &nodes[idx] {
        Node::Basic(ev) => bdd.var(ev.0),
        Node::And(children) => {
            let mut acc = Bdd::TRUE;
            for &c in children {
                let cb = compile(nodes, c.0, bdd, memo);
                acc = bdd.and(acc, cb);
            }
            acc
        }
        Node::Or(children) => {
            let mut acc = Bdd::FALSE;
            for &c in children {
                let cb = compile(nodes, c.0, bdd, memo);
                acc = bdd.or(acc, cb);
            }
            acc
        }
        Node::KOfN(k, children) => {
            let child_bdds: Vec<u32> = children
                .iter()
                .map(|&c| compile(nodes, c.0, bdd, memo))
                .collect();
            bdd.at_least(*k, &child_bdds)
        }
    };
    memo.insert(idx, result);
    result
}

/// A compiled fault tree.
#[derive(Debug, Clone)]
pub struct FaultTree {
    event_names: Vec<String>,
    bdd: Bdd,
    root: u32,
}

impl FaultTree {
    /// Number of basic events (length of the probability vector).
    pub fn num_events(&self) -> usize {
        self.event_names.len()
    }

    /// Name of a basic event.
    pub fn event_name(&self, ev: EventId) -> &str {
        &self.event_names[ev.0]
    }

    /// Birnbaum importance of every basic event:
    /// `I_B(i) = P(top | eᵢ occurs) − P(top | eᵢ does not occur)` —
    /// the classic sensitivity measure identifying reliability bottlenecks
    /// (the quantitative form of the paper's Fig. 13 observation).
    ///
    /// # Panics
    ///
    /// As for [`FaultTree::top_probability`].
    pub fn birnbaum_importance(&self, probs: &[f64]) -> Vec<f64> {
        assert_eq!(probs.len(), self.num_events(), "wrong probability count");
        (0..self.num_events())
            .map(|i| {
                let mut hi = probs.to_vec();
                hi[i] = 1.0;
                let mut lo = probs.to_vec();
                lo[i] = 0.0;
                self.top_probability(&hi) - self.top_probability(&lo)
            })
            .collect()
    }

    /// Exact top-event probability given each basic event's probability.
    ///
    /// # Panics
    ///
    /// Panics if `probs` has the wrong length or holds values outside
    /// `[0, 1]`.
    pub fn top_probability(&self, probs: &[f64]) -> f64 {
        assert_eq!(probs.len(), self.num_events(), "wrong probability count");
        assert!(
            probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "probabilities must be in [0,1]"
        );
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.bdd.probability(self.root, probs, &mut memo)
    }
}

/// A fault tree whose basic events are reliability models; itself a
/// [`ReliabilityModel`] (the hierarchical-composition idiom of SHARPE).
#[derive(Clone)]
pub struct HierarchicalTree {
    tree: FaultTree,
    /// `models[i]` supplies the probability of basic event `i` at time `t`
    /// as its *unreliability*.
    models: Vec<Arc<dyn ReliabilityModel + Send + Sync>>,
}

impl std::fmt::Debug for HierarchicalTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchicalTree")
            .field("events", &self.tree.num_events())
            .finish()
    }
}

impl HierarchicalTree {
    /// Binds one model per basic event, in event order.
    ///
    /// # Panics
    ///
    /// Panics if the count does not match the tree's events.
    pub fn new(tree: FaultTree, models: Vec<Arc<dyn ReliabilityModel + Send + Sync>>) -> Self {
        assert_eq!(
            models.len(),
            tree.num_events(),
            "one model per basic event required"
        );
        HierarchicalTree { tree, models }
    }

    /// The wrapped tree.
    pub fn tree(&self) -> &FaultTree {
        &self.tree
    }
}

impl HierarchicalTree {
    /// Birnbaum importance of each basic event at mission time `t_hours`,
    /// paired with the event's name.
    pub fn birnbaum_at(&self, t_hours: f64) -> Vec<(String, f64)> {
        let probs: Vec<f64> = self
            .models
            .iter()
            .map(|m| m.unreliability(t_hours).clamp(0.0, 1.0))
            .collect();
        self.tree
            .birnbaum_importance(&probs)
            .into_iter()
            .enumerate()
            .map(|(i, imp)| (self.tree.event_name(EventId(i)).to_string(), imp))
            .collect()
    }
}

impl ReliabilityModel for HierarchicalTree {
    fn reliability(&self, t_hours: f64) -> f64 {
        let probs: Vec<f64> = self
            .models
            .iter()
            .map(|m| m.unreliability(t_hours).clamp(0.0, 1.0))
            .collect();
        1.0 - self.tree.top_probability(&probs)
    }
}

// ---------------------------------------------------------------------------
// Reduced ordered BDD engine.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BddNode {
    var: usize,
    lo: u32,
    hi: u32,
}

#[derive(Debug, Clone)]
struct Bdd {
    nodes: Vec<BddNode>,
    unique: HashMap<BddNode, u32>,
    and_cache: HashMap<(u32, u32), u32>,
    or_cache: HashMap<(u32, u32), u32>,
    not_cache: HashMap<u32, u32>,
}

impl Bdd {
    const FALSE: u32 = 0;
    const TRUE: u32 = 1;
    const TERMINAL_VAR: usize = usize::MAX;

    fn new() -> Self {
        let terminal = |v| BddNode {
            var: Self::TERMINAL_VAR,
            lo: v,
            hi: v,
        };
        Bdd {
            nodes: vec![terminal(0), terminal(1)],
            unique: HashMap::new(),
            and_cache: HashMap::new(),
            or_cache: HashMap::new(),
            not_cache: HashMap::new(),
        }
    }

    fn mk(&mut self, var: usize, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        let node = BddNode { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    fn var(&mut self, v: usize) -> u32 {
        self.mk(v, Self::FALSE, Self::TRUE)
    }

    fn var_of(&self, f: u32) -> usize {
        self.nodes[f as usize].var
    }

    fn cofactors(&self, f: u32, v: usize) -> (u32, u32) {
        let n = self.nodes[f as usize];
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    fn and(&mut self, f: u32, g: u32) -> u32 {
        match (f, g) {
            (Self::FALSE, _) | (_, Self::FALSE) => return Self::FALSE,
            (Self::TRUE, x) | (x, Self::TRUE) => return x,
            _ if f == g => return f,
            _ => {}
        }
        let key = (f.min(g), f.max(g));
        if let Some(&r) = self.and_cache.get(&key) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g));
        let (flo, fhi) = self.cofactors(f, v);
        let (glo, ghi) = self.cofactors(g, v);
        let lo = self.and(flo, glo);
        let hi = self.and(fhi, ghi);
        let r = self.mk(v, lo, hi);
        self.and_cache.insert(key, r);
        r
    }

    fn or(&mut self, f: u32, g: u32) -> u32 {
        match (f, g) {
            (Self::TRUE, _) | (_, Self::TRUE) => return Self::TRUE,
            (Self::FALSE, x) | (x, Self::FALSE) => return x,
            _ if f == g => return f,
            _ => {}
        }
        let key = (f.min(g), f.max(g));
        if let Some(&r) = self.or_cache.get(&key) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g));
        let (flo, fhi) = self.cofactors(f, v);
        let (glo, ghi) = self.cofactors(g, v);
        let lo = self.or(flo, glo);
        let hi = self.or(fhi, ghi);
        let r = self.mk(v, lo, hi);
        self.or_cache.insert(key, r);
        r
    }

    fn not(&mut self, f: u32) -> u32 {
        match f {
            Self::FALSE => return Self::TRUE,
            Self::TRUE => return Self::FALSE,
            _ => {}
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let n = self.nodes[f as usize];
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(f, r);
        r
    }

    fn ite(&mut self, f: u32, g: u32, h: u32) -> u32 {
        let fg = self.and(f, g);
        let nf = self.not(f);
        let nfh = self.and(nf, h);
        self.or(fg, nfh)
    }

    /// BDD for "at least `k` of these functions are true".
    fn at_least(&mut self, k: usize, fns: &[u32]) -> u32 {
        fn rec(
            bdd: &mut Bdd,
            k: usize,
            idx: usize,
            fns: &[u32],
            memo: &mut HashMap<(usize, usize), u32>,
        ) -> u32 {
            if k == 0 {
                return Bdd::TRUE;
            }
            if fns.len() - idx < k {
                return Bdd::FALSE;
            }
            if let Some(&r) = memo.get(&(k, idx)) {
                return r;
            }
            let with = rec(bdd, k - 1, idx + 1, fns, memo);
            let without = rec(bdd, k, idx + 1, fns, memo);
            let r = bdd.ite(fns[idx], with, without);
            memo.insert((k, idx), r);
            r
        }
        let mut memo = HashMap::new();
        rec(self, k, 0, fns, &mut memo)
    }

    fn probability(&self, f: u32, probs: &[f64], memo: &mut HashMap<u32, f64>) -> f64 {
        match f {
            Self::FALSE => return 0.0,
            Self::TRUE => return 1.0,
            _ => {}
        }
        if let Some(&p) = memo.get(&f) {
            return p;
        }
        let n = self.nodes[f as usize];
        let p_var = probs[n.var];
        let p = p_var * self.probability(n.hi, probs, memo)
            + (1.0 - p_var) * self.probability(n.lo, probs, memo);
        memo.insert(f, p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Exponential;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn or_gate_probability() {
        let mut b = FaultTreeBuilder::new();
        let e1 = b.basic_event("a");
        let e2 = b.basic_event("b");
        let top = b.or(vec![e1, e2]);
        let t = b.build(top);
        assert_close(t.top_probability(&[0.1, 0.2]), 1.0 - 0.9 * 0.8, 1e-12);
    }

    #[test]
    fn and_gate_probability() {
        let mut b = FaultTreeBuilder::new();
        let e1 = b.basic_event("a");
        let e2 = b.basic_event("b");
        let top = b.and(vec![e1, e2]);
        let t = b.build(top);
        assert_close(t.top_probability(&[0.1, 0.2]), 0.02, 1e-12);
    }

    #[test]
    fn k_of_n_gate() {
        let mut b = FaultTreeBuilder::new();
        let es: Vec<GateId> = (0..4).map(|i| b.basic_event(format!("e{i}"))).collect();
        let top = b.k_of_n(2, es);
        let t = b.build(top);
        // 2+ of 4 events with p=0.5 each: 1 - C(4,0)q⁴ - C(4,1)pq³ = 11/16.
        assert_close(t.top_probability(&[0.5; 4]), 11.0 / 16.0, 1e-12);
    }

    #[test]
    fn shared_event_not_double_counted() {
        // top = (A AND B) OR (A AND C): with independence-naive arithmetic,
        // P = 1 - (1-p_AB)(1-p_AC) would be wrong. Exact:
        // P = P(A and (B or C)) = pa (pb + pc - pb pc).
        let mut b = FaultTreeBuilder::new();
        let a1 = b.basic_event("A");
        let bb = b.basic_event("B");
        let cc = b.basic_event("C");
        let a2 = b.shared_event(EventId(0));
        let g1 = b.and(vec![a1, bb]);
        let g2 = b.and(vec![a2, cc]);
        let top = b.or(vec![g1, g2]);
        let t = b.build(top);
        let (pa, pb, pc) = (0.3, 0.4, 0.5);
        let exact = pa * (pb + pc - pb * pc);
        assert_close(t.top_probability(&[pa, pb, pc]), exact, 1e-12);
        // And it differs from the naive computation.
        let naive = 1.0 - (1.0 - pa * pb) * (1.0 - pa * pc);
        assert!((exact - naive).abs() > 1e-3);
    }

    #[test]
    fn nested_gates() {
        // top = OR(AND(a,b), c)
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        let bb = b.basic_event("b");
        let c = b.basic_event("c");
        let g = b.and(vec![a, bb]);
        let top = b.or(vec![g, c]);
        let t = b.build(top);
        let p = |pa: f64, pb: f64, pc: f64| pa * pb + pc - pa * pb * pc;
        assert_close(t.top_probability(&[0.2, 0.3, 0.4]), p(0.2, 0.3, 0.4), 1e-12);
    }

    #[test]
    fn degenerate_probabilities() {
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        let bb = b.basic_event("b");
        let top = b.or(vec![a, bb]);
        let t = b.build(top);
        assert_eq!(t.top_probability(&[0.0, 0.0]), 0.0);
        assert_eq!(t.top_probability(&[1.0, 0.0]), 1.0);
        assert_eq!(t.top_probability(&[1.0, 1.0]), 1.0);
    }

    #[test]
    fn hierarchical_tree_is_reliability_model() {
        // Fig. 5: system fails if CU fails OR WN fails, each exponential.
        let mut b = FaultTreeBuilder::new();
        let cu = b.basic_event("cu");
        let wn = b.basic_event("wn");
        let top = b.or(vec![cu, wn]);
        let tree = b.build(top);
        let model = HierarchicalTree::new(
            tree,
            vec![
                Arc::new(Exponential::new(1e-4)),
                Arc::new(Exponential::new(3e-4)),
            ],
        );
        let t = 1000.0;
        // Independent series: R = R_cu · R_wn = e^{-(λ1+λ2)t}.
        assert_close(model.reliability(t), (-(4e-4) * t).exp(), 1e-12);
        assert_close(model.reliability(0.0), 1.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "wrong probability count")]
    fn probability_vector_length_checked() {
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        let t = b.build(a);
        t.top_probability(&[0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn k_of_n_validates() {
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        b.k_of_n(2, vec![a]);
    }

    #[test]
    fn birnbaum_importance_closed_forms() {
        // top = a OR b: I_B(a) = 1 - p_b, I_B(b) = 1 - p_a.
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        let bb = b.basic_event("b");
        let top = b.or(vec![a, bb]);
        let t = b.build(top);
        let imp = t.birnbaum_importance(&[0.3, 0.1]);
        assert_close(imp[0], 0.9, 1e-12);
        assert_close(imp[1], 0.7, 1e-12);

        // top = a AND b: I_B(a) = p_b.
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        let bb = b.basic_event("b");
        let top = b.and(vec![a, bb]);
        let t = b.build(top);
        let imp = t.birnbaum_importance(&[0.3, 0.1]);
        assert_close(imp[0], 0.1, 1e-12);
        assert_close(imp[1], 0.3, 1e-12);
    }

    #[test]
    fn hierarchical_importance_identifies_bottleneck() {
        // Less reliable subsystem in an OR tree → its *event probability*
        // is higher but its Birnbaum importance is lower (the other event
        // becomes the differentiator); together, probability × importance
        // ranks contributions. Here we just check the values.
        let mut b = FaultTreeBuilder::new();
        let cu = b.basic_event("cu");
        let wn = b.basic_event("wn");
        let top = b.or(vec![cu, wn]);
        let tree = b.build(top);
        let model = HierarchicalTree::new(
            tree,
            vec![
                Arc::new(Exponential::new(1e-5)),
                Arc::new(Exponential::new(1e-4)),
            ],
        );
        let imp = model.birnbaum_at(8760.0);
        assert_eq!(imp[0].0, "cu");
        // I_B(cu) = R_wn, I_B(wn) = R_cu:
        assert_close(imp[0].1, (-1e-4f64 * 8760.0).exp(), 1e-12);
        assert_close(imp[1].1, (-1e-5f64 * 8760.0).exp(), 1e-12);
        // The criticality (probability × importance) of the weak subsystem
        // dominates:
        let crit_cu = (1.0 - (-1e-5f64 * 8760.0).exp()) * imp[0].1;
        let crit_wn = (1.0 - (-1e-4f64 * 8760.0).exp()) * imp[1].1;
        assert!(crit_wn > crit_cu);
    }

    #[test]
    fn large_k_of_n_is_tractable() {
        // 8-of-16 shared structure stays small thanks to hash-consing.
        let mut b = FaultTreeBuilder::new();
        let events: Vec<GateId> = (0..16).map(|i| b.basic_event(format!("e{i}"))).collect();
        let top = b.k_of_n(8, events);
        let t = b.build(top);
        let p = t.top_probability(&[0.5; 16]);
        // Symmetric: P(X ≥ 8), X ~ Bin(16, 0.5) = (1 + C(16,8)/2^16)/2.
        let c168 = 12870.0;
        let expect = 0.5 + c168 / 2f64.powi(17);
        assert_close(p, expect, 1e-12);
    }
}
