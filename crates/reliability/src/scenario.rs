//! The scenario DSL: declarative fault campaigns, one plain-text file each.
//!
//! De Florio & Deconinck's REL argues that fault scenarios and recovery
//! strategies should be an explicit, testable *language* separate from
//! the functional code. This module is the language half of that idea —
//! a sibling of the SHARPE-style [`crate::lang`] parser: a line-oriented
//! syntax that declares, per scenario, the campaign family, trial count
//! and seed, family parameters (or, for `cluster` scenarios, a full
//! topology / fault-plan / contract declaration), and an acceptance
//! clause with an optional golden digest pin.
//!
//! Parsing produces a typed [`ScenarioSpec`] with every probability
//! range-checked at parse time; the compiler onto the executable
//! campaign runners lives downstream (in `nlft-bbw`), keeping this
//! crate dependency-free. [`format_scenario`] renders the canonical
//! form; `format → parse` round-trips every spec to an identical AST,
//! which the zoo property test pins.
//!
//! ```
//! use nlft_reliability::scenario::{parse_scenario, FamilyParams};
//!
//! let spec = parse_scenario(
//!     "scenario smoke\n\
//!      family net_storm\n\
//!      trials 4\n\
//!      seed 0x5708\n\
//!      params\n\
//!        cycles 20\n\
//!      end\n\
//!      end\n",
//! )
//! .unwrap();
//! assert_eq!(spec.name, "smoke");
//! assert!(matches!(spec.params, FamilyParams::NetStorm { cycles: 20, .. }));
//! ```

use std::fmt;
use std::fmt::Write as _;

/// A parse error with its 1-based line and column, plus a "did you
/// mean" hint when an unknown keyword is close to a known one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (character offset) of the offending token.
    pub col: usize,
    /// Description, including any suggestion.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ScenarioError {}

/// The six stations of the reference brake-by-wire cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeName {
    /// Pedal-side central unit A.
    CuA,
    /// Pedal-side central unit B.
    CuB,
    /// Front-left wheel node.
    WheelFl,
    /// Front-right wheel node.
    WheelFr,
    /// Rear-left wheel node.
    WheelRl,
    /// Rear-right wheel node.
    WheelRr,
}

impl NodeName {
    /// All six nodes in slot order.
    pub const ALL: [NodeName; 6] = [
        NodeName::CuA,
        NodeName::CuB,
        NodeName::WheelFl,
        NodeName::WheelFr,
        NodeName::WheelRl,
        NodeName::WheelRr,
    ];

    /// The DSL keyword for this node.
    pub fn keyword(self) -> &'static str {
        match self {
            NodeName::CuA => "cu_a",
            NodeName::CuB => "cu_b",
            NodeName::WheelFl => "wheel_fl",
            NodeName::WheelFr => "wheel_fr",
            NodeName::WheelRl => "wheel_rl",
            NodeName::WheelRr => "wheel_rr",
        }
    }
}

/// How a cluster station is built: one core, or two cores sharing their
/// brake state through a lock-based or LEFT-RS resource protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The stock single-core station.
    SingleCore,
    /// Dual-core with per-resource spin locks (a mid-section core death
    /// is fatal).
    DualCoreLock,
    /// Dual-core with LEFT-RS lock-free sections (rides a core death
    /// out).
    DualCoreLeftRs,
}

impl NodeKind {
    fn keyword(self) -> &'static str {
        match self {
            NodeKind::SingleCore => "single_core",
            NodeKind::DualCoreLock => "dual_core_lock",
            NodeKind::DualCoreLeftRs => "dual_core_left_rs",
        }
    }
}

/// The pedal-demand profile driving a cluster scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PedalSpec {
    /// A constant demand in force counts.
    Constant(u32),
    /// `min(base + slope * cycle, max)` — an emergency-braking ramp.
    Ramp {
        /// Demand at cycle 0.
        base: u32,
        /// Increase per cycle.
        slope: u32,
        /// Saturation value.
        max: u32,
    },
}

/// A sensor-channel fault in a cluster scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorFaultSpec {
    /// The channel reports a constant value.
    StuckAt(u32),
    /// The channel reports truth plus a constant offset (counts).
    Offset(i64),
    /// The channel's error grows by this many counts per cycle.
    Drift(i64),
    /// The reading jitters within `truth ± amplitude` for `cycles`.
    Noise {
        /// Peak deviation in counts.
        amplitude: u32,
        /// Burst length in cycles.
        cycles: u32,
    },
}

/// A wheel-actuator fault in a cluster scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuatorFaultSpec {
    /// The actuator freezes at its current force.
    Stuck,
    /// The actuator drives toward full force by `step` counts per cycle.
    Runaway {
        /// Force increase per cycle.
        step: u32,
    },
    /// The servo nulls at `demand + 4 * offset`.
    Offset(i64),
}

/// One declarative fault-plan line of a cluster scenario. Each line
/// compiles onto one existing injector: the network plan
/// (`storm` / `rates` / `dynamic` / `blackout`), the machine-level
/// SWIFI faults (`transient` / `stuck_at` / `intermittent` /
/// `core_death`), or the value-domain fault hooks
/// (`sensor` / `actuator` / `silence`).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultLine {
    /// Storm-profile rates on every node, scaled by `intensity`, active
    /// in cycles `[from, until)`.
    Storm {
        /// Storm intensity in `[0, 1]`.
        intensity: f64,
        /// First active cycle (inclusive).
        from: u32,
        /// First inactive cycle (`u32::MAX` = to the end).
        until: u32,
    },
    /// Explicit per-node rates (unlisted rates are zero).
    Rates {
        /// The node the rates apply to.
        node: NodeName,
        /// Per-cycle frame-corruption probability.
        corruption: f64,
        /// Per-cycle slot-omission probability.
        omission: f64,
        /// Per-cycle crash probability.
        crash: f64,
        /// Per-cycle babbling-idiot probability.
        babble: f64,
        /// Per-cycle masquerade probability.
        masquerade: f64,
        /// Per-cycle clock-glitch probability.
        clock_glitch: f64,
    },
    /// Dynamic-segment duplication / reorder rates.
    Dynamic {
        /// Per-cycle duplication probability.
        dup: f64,
        /// Per-cycle reorder probability.
        reorder: f64,
    },
    /// A correlated blackout resetting the listed nodes.
    Blackout {
        /// Cycle in which the burst hits.
        at: u32,
        /// Minimum down time per victim, in cycles.
        down: u32,
        /// Upper bound of the per-victim extra down time.
        stagger: u32,
        /// The victims.
        nodes: Vec<NodeName>,
    },
    /// One machine-level transient (drawn from the CPU-only SEU space)
    /// on a node, at a declared placement.
    Transient {
        /// Victim node.
        node: NodeName,
        /// Cluster cycle in which the fault strikes.
        cycle: u32,
        /// TEM copy index hit (0 or 1).
        copy: u32,
        /// Machine-cycle offset within the copy.
        at: u64,
    },
    /// A permanent stuck-at-one PC bit on a node.
    StuckAtPc {
        /// Victim node.
        node: NodeName,
        /// The stuck bit index (0–31).
        bit: u32,
    },
    /// A recurring burst of PC transients on a node.
    Intermittent {
        /// Victim node.
        node: NodeName,
        /// Per-job recurrence probability inside the burst.
        recurrence: f64,
        /// Burst length in jobs.
        burst: u32,
    },
    /// A core-death fault on a (dual-core) node.
    CoreDeath {
        /// Victim node.
        node: NodeName,
        /// Cluster cycle of the death.
        cycle: u32,
        /// Orderly escalated fail-silence instead of a hard crash.
        escalated: bool,
    },
    /// A pedal-sensor channel fault.
    Sensor {
        /// Channel index (0–2).
        channel: u32,
        /// The fault.
        fault: SensorFaultSpec,
        /// Onset cycle.
        onset: u32,
    },
    /// A wheel-actuator fault.
    Actuator {
        /// Wheel index (0 = FL, 1 = FR, 2 = RL, 3 = RR).
        wheel: u32,
        /// The fault.
        fault: ActuatorFaultSpec,
        /// Onset cycle.
        onset: u32,
    },
    /// Force a node silent for a window of cycles.
    Silence {
        /// Victim node.
        node: NodeName,
        /// Cycles of silence.
        cycles: u32,
    },
}

/// The full declaration of a `cluster` scenario: topology, fault plan
/// and per-wheel weakly-hard service contracts.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Communication cycles per trial.
    pub cycles: u32,
    /// Pedal-demand profile.
    pub pedal: PedalSpec,
    /// Non-default node kinds (unlisted nodes are single-core).
    pub nodes: Vec<(NodeName, NodeKind)>,
    /// Enable the TTP/C-style startup protocol.
    pub startup: bool,
    /// Put every node under α-count supervision with the default
    /// escalation policy.
    pub supervise: bool,
    /// The declarative fault plan, in declaration order.
    pub faults: Vec<FaultLine>,
    /// Per-wheel `(m, k)` service contracts (FL, FR, RL, RR); `None`
    /// keeps the cluster defaults (front 1-in-8, rear 2-in-8).
    pub contracts: Option<[(u32, u32); 4]>,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            cycles: 30,
            pedal: PedalSpec::Constant(1200),
            nodes: Vec::new(),
            startup: false,
            supervise: false,
            faults: Vec::new(),
            contracts: None,
        }
    }
}

/// Family-specific parameters, defaults mirroring each campaign's stock
/// constructor so a scenario file only states its overrides.
#[derive(Debug, Clone, PartialEq)]
pub enum FamilyParams {
    /// The six-node network-storm campaign.
    NetStorm {
        /// Communication cycles per trial.
        cycles: u32,
        /// Storm intensity in `[0, 1]`.
        intensity: f64,
        /// Also inject one machine-level transient per trial.
        node_faults: bool,
    },
    /// The value-domain (sensor / command / actuator) campaign.
    ValueDomain {
        /// Communication cycles per trial.
        cycles: u32,
        /// Combined storm mode instead of single-fault coverage mode.
        combined: bool,
        /// Network storm intensity (combined mode only).
        net_intensity: f64,
    },
    /// The correlated-blackout survival campaign.
    Blackout {
        /// Healthy cycles before the blackout.
        warmup: u32,
        /// Cycles observed after the blackout.
        recovery: u32,
        /// Base reset duration per victim.
        down: u32,
        /// Maximum extra per-victim down time.
        stagger: u32,
        /// Minimum victims per trial.
        min_reset: u32,
        /// Whether the central units are in the victim pool.
        include_cus: bool,
    },
    /// The diagnosis / recovery-escalation campaign.
    Recovery {
        /// Communication cycles per trial (≥ 30).
        cycles: u32,
    },
    /// The weakly-hard miss-pattern storm campaign.
    WeaklyHard {
        /// Brake-controller jobs per trial (≤ 64).
        horizon_jobs: u32,
        /// Tolerated misses per window (`m`).
        max_misses: u32,
        /// Window length in jobs (`k`).
        window: u32,
        /// Fault inter-arrival lower bound, µs (inclusive).
        interval_lo: u64,
        /// Fault inter-arrival upper bound, µs (exclusive).
        interval_hi: u64,
        /// Release to zero force on a miss instead of holding the last
        /// commanded force.
        zero_force: bool,
    },
    /// The multicore core-death campaign.
    Multicore {
        /// Cores per node (≥ 2).
        cores: u32,
        /// Executive horizon in ticks (µs).
        horizon: u64,
        /// Probability a death is escalated fail-silence.
        escalated_p: f64,
    },
    /// The node-level SWIFI parameter-estimation campaign.
    Node {
        /// Light-weight NLFT policy instead of fail-silent.
        lightweight_nlft: bool,
    },
    /// A free-form cluster scenario.
    Cluster(ClusterSpec),
}

impl FamilyParams {
    /// The family keyword.
    pub fn family(&self) -> &'static str {
        match self {
            FamilyParams::NetStorm { .. } => "net_storm",
            FamilyParams::ValueDomain { .. } => "value_domain",
            FamilyParams::Blackout { .. } => "blackout",
            FamilyParams::Recovery { .. } => "recovery",
            FamilyParams::WeaklyHard { .. } => "weakly_hard",
            FamilyParams::Multicore { .. } => "multicore",
            FamilyParams::Node { .. } => "node",
            FamilyParams::Cluster(_) => "cluster",
        }
    }

    fn defaults(family: &str) -> Option<FamilyParams> {
        Some(match family {
            "net_storm" => FamilyParams::NetStorm {
                cycles: 30,
                intensity: 0.3,
                node_faults: true,
            },
            "value_domain" => FamilyParams::ValueDomain {
                cycles: 30,
                combined: false,
                net_intensity: 0.0,
            },
            "blackout" => FamilyParams::Blackout {
                warmup: 6,
                recovery: 40,
                down: 2,
                stagger: 2,
                min_reset: 2,
                include_cus: true,
            },
            "recovery" => FamilyParams::Recovery { cycles: 40 },
            "weakly_hard" => FamilyParams::WeaklyHard {
                horizon_jobs: 64,
                max_misses: 2,
                window: 8,
                interval_lo: 40,
                interval_hi: 160,
                zero_force: false,
            },
            "multicore" => FamilyParams::Multicore {
                cores: 2,
                horizon: 4_000,
                escalated_p: 0.25,
            },
            "node" => FamilyParams::Node {
                lightweight_nlft: true,
            },
            "cluster" => FamilyParams::Cluster(ClusterSpec::default()),
            _ => return None,
        })
    }
}

const FAMILIES: [&str; 8] = [
    "net_storm",
    "value_domain",
    "blackout",
    "recovery",
    "weakly_hard",
    "multicore",
    "node",
    "cluster",
];

/// The acceptance clause: what the campaign outcome must look like for
/// the scenario to pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AcceptSpec {
    /// Golden CRC-32 digest of the canonical outcome rendering; `None`
    /// means unpinned (print-only).
    pub pin: Option<u32>,
    /// Exact expected counts for named verdicts.
    pub verdicts: Vec<(String, u64)>,
    /// Verdicts or metrics that must be zero (e.g. silent failures).
    pub require_zero: Vec<String>,
    /// Ceilings on named metrics (e.g. braking-distance excess).
    pub max: Vec<(String, u64)>,
}

/// One parsed scenario: the typed AST the campaign compiler consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (the `scenario` header word).
    pub name: String,
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Master seed; every trial forks a labelled stream off it, so the
    /// outcome is bit-identical at any thread count.
    pub seed: u64,
    /// Family selection plus its parameters.
    pub params: FamilyParams,
    /// The acceptance clause.
    pub accept: AcceptSpec,
}

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

/// Classic dynamic-programming edit distance, for keyword hints.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The closest candidate within edit distance 2, if any.
fn suggest<'a>(word: &str, candidates: &[&'a str]) -> Option<&'a str> {
    candidates
        .iter()
        .copied()
        .map(|c| (levenshtein(word, c), c))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

fn err(line: usize, col: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        col,
        message: message.into(),
    }
}

/// An "unknown keyword" error with a did-you-mean hint when one is close.
fn unknown(line: usize, col: usize, what: &str, word: &str, candidates: &[&str]) -> ScenarioError {
    let mut message = format!("unknown {what} `{word}`");
    if let Some(s) = suggest(word, candidates) {
        let _ = write!(message, " — did you mean `{s}`?");
    } else {
        let _ = write!(message, " (expected one of: {})", candidates.join(", "));
    }
    err(line, col, message)
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Token<'a> {
    line: usize,
    col: usize,
    text: &'a str,
}

/// One non-empty source line as tokens (comments stripped).
#[derive(Debug, Clone)]
struct Line<'a> {
    no: usize,
    tokens: Vec<Token<'a>>,
}

fn tokenize(source: &str) -> Vec<Line<'_>> {
    let mut lines = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let no = idx + 1;
        let mut tokens = Vec::new();
        let mut start = None;
        for (ci, ch) in raw.chars().chain(std::iter::once(' ')).enumerate() {
            if ch == '#' {
                if let Some(s) = start {
                    tokens.push(Token {
                        line: no,
                        col: s + 1,
                        text: &raw[byte_of(raw, s)..byte_of(raw, ci)],
                    });
                }
                break;
            }
            if ch.is_whitespace() {
                if let Some(s) = start.take() {
                    tokens.push(Token {
                        line: no,
                        col: s + 1,
                        text: &raw[byte_of(raw, s)..byte_of(raw, ci)],
                    });
                }
            } else if start.is_none() {
                start = Some(ci);
            }
        }
        if !tokens.is_empty() {
            lines.push(Line { no, tokens });
        }
    }
    lines
}

/// Byte offset of the `i`-th character of `s`.
fn byte_of(s: &str, i: usize) -> usize {
    s.char_indices().nth(i).map(|(b, _)| b).unwrap_or(s.len())
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    lines: Vec<Line<'a>>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn next_line(&mut self) -> Option<&Line<'a>> {
        let line = self.lines.get(self.pos)?;
        self.pos += 1;
        Some(line)
    }

    fn last_line_no(&self) -> usize {
        self.lines.last().map_or(1, |l| l.no)
    }
}

fn parse_u64(t: &Token<'_>) -> Result<u64, ScenarioError> {
    let text = t.text;
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        text.replace('_', "").parse().ok()
    };
    parsed.ok_or_else(|| err(t.line, t.col, format!("expected an integer, got `{text}`")))
}

fn parse_u32(t: &Token<'_>) -> Result<u32, ScenarioError> {
    let v = parse_u64(t)?;
    u32::try_from(v).map_err(|_| {
        err(
            t.line,
            t.col,
            format!("`{}` does not fit in 32 bits", t.text),
        )
    })
}

fn parse_i64(t: &Token<'_>) -> Result<i64, ScenarioError> {
    t.text.parse().map_err(|_| {
        err(
            t.line,
            t.col,
            format!("expected an integer, got `{}`", t.text),
        )
    })
}

fn parse_f64(t: &Token<'_>) -> Result<f64, ScenarioError> {
    t.text.parse().map_err(|_| {
        err(
            t.line,
            t.col,
            format!("expected a number, got `{}`", t.text),
        )
    })
}

/// Parses a probability: a finite number in `[0, 1]`. NaN and
/// out-of-range values are parse errors, mirroring the typed
/// construction-time validation in the injector crates.
fn parse_probability(t: &Token<'_>) -> Result<f64, ScenarioError> {
    let v = parse_f64(t)?;
    if (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(err(
            t.line,
            t.col,
            format!("`{}` is not a probability in [0, 1]", t.text),
        ))
    }
}

fn parse_on_off(t: &Token<'_>) -> Result<bool, ScenarioError> {
    match t.text {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(unknown(t.line, t.col, "flag value", other, &["on", "off"])),
    }
}

fn parse_node(t: &Token<'_>) -> Result<NodeName, ScenarioError> {
    const NAMES: [&str; 6] = [
        "cu_a", "cu_b", "wheel_fl", "wheel_fr", "wheel_rl", "wheel_rr",
    ];
    NodeName::ALL
        .into_iter()
        .find(|n| n.keyword() == t.text)
        .ok_or_else(|| unknown(t.line, t.col, "node", t.text, &NAMES))
}

/// Fixed-arity operand access: `line.tokens[i]` or a typed error.
fn operand<'b, 'a>(
    line: &'b Line<'a>,
    i: usize,
    what: &str,
) -> Result<&'b Token<'a>, ScenarioError> {
    line.tokens.get(i).ok_or_else(|| {
        let last = line.tokens.last().expect("non-empty line");
        err(
            line.no,
            last.col + last.text.chars().count(),
            format!("missing {what}"),
        )
    })
}

fn expect_len(line: &Line<'_>, len: usize) -> Result<(), ScenarioError> {
    if line.tokens.len() > len {
        let t = &line.tokens[len];
        return Err(err(
            t.line,
            t.col,
            format!("unexpected trailing `{}`", t.text),
        ));
    }
    Ok(())
}

/// Parses one scenario file into its typed AST.
///
/// Grammar (line-oriented, `#` comments, sections closed by `end`):
///
/// ```text
/// scenario <name>
///   family <net_storm|value_domain|blackout|recovery|weakly_hard|multicore|node|cluster>
///   trials <n>
///   seed <n|0x..>
///   params ... end          # family parameters (non-cluster)
///   topology ... end        # cluster only
///   faults ... end          # cluster only
///   contracts ... end       # cluster only
///   accept ... end
/// end
/// ```
pub fn parse_scenario(source: &str) -> Result<ScenarioSpec, ScenarioError> {
    let mut p = Parser {
        lines: tokenize(source),
        pos: 0,
    };
    let header = p
        .next_line()
        .cloned()
        .ok_or_else(|| err(1, 1, "empty scenario source"))?;
    if header.tokens[0].text != "scenario" {
        let t = &header.tokens[0];
        return Err(unknown(t.line, t.col, "keyword", t.text, &["scenario"]));
    }
    let name = operand(&header, 1, "scenario name")?.text.to_string();
    expect_len(&header, 2)?;

    let mut trials: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut params: Option<FamilyParams> = None;
    let mut accept: Option<AcceptSpec> = None;
    let mut closed = false;

    const TOP_KEYS: [&str; 9] = [
        "family",
        "trials",
        "seed",
        "params",
        "topology",
        "faults",
        "contracts",
        "accept",
        "end",
    ];

    while let Some(line) = p.next_line().cloned() {
        let key = &line.tokens[0];
        match key.text {
            "end" => {
                expect_len(&line, 1)?;
                closed = true;
                break;
            }
            "family" => {
                let t = operand(&line, 1, "family name")?;
                let fam = FamilyParams::defaults(t.text)
                    .ok_or_else(|| unknown(t.line, t.col, "family", t.text, &FAMILIES))?;
                expect_len(&line, 2)?;
                if params.is_some() {
                    return Err(err(key.line, key.col, "family declared twice"));
                }
                params = Some(fam);
            }
            "trials" => {
                trials = Some(parse_u64(operand(&line, 1, "trial count")?)?);
                expect_len(&line, 2)?;
            }
            "seed" => {
                seed = Some(parse_u64(operand(&line, 1, "seed")?)?);
                expect_len(&line, 2)?;
            }
            "params" => {
                expect_len(&line, 1)?;
                let fam = params.as_mut().ok_or_else(|| {
                    err(key.line, key.col, "`params` before `family` declaration")
                })?;
                parse_params(&mut p, fam)?;
            }
            "topology" | "faults" | "contracts" => {
                expect_len(&line, 1)?;
                let fam = params.as_mut().ok_or_else(|| {
                    err(
                        key.line,
                        key.col,
                        format!("`{}` before `family` declaration", key.text),
                    )
                })?;
                let FamilyParams::Cluster(cluster) = fam else {
                    return Err(err(
                        key.line,
                        key.col,
                        format!(
                            "`{}` sections only apply to `family cluster` scenarios",
                            key.text
                        ),
                    ));
                };
                match key.text {
                    "topology" => parse_topology(&mut p, cluster)?,
                    "faults" => parse_faults(&mut p, cluster)?,
                    _ => parse_contracts(&mut p, cluster)?,
                }
            }
            "accept" => {
                expect_len(&line, 1)?;
                if accept.is_some() {
                    return Err(err(key.line, key.col, "accept declared twice"));
                }
                accept = Some(parse_accept(&mut p)?);
            }
            other => {
                return Err(unknown(key.line, key.col, "keyword", other, &TOP_KEYS));
            }
        }
    }
    if !closed {
        return Err(err(p.last_line_no(), 1, "missing closing `end`"));
    }
    if let Some(line) = p.next_line() {
        let t = &line.tokens[0];
        return Err(err(
            t.line,
            t.col,
            format!("trailing content `{}` after scenario", t.text),
        ));
    }
    let params = params.ok_or_else(|| err(header.tokens[0].line, 1, "missing `family`"))?;
    Ok(ScenarioSpec {
        name,
        trials: trials.ok_or_else(|| err(header.tokens[0].line, 1, "missing `trials`"))?,
        seed: seed.ok_or_else(|| err(header.tokens[0].line, 1, "missing `seed`"))?,
        params,
        accept: accept.unwrap_or_default(),
    })
}

fn parse_params(p: &mut Parser<'_>, fam: &mut FamilyParams) -> Result<(), ScenarioError> {
    if matches!(fam, FamilyParams::Cluster(_)) {
        let no = p.lines.get(p.pos.saturating_sub(1)).map_or(1, |l| l.no);
        return Err(err(
            no,
            1,
            "cluster scenarios declare `topology` / `faults` / `contracts`, not `params`",
        ));
    }
    while let Some(line) = p.next_line().cloned() {
        let key = &line.tokens[0];
        if key.text == "end" {
            expect_len(&line, 1)?;
            return Ok(());
        }
        match fam {
            FamilyParams::NetStorm {
                cycles,
                intensity,
                node_faults,
            } => match key.text {
                "cycles" => *cycles = parse_u32(operand(&line, 1, "cycle count")?)?,
                "intensity" => *intensity = parse_probability(operand(&line, 1, "intensity")?)?,
                "node_faults" => *node_faults = parse_on_off(operand(&line, 1, "on/off")?)?,
                other => {
                    return Err(unknown(
                        key.line,
                        key.col,
                        "net_storm parameter",
                        other,
                        &["cycles", "intensity", "node_faults", "end"],
                    ))
                }
            },
            FamilyParams::ValueDomain {
                cycles,
                combined,
                net_intensity,
            } => match key.text {
                "cycles" => *cycles = parse_u32(operand(&line, 1, "cycle count")?)?,
                "mode" => {
                    let t = operand(&line, 1, "mode")?;
                    *combined = match t.text {
                        "single_fault" => false,
                        "combined_storm" => true,
                        other => {
                            return Err(unknown(
                                t.line,
                                t.col,
                                "mode",
                                other,
                                &["single_fault", "combined_storm"],
                            ))
                        }
                    };
                }
                "net_intensity" => {
                    *net_intensity = parse_probability(operand(&line, 1, "intensity")?)?
                }
                other => {
                    return Err(unknown(
                        key.line,
                        key.col,
                        "value_domain parameter",
                        other,
                        &["cycles", "mode", "net_intensity", "end"],
                    ))
                }
            },
            FamilyParams::Blackout {
                warmup,
                recovery,
                down,
                stagger,
                min_reset,
                include_cus,
            } => match key.text {
                "warmup" => *warmup = parse_u32(operand(&line, 1, "cycle count")?)?,
                "recovery" => *recovery = parse_u32(operand(&line, 1, "cycle count")?)?,
                "down" => *down = parse_u32(operand(&line, 1, "cycle count")?)?,
                "stagger" => *stagger = parse_u32(operand(&line, 1, "cycle count")?)?,
                "min_reset" => *min_reset = parse_u32(operand(&line, 1, "victim count")?)?,
                "include_cus" => *include_cus = parse_on_off(operand(&line, 1, "on/off")?)?,
                other => {
                    return Err(unknown(
                        key.line,
                        key.col,
                        "blackout parameter",
                        other,
                        &[
                            "warmup",
                            "recovery",
                            "down",
                            "stagger",
                            "min_reset",
                            "include_cus",
                            "end",
                        ],
                    ))
                }
            },
            FamilyParams::Recovery { cycles } => match key.text {
                "cycles" => *cycles = parse_u32(operand(&line, 1, "cycle count")?)?,
                other => {
                    return Err(unknown(
                        key.line,
                        key.col,
                        "recovery parameter",
                        other,
                        &["cycles", "end"],
                    ))
                }
            },
            FamilyParams::WeaklyHard {
                horizon_jobs,
                max_misses,
                window,
                interval_lo,
                interval_hi,
                zero_force,
            } => match key.text {
                "horizon_jobs" => *horizon_jobs = parse_u32(operand(&line, 1, "job count")?)?,
                "contract" => {
                    *max_misses = parse_u32(operand(&line, 1, "m")?)?;
                    *window = parse_u32(operand(&line, 2, "k")?)?;
                    expect_len(&line, 3)?;
                }
                "interval" => {
                    *interval_lo = parse_u64(operand(&line, 1, "lower bound")?)?;
                    *interval_hi = parse_u64(operand(&line, 2, "upper bound")?)?;
                    expect_len(&line, 3)?;
                }
                "policy" => {
                    let t = operand(&line, 1, "policy")?;
                    *zero_force = match t.text {
                        "hold_last" => false,
                        "zero_force" => true,
                        other => {
                            return Err(unknown(
                                t.line,
                                t.col,
                                "miss policy",
                                other,
                                &["hold_last", "zero_force"],
                            ))
                        }
                    };
                }
                other => {
                    return Err(unknown(
                        key.line,
                        key.col,
                        "weakly_hard parameter",
                        other,
                        &["horizon_jobs", "contract", "interval", "policy", "end"],
                    ))
                }
            },
            FamilyParams::Multicore {
                cores,
                horizon,
                escalated_p,
            } => match key.text {
                "cores" => *cores = parse_u32(operand(&line, 1, "core count")?)?,
                "horizon" => *horizon = parse_u64(operand(&line, 1, "tick count")?)?,
                "escalated_p" => {
                    *escalated_p = parse_probability(operand(&line, 1, "probability")?)?
                }
                other => {
                    return Err(unknown(
                        key.line,
                        key.col,
                        "multicore parameter",
                        other,
                        &["cores", "horizon", "escalated_p", "end"],
                    ))
                }
            },
            FamilyParams::Node { lightweight_nlft } => match key.text {
                "policy" => {
                    let t = operand(&line, 1, "policy")?;
                    *lightweight_nlft = match t.text {
                        "fail_silent" => false,
                        "lightweight_nlft" => true,
                        other => {
                            return Err(unknown(
                                t.line,
                                t.col,
                                "node policy",
                                other,
                                &["fail_silent", "lightweight_nlft"],
                            ))
                        }
                    };
                }
                other => {
                    return Err(unknown(
                        key.line,
                        key.col,
                        "node parameter",
                        other,
                        &["policy", "end"],
                    ))
                }
            },
            FamilyParams::Cluster(_) => unreachable!("rejected above"),
        }
        // Single-operand keys were length-checked by the match arms that
        // consume more; check the common 2-token shape here.
        if !matches!(key.text, "contract" | "interval") {
            expect_len(&line, 2)?;
        }
    }
    Err(err(p.last_line_no(), 1, "unterminated `params` section"))
}

fn parse_topology(p: &mut Parser<'_>, cluster: &mut ClusterSpec) -> Result<(), ScenarioError> {
    while let Some(line) = p.next_line().cloned() {
        let key = &line.tokens[0];
        match key.text {
            "end" => {
                expect_len(&line, 1)?;
                return Ok(());
            }
            "cycles" => {
                cluster.cycles = parse_u32(operand(&line, 1, "cycle count")?)?;
                expect_len(&line, 2)?;
            }
            "pedal" => {
                let t = operand(&line, 1, "pedal profile")?;
                cluster.pedal = match t.text {
                    "constant" => {
                        let v = parse_u32(operand(&line, 2, "force")?)?;
                        expect_len(&line, 3)?;
                        PedalSpec::Constant(v)
                    }
                    "ramp" => {
                        let base = parse_u32(operand(&line, 2, "base")?)?;
                        let slope = parse_u32(operand(&line, 3, "slope")?)?;
                        let max = parse_u32(operand(&line, 4, "max")?)?;
                        expect_len(&line, 5)?;
                        PedalSpec::Ramp { base, slope, max }
                    }
                    other => {
                        return Err(unknown(
                            t.line,
                            t.col,
                            "pedal profile",
                            other,
                            &["constant", "ramp"],
                        ))
                    }
                };
            }
            "node" => {
                let node = parse_node(operand(&line, 1, "node name")?)?;
                let t = operand(&line, 2, "node kind")?;
                let kind = [
                    NodeKind::SingleCore,
                    NodeKind::DualCoreLock,
                    NodeKind::DualCoreLeftRs,
                ]
                .into_iter()
                .find(|k| k.keyword() == t.text)
                .ok_or_else(|| {
                    unknown(
                        t.line,
                        t.col,
                        "node kind",
                        t.text,
                        &["single_core", "dual_core_lock", "dual_core_left_rs"],
                    )
                })?;
                expect_len(&line, 3)?;
                cluster.nodes.push((node, kind));
            }
            "startup" => {
                cluster.startup = parse_on_off(operand(&line, 1, "on/off")?)?;
                expect_len(&line, 2)?;
            }
            "supervise" => {
                cluster.supervise = parse_on_off(operand(&line, 1, "on/off")?)?;
                expect_len(&line, 2)?;
            }
            other => {
                return Err(unknown(
                    key.line,
                    key.col,
                    "topology keyword",
                    other,
                    &["cycles", "pedal", "node", "startup", "supervise", "end"],
                ))
            }
        }
    }
    Err(err(p.last_line_no(), 1, "unterminated `topology` section"))
}

fn parse_faults(p: &mut Parser<'_>, cluster: &mut ClusterSpec) -> Result<(), ScenarioError> {
    const KEYS: [&str; 12] = [
        "storm",
        "rates",
        "dynamic",
        "blackout",
        "transient",
        "stuck_at",
        "intermittent",
        "core_death",
        "sensor",
        "actuator",
        "silence",
        "end",
    ];
    while let Some(line) = p.next_line().cloned() {
        let key = &line.tokens[0];
        let fault = match key.text {
            "end" => {
                expect_len(&line, 1)?;
                return Ok(());
            }
            "storm" => {
                let intensity = parse_probability(operand(&line, 1, "intensity")?)?;
                let mut from = 0u32;
                let mut until = u32::MAX;
                let mut i = 2;
                while i < line.tokens.len() {
                    let t = &line.tokens[i];
                    match t.text {
                        "from" => {
                            from = parse_u32(operand(&line, i + 1, "cycle")?)?;
                            i += 2;
                        }
                        "until" => {
                            until = parse_u32(operand(&line, i + 1, "cycle")?)?;
                            i += 2;
                        }
                        other => {
                            return Err(unknown(
                                t.line,
                                t.col,
                                "storm option",
                                other,
                                &["from", "until"],
                            ))
                        }
                    }
                }
                FaultLine::Storm {
                    intensity,
                    from,
                    until,
                }
            }
            "rates" => {
                let node = parse_node(operand(&line, 1, "node name")?)?;
                let mut rates = [0.0f64; 6];
                const FIELDS: [&str; 6] = [
                    "corruption",
                    "omission",
                    "crash",
                    "babble",
                    "masquerade",
                    "clock_glitch",
                ];
                let mut i = 2;
                while i < line.tokens.len() {
                    let t = &line.tokens[i];
                    let Some(slot) = FIELDS.iter().position(|f| *f == t.text) else {
                        return Err(unknown(t.line, t.col, "rate field", t.text, &FIELDS));
                    };
                    rates[slot] = parse_probability(operand(&line, i + 1, "rate")?)?;
                    i += 2;
                }
                FaultLine::Rates {
                    node,
                    corruption: rates[0],
                    omission: rates[1],
                    crash: rates[2],
                    babble: rates[3],
                    masquerade: rates[4],
                    clock_glitch: rates[5],
                }
            }
            "dynamic" => {
                let dup = parse_probability(operand(&line, 1, "dup rate")?)?;
                let reorder = parse_probability(operand(&line, 2, "reorder rate")?)?;
                expect_len(&line, 3)?;
                FaultLine::Dynamic { dup, reorder }
            }
            "blackout" => {
                let at = parse_u32(operand(&line, 1, "cycle")?)?;
                let down = parse_u32(operand(&line, 2, "down cycles")?)?;
                let stagger = parse_u32(operand(&line, 3, "stagger")?)?;
                let mut nodes = Vec::new();
                for t in &line.tokens[4..] {
                    nodes.push(parse_node(t)?);
                }
                if nodes.is_empty() {
                    return Err(err(key.line, key.col, "blackout without victim nodes"));
                }
                FaultLine::Blackout {
                    at,
                    down,
                    stagger,
                    nodes,
                }
            }
            "transient" => {
                let node = parse_node(operand(&line, 1, "node name")?)?;
                let cycle = parse_u32(operand(&line, 2, "cycle")?)?;
                let copy = parse_u32(operand(&line, 3, "copy index")?)?;
                let at = parse_u64(operand(&line, 4, "machine cycle")?)?;
                expect_len(&line, 5)?;
                FaultLine::Transient {
                    node,
                    cycle,
                    copy,
                    at,
                }
            }
            "stuck_at" => {
                let node = parse_node(operand(&line, 1, "node name")?)?;
                let bit = parse_u32(operand(&line, 2, "bit index")?)?;
                if bit >= 32 {
                    let t = &line.tokens[2];
                    return Err(err(t.line, t.col, format!("bit index {bit} outside 0–31")));
                }
                expect_len(&line, 3)?;
                FaultLine::StuckAtPc { node, bit }
            }
            "intermittent" => {
                let node = parse_node(operand(&line, 1, "node name")?)?;
                let recurrence = parse_probability(operand(&line, 2, "recurrence")?)?;
                let burst = parse_u32(operand(&line, 3, "burst length")?)?;
                expect_len(&line, 4)?;
                FaultLine::Intermittent {
                    node,
                    recurrence,
                    burst,
                }
            }
            "core_death" => {
                let node = parse_node(operand(&line, 1, "node name")?)?;
                let cycle = parse_u32(operand(&line, 2, "cycle")?)?;
                let escalated = if let Some(t) = line.tokens.get(3) {
                    if t.text != "escalated" {
                        return Err(unknown(
                            t.line,
                            t.col,
                            "core_death option",
                            t.text,
                            &["escalated"],
                        ));
                    }
                    expect_len(&line, 4)?;
                    true
                } else {
                    false
                };
                FaultLine::CoreDeath {
                    node,
                    cycle,
                    escalated,
                }
            }
            "sensor" => {
                let channel = parse_u32(operand(&line, 1, "channel index")?)?;
                let t = operand(&line, 2, "sensor fault kind")?;
                let (fault, onset_idx) = match t.text {
                    "stuck_at" => (
                        SensorFaultSpec::StuckAt(parse_u32(operand(&line, 3, "value")?)?),
                        4,
                    ),
                    "offset" => (
                        SensorFaultSpec::Offset(parse_i64(operand(&line, 3, "offset")?)?),
                        4,
                    ),
                    "drift" => (
                        SensorFaultSpec::Drift(parse_i64(operand(&line, 3, "per-cycle drift")?)?),
                        4,
                    ),
                    "noise" => (
                        SensorFaultSpec::Noise {
                            amplitude: parse_u32(operand(&line, 3, "amplitude")?)?,
                            cycles: parse_u32(operand(&line, 4, "burst cycles")?)?,
                        },
                        5,
                    ),
                    other => {
                        return Err(unknown(
                            t.line,
                            t.col,
                            "sensor fault",
                            other,
                            &["stuck_at", "offset", "drift", "noise"],
                        ))
                    }
                };
                let kw = operand(&line, onset_idx, "`onset`")?;
                if kw.text != "onset" {
                    return Err(unknown(kw.line, kw.col, "keyword", kw.text, &["onset"]));
                }
                let onset = parse_u32(operand(&line, onset_idx + 1, "onset cycle")?)?;
                expect_len(&line, onset_idx + 2)?;
                FaultLine::Sensor {
                    channel,
                    fault,
                    onset,
                }
            }
            "actuator" => {
                let wheel = parse_u32(operand(&line, 1, "wheel index")?)?;
                let t = operand(&line, 2, "actuator fault kind")?;
                let (fault, onset_idx) = match t.text {
                    "stuck" => (ActuatorFaultSpec::Stuck, 3),
                    "runaway" => (
                        ActuatorFaultSpec::Runaway {
                            step: parse_u32(operand(&line, 3, "step")?)?,
                        },
                        4,
                    ),
                    "offset" => (
                        ActuatorFaultSpec::Offset(parse_i64(operand(&line, 3, "offset")?)?),
                        4,
                    ),
                    other => {
                        return Err(unknown(
                            t.line,
                            t.col,
                            "actuator fault",
                            other,
                            &["stuck", "runaway", "offset"],
                        ))
                    }
                };
                let kw = operand(&line, onset_idx, "`onset`")?;
                if kw.text != "onset" {
                    return Err(unknown(kw.line, kw.col, "keyword", kw.text, &["onset"]));
                }
                let onset = parse_u32(operand(&line, onset_idx + 1, "onset cycle")?)?;
                expect_len(&line, onset_idx + 2)?;
                FaultLine::Actuator {
                    wheel,
                    fault,
                    onset,
                }
            }
            "silence" => {
                let node = parse_node(operand(&line, 1, "node name")?)?;
                let cycles = parse_u32(operand(&line, 2, "cycle count")?)?;
                expect_len(&line, 3)?;
                FaultLine::Silence { node, cycles }
            }
            other => return Err(unknown(key.line, key.col, "fault keyword", other, &KEYS)),
        };
        cluster.faults.push(fault);
    }
    Err(err(p.last_line_no(), 1, "unterminated `faults` section"))
}

fn parse_contracts(p: &mut Parser<'_>, cluster: &mut ClusterSpec) -> Result<(), ScenarioError> {
    const WHEEL_KEYS: [&str; 4] = ["fl", "fr", "rl", "rr"];
    let mut contracts = cluster
        .contracts
        .unwrap_or([(1, 8), (1, 8), (2, 8), (2, 8)]);
    while let Some(line) = p.next_line().cloned() {
        let key = &line.tokens[0];
        match key.text {
            "end" => {
                expect_len(&line, 1)?;
                cluster.contracts = Some(contracts);
                return Ok(());
            }
            "wheel" => {
                let t = operand(&line, 1, "wheel name")?;
                let idx = WHEEL_KEYS
                    .iter()
                    .position(|w| *w == t.text)
                    .ok_or_else(|| unknown(t.line, t.col, "wheel", t.text, &WHEEL_KEYS))?;
                let m = parse_u32(operand(&line, 2, "m")?)?;
                let k = parse_u32(operand(&line, 3, "k")?)?;
                if k == 0 || m >= k {
                    let t = &line.tokens[2];
                    return Err(err(
                        t.line,
                        t.col,
                        format!("({m},{k}) is not a valid weakly-hard contract"),
                    ));
                }
                expect_len(&line, 4)?;
                contracts[idx] = (m, k);
            }
            other => {
                return Err(unknown(
                    key.line,
                    key.col,
                    "contracts keyword",
                    other,
                    &["wheel", "end"],
                ))
            }
        }
    }
    Err(err(p.last_line_no(), 1, "unterminated `contracts` section"))
}

fn parse_accept(p: &mut Parser<'_>) -> Result<AcceptSpec, ScenarioError> {
    let mut accept = AcceptSpec::default();
    while let Some(line) = p.next_line().cloned() {
        let key = &line.tokens[0];
        match key.text {
            "end" => {
                expect_len(&line, 1)?;
                return Ok(accept);
            }
            "pin" => {
                let t = operand(&line, 1, "digest")?;
                let v = parse_u64(t)?;
                let v = u32::try_from(v)
                    .map_err(|_| err(t.line, t.col, "digest does not fit in 32 bits"))?;
                expect_len(&line, 2)?;
                accept.pin = Some(v);
            }
            "verdict" => {
                let name = operand(&line, 1, "verdict name")?.text.to_string();
                let count = parse_u64(operand(&line, 2, "count")?)?;
                expect_len(&line, 3)?;
                accept.verdicts.push((name, count));
            }
            "require_zero" => {
                let name = operand(&line, 1, "verdict or metric name")?
                    .text
                    .to_string();
                expect_len(&line, 2)?;
                accept.require_zero.push(name);
            }
            "max" => {
                let name = operand(&line, 1, "metric name")?.text.to_string();
                let v = parse_u64(operand(&line, 2, "ceiling")?)?;
                expect_len(&line, 3)?;
                accept.max.push((name, v));
            }
            other => {
                return Err(unknown(
                    key.line,
                    key.col,
                    "accept keyword",
                    other,
                    &["pin", "verdict", "require_zero", "max", "end"],
                ))
            }
        }
    }
    Err(err(p.last_line_no(), 1, "unterminated `accept` section"))
}

// ---------------------------------------------------------------------
// Formatter
// ---------------------------------------------------------------------

/// Renders the canonical form of a scenario. `format → parse` yields an
/// AST equal to the input — the round-trip property the zoo test pins.
pub fn format_scenario(spec: &ScenarioSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario {}", spec.name);
    let _ = writeln!(out, "  family {}", spec.params.family());
    let _ = writeln!(out, "  trials {}", spec.trials);
    let _ = writeln!(out, "  seed 0x{:x}", spec.seed);
    match &spec.params {
        FamilyParams::NetStorm {
            cycles,
            intensity,
            node_faults,
        } => {
            let _ = writeln!(out, "  params");
            let _ = writeln!(out, "    cycles {cycles}");
            let _ = writeln!(out, "    intensity {intensity}");
            let _ = writeln!(out, "    node_faults {}", on_off(*node_faults));
            let _ = writeln!(out, "  end");
        }
        FamilyParams::ValueDomain {
            cycles,
            combined,
            net_intensity,
        } => {
            let _ = writeln!(out, "  params");
            let _ = writeln!(out, "    cycles {cycles}");
            let _ = writeln!(
                out,
                "    mode {}",
                if *combined {
                    "combined_storm"
                } else {
                    "single_fault"
                }
            );
            let _ = writeln!(out, "    net_intensity {net_intensity}");
            let _ = writeln!(out, "  end");
        }
        FamilyParams::Blackout {
            warmup,
            recovery,
            down,
            stagger,
            min_reset,
            include_cus,
        } => {
            let _ = writeln!(out, "  params");
            let _ = writeln!(out, "    warmup {warmup}");
            let _ = writeln!(out, "    recovery {recovery}");
            let _ = writeln!(out, "    down {down}");
            let _ = writeln!(out, "    stagger {stagger}");
            let _ = writeln!(out, "    min_reset {min_reset}");
            let _ = writeln!(out, "    include_cus {}", on_off(*include_cus));
            let _ = writeln!(out, "  end");
        }
        FamilyParams::Recovery { cycles } => {
            let _ = writeln!(out, "  params");
            let _ = writeln!(out, "    cycles {cycles}");
            let _ = writeln!(out, "  end");
        }
        FamilyParams::WeaklyHard {
            horizon_jobs,
            max_misses,
            window,
            interval_lo,
            interval_hi,
            zero_force,
        } => {
            let _ = writeln!(out, "  params");
            let _ = writeln!(out, "    horizon_jobs {horizon_jobs}");
            let _ = writeln!(out, "    contract {max_misses} {window}");
            let _ = writeln!(out, "    interval {interval_lo} {interval_hi}");
            let _ = writeln!(
                out,
                "    policy {}",
                if *zero_force {
                    "zero_force"
                } else {
                    "hold_last"
                }
            );
            let _ = writeln!(out, "  end");
        }
        FamilyParams::Multicore {
            cores,
            horizon,
            escalated_p,
        } => {
            let _ = writeln!(out, "  params");
            let _ = writeln!(out, "    cores {cores}");
            let _ = writeln!(out, "    horizon {horizon}");
            let _ = writeln!(out, "    escalated_p {escalated_p}");
            let _ = writeln!(out, "  end");
        }
        FamilyParams::Node { lightweight_nlft } => {
            let _ = writeln!(out, "  params");
            let _ = writeln!(
                out,
                "    policy {}",
                if *lightweight_nlft {
                    "lightweight_nlft"
                } else {
                    "fail_silent"
                }
            );
            let _ = writeln!(out, "  end");
        }
        FamilyParams::Cluster(cluster) => format_cluster(&mut out, cluster),
    }
    format_accept(&mut out, &spec.accept);
    let _ = writeln!(out, "end");
    out
}

fn on_off(v: bool) -> &'static str {
    if v {
        "on"
    } else {
        "off"
    }
}

fn format_cluster(out: &mut String, cluster: &ClusterSpec) {
    let _ = writeln!(out, "  topology");
    let _ = writeln!(out, "    cycles {}", cluster.cycles);
    match cluster.pedal {
        PedalSpec::Constant(v) => {
            let _ = writeln!(out, "    pedal constant {v}");
        }
        PedalSpec::Ramp { base, slope, max } => {
            let _ = writeln!(out, "    pedal ramp {base} {slope} {max}");
        }
    }
    for &(node, kind) in &cluster.nodes {
        let _ = writeln!(out, "    node {} {}", node.keyword(), kind.keyword());
    }
    let _ = writeln!(out, "    startup {}", on_off(cluster.startup));
    let _ = writeln!(out, "    supervise {}", on_off(cluster.supervise));
    let _ = writeln!(out, "  end");
    if !cluster.faults.is_empty() {
        let _ = writeln!(out, "  faults");
        for fault in &cluster.faults {
            format_fault(out, fault);
        }
        let _ = writeln!(out, "  end");
    }
    if let Some(contracts) = cluster.contracts {
        let _ = writeln!(out, "  contracts");
        for (idx, name) in ["fl", "fr", "rl", "rr"].iter().enumerate() {
            let (m, k) = contracts[idx];
            let _ = writeln!(out, "    wheel {name} {m} {k}");
        }
        let _ = writeln!(out, "  end");
    }
}

fn format_fault(out: &mut String, fault: &FaultLine) {
    match fault {
        FaultLine::Storm {
            intensity,
            from,
            until,
        } => {
            let _ = write!(out, "    storm {intensity}");
            if *from != 0 {
                let _ = write!(out, " from {from}");
            }
            if *until != u32::MAX {
                let _ = write!(out, " until {until}");
            }
            let _ = writeln!(out);
        }
        FaultLine::Rates {
            node,
            corruption,
            omission,
            crash,
            babble,
            masquerade,
            clock_glitch,
        } => {
            let _ = write!(out, "    rates {}", node.keyword());
            for (name, v) in [
                ("corruption", corruption),
                ("omission", omission),
                ("crash", crash),
                ("babble", babble),
                ("masquerade", masquerade),
                ("clock_glitch", clock_glitch),
            ] {
                if *v != 0.0 {
                    let _ = write!(out, " {name} {v}");
                }
            }
            let _ = writeln!(out);
        }
        FaultLine::Dynamic { dup, reorder } => {
            let _ = writeln!(out, "    dynamic {dup} {reorder}");
        }
        FaultLine::Blackout {
            at,
            down,
            stagger,
            nodes,
        } => {
            let _ = write!(out, "    blackout {at} {down} {stagger}");
            for n in nodes {
                let _ = write!(out, " {}", n.keyword());
            }
            let _ = writeln!(out);
        }
        FaultLine::Transient {
            node,
            cycle,
            copy,
            at,
        } => {
            let _ = writeln!(out, "    transient {} {cycle} {copy} {at}", node.keyword());
        }
        FaultLine::StuckAtPc { node, bit } => {
            let _ = writeln!(out, "    stuck_at {} {bit}", node.keyword());
        }
        FaultLine::Intermittent {
            node,
            recurrence,
            burst,
        } => {
            let _ = writeln!(
                out,
                "    intermittent {} {recurrence} {burst}",
                node.keyword()
            );
        }
        FaultLine::CoreDeath {
            node,
            cycle,
            escalated,
        } => {
            let _ = write!(out, "    core_death {} {cycle}", node.keyword());
            if *escalated {
                let _ = write!(out, " escalated");
            }
            let _ = writeln!(out);
        }
        FaultLine::Sensor {
            channel,
            fault,
            onset,
        } => {
            let _ = write!(out, "    sensor {channel}");
            match fault {
                SensorFaultSpec::StuckAt(v) => {
                    let _ = write!(out, " stuck_at {v}");
                }
                SensorFaultSpec::Offset(v) => {
                    let _ = write!(out, " offset {v}");
                }
                SensorFaultSpec::Drift(v) => {
                    let _ = write!(out, " drift {v}");
                }
                SensorFaultSpec::Noise { amplitude, cycles } => {
                    let _ = write!(out, " noise {amplitude} {cycles}");
                }
            }
            let _ = writeln!(out, " onset {onset}");
        }
        FaultLine::Actuator {
            wheel,
            fault,
            onset,
        } => {
            let _ = write!(out, "    actuator {wheel}");
            match fault {
                ActuatorFaultSpec::Stuck => {
                    let _ = write!(out, " stuck");
                }
                ActuatorFaultSpec::Runaway { step } => {
                    let _ = write!(out, " runaway {step}");
                }
                ActuatorFaultSpec::Offset(v) => {
                    let _ = write!(out, " offset {v}");
                }
            }
            let _ = writeln!(out, " onset {onset}");
        }
        FaultLine::Silence { node, cycles } => {
            let _ = writeln!(out, "    silence {} {cycles}", node.keyword());
        }
    }
}

fn format_accept(out: &mut String, accept: &AcceptSpec) {
    let empty = accept.pin.is_none()
        && accept.verdicts.is_empty()
        && accept.require_zero.is_empty()
        && accept.max.is_empty();
    if empty {
        return;
    }
    let _ = writeln!(out, "  accept");
    for (name, count) in &accept.verdicts {
        let _ = writeln!(out, "    verdict {name} {count}");
    }
    for name in &accept.require_zero {
        let _ = writeln!(out, "    require_zero {name}");
    }
    for (name, v) in &accept.max {
        let _ = writeln!(out, "    max {name} {v}");
    }
    if let Some(pin) = accept.pin {
        let _ = writeln!(out, "    pin 0x{pin:08x}");
    }
    let _ = writeln!(out, "  end");
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = "\
# a comment
scenario smoke
  family net_storm
  trials 10
  seed 0x5708
  params
    cycles 20
    intensity 0.3
    node_faults on
  end
  accept
    verdict service_lost 1
    require_zero split_membership
    max guardian_blocks 100
    pin 0xdeadbeef
  end
end
";

    #[test]
    fn parses_net_storm_scenario() {
        let spec = parse_scenario(SMOKE).unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.trials, 10);
        assert_eq!(spec.seed, 0x5708);
        assert_eq!(
            spec.params,
            FamilyParams::NetStorm {
                cycles: 20,
                intensity: 0.3,
                node_faults: true,
            }
        );
        assert_eq!(spec.accept.pin, Some(0xdead_beef));
        assert_eq!(spec.accept.verdicts, vec![("service_lost".into(), 1)]);
        assert_eq!(
            spec.accept.require_zero,
            vec!["split_membership".to_string()]
        );
        assert_eq!(spec.accept.max, vec![("guardian_blocks".into(), 100)]);
    }

    #[test]
    fn defaults_mirror_campaign_constructors() {
        let spec = parse_scenario("scenario d\nfamily multicore\ntrials 4\nseed 1\nend\n").unwrap();
        assert_eq!(
            spec.params,
            FamilyParams::Multicore {
                cores: 2,
                horizon: 4_000,
                escalated_p: 0.25,
            }
        );
    }

    #[test]
    fn unknown_keyword_gets_line_col_and_hint() {
        let e = parse_scenario(
            "scenario x\nfamily net_storm\ntrials 1\nseed 1\nparams\n  cycels 20\nend\nend\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 6);
        assert_eq!(e.col, 3);
        assert!(e.message.contains("did you mean `cycles`?"), "{e}");
    }

    #[test]
    fn unknown_family_gets_hint() {
        let e =
            parse_scenario("scenario x\nfamily net_strom\ntrials 1\nseed 1\nend\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 8);
        assert!(e.message.contains("did you mean `net_storm`?"), "{e}");
    }

    #[test]
    fn out_of_range_probability_rejected_at_parse_time() {
        let e = parse_scenario(
            "scenario x\nfamily net_storm\ntrials 1\nseed 1\nparams\nintensity 1.5\nend\nend\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 6);
        assert!(e.message.contains("not a probability"), "{e}");
        let e = parse_scenario(
            "scenario x\nfamily net_storm\ntrials 1\nseed 1\nparams\nintensity NaN\nend\nend\n",
        )
        .unwrap_err();
        assert!(e.message.contains("not a probability"), "{e}");
    }

    #[test]
    fn cluster_sections_rejected_for_campaign_families() {
        let e =
            parse_scenario("scenario x\nfamily recovery\ntrials 1\nseed 1\ntopology\nend\nend\n")
                .unwrap_err();
        assert!(e.message.contains("family cluster"), "{e}");
    }

    #[test]
    fn cluster_round_trips_through_formatter() {
        let source = "\
scenario kitchen-sink
  family cluster
  trials 6
  seed 0xabc
  topology
    cycles 32
    pedal ramp 400 60 3500
    node wheel_fl dual_core_left_rs
    node wheel_fr dual_core_lock
    startup on
    supervise on
  end
  faults
    storm 0.45 from 5 until 14
    rates cu_a masquerade 0.2 babble 0.1
    dynamic 0.05 0.1
    blackout 8 3 1 wheel_fl wheel_fr
    transient wheel_rl 4 1 20
    stuck_at wheel_rr 20
    intermittent wheel_rl 0.9 12
    core_death wheel_fl 10 escalated
    sensor 0 drift 3 onset 5
    sensor 1 noise 300 6 onset 4
    actuator 2 runaway 60 onset 6
    silence cu_b 4
  end
  contracts
    wheel fl 1 8
    wheel rr 3 8
  end
  accept
    require_zero undetected
    pin 0x00000001
  end
end
";
        let spec = parse_scenario(source).unwrap();
        let formatted = format_scenario(&spec);
        let reparsed = parse_scenario(&formatted).unwrap();
        assert_eq!(spec, reparsed, "format → parse must round-trip the AST");
        let FamilyParams::Cluster(cluster) = &spec.params else {
            panic!("expected cluster");
        };
        assert_eq!(cluster.faults.len(), 12);
        assert_eq!(
            cluster.contracts,
            Some([(1, 8), (1, 8), (2, 8), (3, 8)]),
            "unlisted wheels keep the default contracts"
        );
    }

    #[test]
    fn every_family_round_trips() {
        for family in FAMILIES {
            let source = format!("scenario f\nfamily {family}\ntrials 3\nseed 0x9\nend\n");
            let spec = parse_scenario(&source).unwrap();
            let reparsed = parse_scenario(&format_scenario(&spec)).unwrap();
            assert_eq!(spec, reparsed, "{family}");
        }
    }

    #[test]
    fn missing_end_reported() {
        let e = parse_scenario("scenario x\nfamily recovery\ntrials 1\nseed 1\n").unwrap_err();
        assert!(e.message.contains("missing closing `end`"), "{e}");
    }

    #[test]
    fn trailing_content_rejected() {
        let e = parse_scenario("scenario x\nfamily recovery\ntrials 1\nseed 1\nend\nscenario y\n")
            .unwrap_err();
        assert_eq!(e.line, 6);
        assert!(e.message.contains("trailing content"), "{e}");
    }

    #[test]
    fn vacuous_contract_rejected() {
        let e = parse_scenario(
            "scenario x\nfamily cluster\ntrials 1\nseed 1\ncontracts\nwheel fl 8 8\nend\nend\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 6);
        assert!(
            e.message.contains("not a valid weakly-hard contract"),
            "{e}"
        );
    }

    #[test]
    fn display_formats_line_and_col() {
        let e = err(4, 7, "boom");
        assert_eq!(e.to_string(), "line 4, col 7: boom");
    }
}
