//! # nlft-reliability — SHARPE-style dependability analysis
//!
//! The paper evaluates its brake-by-wire architecture with the SHARPE tool:
//! hierarchical models where a fault tree's basic events are Markov chains
//! and reliability block diagrams. This crate reimplements that analysis
//! pipeline from scratch:
//!
//! * [`linalg`] — dense matrices, LU solves and the Padé-13 matrix
//!   exponential (the paper's models are stiff: repairs ~10³/h against
//!   faults ~10⁻⁴/h over one-year horizons);
//! * [`ctmc`] — continuous-time Markov chains: transient solutions (matrix
//!   exponential, cross-checked by uniformization), MTTF and steady state;
//! * [`dtmc`] — absorbing discrete-time chains: expected steps to
//!   absorption and finite-horizon absorption probabilities, used to
//!   validate the kernel's recovery-escalation ladder against campaigns;
//! * [`model`] — the common `R(t)` interface, exponential components and
//!   CTMC adapters, plus numeric MTTF integration;
//! * [`rbd`] — series / parallel / k-of-n reliability block diagrams;
//! * [`faulttree`] — AND/OR/k-of-n fault trees with exact BDD evaluation
//!   (shared events handled correctly) and hierarchical composition;
//! * [`scenario`] — the declarative fault-campaign DSL: one plain-text
//!   file per scenario (topology, fault plan, contracts, acceptance
//!   clause), parsed into a typed [`scenario::ScenarioSpec`].
//!
//! # Examples
//!
//! A duplex subsystem in series with a simplex one (miniature Fig. 5):
//!
//! ```
//! use nlft_reliability::model::{Exponential, ReliabilityModel};
//! use nlft_reliability::rbd::Block;
//!
//! let node = Block::component(Exponential::new(2.0e-4));
//! let duplex = Block::parallel(vec![node.clone(), node.clone()]);
//! let system = Block::series(vec![duplex, node]);
//! let r = system.reliability(8_760.0);
//! assert!(r > 0.0 && r < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctmc;
pub mod dtmc;
pub mod faulttree;
pub mod lang;
pub mod linalg;
pub mod model;
pub mod rbd;
pub mod scenario;

pub use ctmc::{Ctmc, CtmcBuilder, CtmcError, StateId};
pub use dtmc::{AbsorbingDtmc, DtmcError};
pub use faulttree::{EventId, FaultTree, FaultTreeBuilder, HierarchicalTree};
pub use lang::{parse, LangError, ModelSet};
pub use linalg::{LinalgError, Matrix};
pub use model::{mttf_numeric, CoveredModel, CtmcReliability, Exponential, ReliabilityModel};
pub use rbd::Block;
