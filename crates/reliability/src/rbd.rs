//! Reliability block diagrams (RBD).
//!
//! The paper models the full-functionality wheel-node subsystem as four
//! blocks in series (Fig. 8). This module provides series, parallel and
//! k-of-n composition over arbitrary [`ReliabilityModel`]s, including
//! heterogeneous k-of-n via the exact Poisson-binomial recurrence.

use std::sync::Arc;

use crate::model::ReliabilityModel;

/// A block in a reliability block diagram.
///
/// Blocks are cheaply cloneable (components are shared via [`Arc`]), so a
/// subsystem model can appear in several places of a larger diagram.
///
/// # Examples
///
/// ```
/// use nlft_reliability::model::{Exponential, ReliabilityModel};
/// use nlft_reliability::rbd::Block;
///
/// // Four wheel nodes in series (paper Fig. 8).
/// let node = Block::component(Exponential::new(2.0e-4));
/// let subsystem = Block::series(vec![node.clone(), node.clone(), node.clone(), node]);
/// let r = subsystem.reliability(1000.0);
/// assert!((r - (-4.0 * 2.0e-4 * 1000.0f64).exp()).abs() < 1e-12);
/// ```
#[derive(Clone)]
pub enum Block {
    /// A leaf component.
    Component(Arc<dyn ReliabilityModel + Send + Sync>),
    /// All children must work.
    Series(Vec<Block>),
    /// At least one child must work.
    Parallel(Vec<Block>),
    /// At least `k` of the children must work.
    KOfN(usize, Vec<Block>),
}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Block::Component(_) => write!(f, "Component"),
            Block::Series(c) => f.debug_tuple("Series").field(&c.len()).finish(),
            Block::Parallel(c) => f.debug_tuple("Parallel").field(&c.len()).finish(),
            Block::KOfN(k, c) => f.debug_tuple("KOfN").field(k).field(&c.len()).finish(),
        }
    }
}

impl Block {
    /// Wraps a component model as a leaf block.
    pub fn component(model: impl ReliabilityModel + Send + Sync + 'static) -> Block {
        Block::Component(Arc::new(model))
    }

    /// Builds a series arrangement.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty.
    pub fn series(children: Vec<Block>) -> Block {
        assert!(!children.is_empty(), "series needs children");
        Block::Series(children)
    }

    /// Builds a parallel arrangement.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty.
    pub fn parallel(children: Vec<Block>) -> Block {
        assert!(!children.is_empty(), "parallel needs children");
        Block::Parallel(children)
    }

    /// Builds a k-of-n arrangement.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty or `k` exceeds their number.
    pub fn k_of_n(k: usize, children: Vec<Block>) -> Block {
        assert!(!children.is_empty(), "k-of-n needs children");
        assert!(k >= 1 && k <= children.len(), "k out of range");
        Block::KOfN(k, children)
    }
}

impl ReliabilityModel for Block {
    fn reliability(&self, t_hours: f64) -> f64 {
        match self {
            Block::Component(m) => m.reliability(t_hours),
            Block::Series(children) => children.iter().map(|c| c.reliability(t_hours)).product(),
            Block::Parallel(children) => {
                1.0 - children
                    .iter()
                    .map(|c| 1.0 - c.reliability(t_hours))
                    .product::<f64>()
            }
            Block::KOfN(k, children) => {
                // Poisson-binomial: dp[j] = P(exactly j of the first i work).
                let mut dp = vec![0.0; children.len() + 1];
                dp[0] = 1.0;
                for (i, c) in children.iter().enumerate() {
                    let p = c.reliability(t_hours);
                    for j in (0..=i).rev() {
                        dp[j + 1] += dp[j] * p;
                        dp[j] *= 1.0 - p;
                    }
                }
                dp[*k..].iter().sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Exponential;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    /// A deterministic component with fixed reliability, for exact tests.
    #[derive(Debug, Clone, Copy)]
    struct Fixed(f64);
    impl ReliabilityModel for Fixed {
        fn reliability(&self, _t: f64) -> f64 {
            self.0
        }
    }

    #[test]
    fn series_multiplies() {
        let b = Block::series(vec![
            Block::component(Fixed(0.9)),
            Block::component(Fixed(0.8)),
        ]);
        assert_close(b.reliability(1.0), 0.72, 1e-12);
    }

    #[test]
    fn parallel_complements() {
        let b = Block::parallel(vec![
            Block::component(Fixed(0.9)),
            Block::component(Fixed(0.8)),
        ]);
        assert_close(b.reliability(1.0), 1.0 - 0.1 * 0.2, 1e-12);
    }

    #[test]
    fn k_of_n_homogeneous_matches_binomial() {
        // 3-of-4 with p=0.9: C(4,3) p³q + p⁴.
        let p = 0.9f64;
        let children = vec![Block::component(Fixed(p)); 4];
        let b = Block::k_of_n(3, children);
        let expect = 4.0 * p.powi(3) * (1.0 - p) + p.powi(4);
        assert_close(b.reliability(0.0), expect, 1e-12);
    }

    #[test]
    fn k_of_n_heterogeneous_exact() {
        // 2-of-3 with p = 0.9, 0.8, 0.7:
        // P = p1p2q3 + p1q2p3 + q1p2p3 + p1p2p3
        let b = Block::k_of_n(
            2,
            vec![
                Block::component(Fixed(0.9)),
                Block::component(Fixed(0.8)),
                Block::component(Fixed(0.7)),
            ],
        );
        let expect = 0.9 * 0.8 * 0.3 + 0.9 * 0.2 * 0.7 + 0.1 * 0.8 * 0.7 + 0.9 * 0.8 * 0.7;
        assert_close(b.reliability(0.0), expect, 1e-12);
    }

    #[test]
    fn one_of_n_equals_parallel_and_n_of_n_equals_series() {
        let mk = || {
            vec![
                Block::component(Fixed(0.85)),
                Block::component(Fixed(0.6)),
                Block::component(Fixed(0.99)),
            ]
        };
        let p1 = Block::k_of_n(1, mk()).reliability(0.0);
        let p2 = Block::parallel(mk()).reliability(0.0);
        assert_close(p1, p2, 1e-12);
        let s1 = Block::k_of_n(3, mk()).reliability(0.0);
        let s2 = Block::series(mk()).reliability(0.0);
        assert_close(s1, s2, 1e-12);
    }

    #[test]
    fn paper_fig8_series_of_exponentials() {
        let node = Block::component(Exponential::new(2.002e-4));
        let wn = Block::series(vec![node.clone(), node.clone(), node.clone(), node]);
        let t = 8760.0;
        assert_close(wn.reliability(t), (-4.0 * 2.002e-4 * t).exp(), 1e-12);
    }

    #[test]
    fn nested_composition() {
        // Two duplex pairs in series: (A ∥ A) – (B ∥ B).
        let a = Block::component(Fixed(0.9));
        let pair_a = Block::parallel(vec![a.clone(), a]);
        let b = Block::component(Fixed(0.8));
        let pair_b = Block::parallel(vec![b.clone(), b]);
        let sys = Block::series(vec![pair_a, pair_b]);
        let expect = (1.0 - 0.1f64 * 0.1) * (1.0 - 0.2f64 * 0.2);
        assert_close(sys.reliability(0.0), expect, 1e-12);
    }

    #[test]
    fn shared_component_via_clone() {
        let shared = Block::component(Fixed(0.5));
        let sys = Block::series(vec![shared.clone(), shared]);
        // NOTE: RBD composition assumes independence, so the shared block
        // multiplies like any other — dependence modelling belongs to fault
        // trees (BDD). This documents the semantics.
        assert_close(sys.reliability(0.0), 0.25, 1e-12);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn k_of_n_validates_k() {
        Block::k_of_n(4, vec![Block::component(Fixed(0.5)); 3]);
    }

    #[test]
    #[should_panic(expected = "needs children")]
    fn empty_series_rejected() {
        Block::series(vec![]);
    }
}
