//! A SHARPE-style model description language.
//!
//! The paper built its models in the SHARPE tool's input language. This
//! module provides a small, line-oriented dialect covering everything the
//! paper needs — named constants, Markov chains, reliability block
//! diagrams and fault trees, with *hierarchical* references (a block or a
//! basic event may take its reliability from a named Markov model):
//!
//! ```text
//! # the central unit of the BBW system, fail-silent nodes
//! bind lambda_p 1.82e-5
//! bind lambda_t 10 * lambda_p
//! bind cov      0.99
//!
//! markov cu
//!   trans up  pdown  2 * lambda_p * cov
//!   trans up  tdown  2 * lambda_t * cov
//!   trans up  failed 2 * (lambda_p + lambda_t) * (1 - cov)
//!   trans tdown up   1.2e3
//!   trans pdown failed lambda_p + lambda_t
//!   trans tdown failed lambda_p + lambda_t
//!   absorb failed
//!   init up 1
//! end
//!
//! rbd wheels
//!   comp node exp((lambda_p + lambda_t))
//!   kofn sub 3 node node node node
//!   top sub
//! end
//!
//! ftree system
//!   basic cu_fail markov(cu)
//!   basic wn_fail rbd(wheels)
//!   or top_gate cu_fail wn_fail
//!   top top_gate
//! end
//! ```
//!
//! Parse with [`parse`], then evaluate any named model's `R(t)` through
//! [`ModelSet::reliability`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::ctmc::{Ctmc, CtmcBuilder, StateId};
use crate::faulttree::{FaultTreeBuilder, GateId};
use crate::model::{CtmcReliability, Exponential, ReliabilityModel};
use crate::rbd::Block;

/// A parse or semantic error, with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LangError {}

fn err(line: usize, message: impl Into<String>) -> LangError {
    LangError {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Expressions: numbers, identifiers, + - * / and parentheses.
// ---------------------------------------------------------------------------

fn eval_expr(src: &str, bindings: &BTreeMap<String, f64>, line: usize) -> Result<f64, LangError> {
    let tokens = tokenize_expr(src, line)?;
    let mut pos = 0usize;
    let v = parse_sum(&tokens, &mut pos, bindings, line)?;
    if pos != tokens.len() {
        return Err(err(line, format!("trailing tokens in expression `{src}`")));
    }
    Ok(v)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize_expr(src: &str, line: usize) -> Result<Vec<Tok>, LangError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && i > start
                            && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let v: f64 = text
                    .parse()
                    .map_err(|_| err(line, format!("bad number `{text}`")))?;
                out.push(Tok::Num(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(bytes[start..i].iter().collect()));
            }
            other => return Err(err(line, format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

fn parse_sum(
    tokens: &[Tok],
    pos: &mut usize,
    bindings: &BTreeMap<String, f64>,
    line: usize,
) -> Result<f64, LangError> {
    let mut acc = parse_product(tokens, pos, bindings, line)?;
    while *pos < tokens.len() {
        match tokens[*pos] {
            Tok::Plus => {
                *pos += 1;
                acc += parse_product(tokens, pos, bindings, line)?;
            }
            Tok::Minus => {
                *pos += 1;
                acc -= parse_product(tokens, pos, bindings, line)?;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_product(
    tokens: &[Tok],
    pos: &mut usize,
    bindings: &BTreeMap<String, f64>,
    line: usize,
) -> Result<f64, LangError> {
    let mut acc = parse_atom(tokens, pos, bindings, line)?;
    while *pos < tokens.len() {
        match tokens[*pos] {
            Tok::Star => {
                *pos += 1;
                acc *= parse_atom(tokens, pos, bindings, line)?;
            }
            Tok::Slash => {
                *pos += 1;
                let d = parse_atom(tokens, pos, bindings, line)?;
                if d == 0.0 {
                    return Err(err(line, "division by zero in expression"));
                }
                acc /= d;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_atom(
    tokens: &[Tok],
    pos: &mut usize,
    bindings: &BTreeMap<String, f64>,
    line: usize,
) -> Result<f64, LangError> {
    match tokens.get(*pos) {
        Some(Tok::Num(v)) => {
            *pos += 1;
            Ok(*v)
        }
        Some(Tok::Ident(name)) => {
            *pos += 1;
            bindings
                .get(name)
                .copied()
                .ok_or_else(|| err(line, format!("unknown binding `{name}`")))
        }
        Some(Tok::Minus) => {
            *pos += 1;
            Ok(-parse_atom(tokens, pos, bindings, line)?)
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let v = parse_sum(tokens, pos, bindings, line)?;
            if tokens.get(*pos) != Some(&Tok::RParen) {
                return Err(err(line, "missing `)`"));
            }
            *pos += 1;
            Ok(v)
        }
        _ => Err(err(line, "expected number, name or `(`")),
    }
}

// ---------------------------------------------------------------------------
// Model definitions (intermediate form).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct MarkovDef {
    name: String,
    transitions: Vec<(String, String, f64)>,
    absorbing: Vec<String>,
    init: Vec<(String, f64)>,
    line: usize,
}

#[derive(Debug, Clone)]
enum CompRef {
    Exp(f64),
    Markov(String),
    Rbd(String),
}

#[derive(Debug, Clone)]
enum RbdNodeDef {
    Comp(CompRef),
    Series(Vec<String>),
    Parallel(Vec<String>),
    KOfN(usize, Vec<String>),
}

#[derive(Debug, Clone)]
struct RbdDef {
    name: String,
    nodes: Vec<(String, RbdNodeDef, usize)>, // (name, def, line)
    top: Option<(String, usize)>,
    line: usize,
}

#[derive(Debug, Clone)]
enum BasicRef {
    Fixed(f64),
    Markov(String),
    Rbd(String),
}

#[derive(Debug, Clone)]
enum FtNodeDef {
    Basic(BasicRef),
    And(Vec<String>),
    Or(Vec<String>),
    KOfN(usize, Vec<String>),
}

#[derive(Debug, Clone)]
struct FtreeDef {
    name: String,
    nodes: Vec<(String, FtNodeDef, usize)>,
    top: Option<(String, usize)>,
    line: usize,
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

/// Parses a model file into a resolved, evaluable [`ModelSet`].
///
/// # Errors
///
/// Returns the first [`LangError`]: syntax errors, unknown bindings,
/// dangling references, invalid rates or probabilities.
pub fn parse(source: &str) -> Result<ModelSet, LangError> {
    let mut bindings: BTreeMap<String, f64> = BTreeMap::new();
    let mut markovs: Vec<MarkovDef> = Vec::new();
    let mut rbds: Vec<RbdDef> = Vec::new();
    let mut ftrees: Vec<FtreeDef> = Vec::new();

    #[derive(Debug)]
    enum Section {
        TopLevel,
        Markov(MarkovDef),
        Rbd(RbdDef),
        Ftree(FtreeDef),
    }
    let mut section = Section::TopLevel;

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let text = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if text.is_empty() {
            continue;
        }
        let words: Vec<&str> = text.split_whitespace().collect();
        let keyword = words[0];

        match (&mut section, keyword) {
            (Section::TopLevel, "bind") => {
                if words.len() < 3 {
                    return Err(err(line_no, "bind needs a name and an expression"));
                }
                let name = words[1].to_string();
                let expr = words[2..].join(" ");
                let v = eval_expr(&expr, &bindings, line_no)?;
                bindings.insert(name, v);
            }
            (Section::TopLevel, "markov") => {
                if words.len() != 2 {
                    return Err(err(line_no, "markov needs exactly one name"));
                }
                section = Section::Markov(MarkovDef {
                    name: words[1].to_string(),
                    transitions: Vec::new(),
                    absorbing: Vec::new(),
                    init: Vec::new(),
                    line: line_no,
                });
            }
            (Section::TopLevel, "rbd") => {
                if words.len() != 2 {
                    return Err(err(line_no, "rbd needs exactly one name"));
                }
                section = Section::Rbd(RbdDef {
                    name: words[1].to_string(),
                    nodes: Vec::new(),
                    top: None,
                    line: line_no,
                });
            }
            (Section::TopLevel, "ftree") => {
                if words.len() != 2 {
                    return Err(err(line_no, "ftree needs exactly one name"));
                }
                section = Section::Ftree(FtreeDef {
                    name: words[1].to_string(),
                    nodes: Vec::new(),
                    top: None,
                    line: line_no,
                });
            }
            (Section::TopLevel, other) => {
                return Err(err(line_no, format!("unknown top-level keyword `{other}`")))
            }

            (Section::Markov(def), "trans") => {
                if words.len() < 4 {
                    return Err(err(line_no, "trans needs: from to rate-expr"));
                }
                let rate = eval_expr(&words[3..].join(" "), &bindings, line_no)?;
                def.transitions
                    .push((words[1].to_string(), words[2].to_string(), rate));
            }
            (Section::Markov(def), "absorb") => {
                if words.len() < 2 {
                    return Err(err(line_no, "absorb needs at least one state"));
                }
                def.absorbing
                    .extend(words[1..].iter().map(|s| s.to_string()));
            }
            (Section::Markov(def), "init") => {
                if words.len() < 3 {
                    return Err(err(line_no, "init needs: state prob-expr"));
                }
                let p = eval_expr(&words[2..].join(" "), &bindings, line_no)?;
                def.init.push((words[1].to_string(), p));
            }
            (Section::Markov(_), "end") => {
                if let Section::Markov(def) = std::mem::replace(&mut section, Section::TopLevel) {
                    markovs.push(def);
                }
            }
            (Section::Markov(_), other) => {
                return Err(err(line_no, format!("unknown markov keyword `{other}`")))
            }

            (Section::Rbd(def), "comp") => {
                if words.len() < 3 {
                    return Err(err(line_no, "comp needs: name spec"));
                }
                let spec = words[2..].join(" ");
                let comp = parse_comp_ref(&spec, &bindings, line_no)?;
                def.nodes
                    .push((words[1].to_string(), RbdNodeDef::Comp(comp), line_no));
            }
            (Section::Rbd(def), "series") => {
                if words.len() < 3 {
                    return Err(err(line_no, "series needs: name children…"));
                }
                def.nodes.push((
                    words[1].to_string(),
                    RbdNodeDef::Series(words[2..].iter().map(|s| s.to_string()).collect()),
                    line_no,
                ));
            }
            (Section::Rbd(def), "parallel") => {
                if words.len() < 3 {
                    return Err(err(line_no, "parallel needs: name children…"));
                }
                def.nodes.push((
                    words[1].to_string(),
                    RbdNodeDef::Parallel(words[2..].iter().map(|s| s.to_string()).collect()),
                    line_no,
                ));
            }
            (Section::Rbd(def), "kofn") => {
                if words.len() < 4 {
                    return Err(err(line_no, "kofn needs: name k children…"));
                }
                let k: usize = words[2]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad k `{}`", words[2])))?;
                def.nodes.push((
                    words[1].to_string(),
                    RbdNodeDef::KOfN(k, words[3..].iter().map(|s| s.to_string()).collect()),
                    line_no,
                ));
            }
            (Section::Rbd(def), "top") => {
                if words.len() != 2 {
                    return Err(err(line_no, "top needs exactly one node"));
                }
                def.top = Some((words[1].to_string(), line_no));
            }
            (Section::Rbd(_), "end") => {
                if let Section::Rbd(def) = std::mem::replace(&mut section, Section::TopLevel) {
                    rbds.push(def);
                }
            }
            (Section::Rbd(_), other) => {
                return Err(err(line_no, format!("unknown rbd keyword `{other}`")))
            }

            (Section::Ftree(def), "basic") => {
                if words.len() < 3 {
                    return Err(err(line_no, "basic needs: name spec"));
                }
                let spec = words[2..].join(" ");
                let basic = parse_basic_ref(&spec, &bindings, line_no)?;
                def.nodes
                    .push((words[1].to_string(), FtNodeDef::Basic(basic), line_no));
            }
            (Section::Ftree(def), "and") => {
                if words.len() < 3 {
                    return Err(err(line_no, "and needs: name children…"));
                }
                def.nodes.push((
                    words[1].to_string(),
                    FtNodeDef::And(words[2..].iter().map(|s| s.to_string()).collect()),
                    line_no,
                ));
            }
            (Section::Ftree(def), "or") => {
                if words.len() < 3 {
                    return Err(err(line_no, "or needs: name children…"));
                }
                def.nodes.push((
                    words[1].to_string(),
                    FtNodeDef::Or(words[2..].iter().map(|s| s.to_string()).collect()),
                    line_no,
                ));
            }
            (Section::Ftree(def), "kofn") => {
                if words.len() < 4 {
                    return Err(err(line_no, "kofn needs: name k children…"));
                }
                let k: usize = words[2]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad k `{}`", words[2])))?;
                def.nodes.push((
                    words[1].to_string(),
                    FtNodeDef::KOfN(k, words[3..].iter().map(|s| s.to_string()).collect()),
                    line_no,
                ));
            }
            (Section::Ftree(def), "top") => {
                if words.len() != 2 {
                    return Err(err(line_no, "top needs exactly one node"));
                }
                def.top = Some((words[1].to_string(), line_no));
            }
            (Section::Ftree(_), "end") => {
                if let Section::Ftree(def) = std::mem::replace(&mut section, Section::TopLevel) {
                    ftrees.push(def);
                }
            }
            (Section::Ftree(_), other) => {
                return Err(err(line_no, format!("unknown ftree keyword `{other}`")))
            }
        }
    }

    match section {
        Section::TopLevel => {}
        Section::Markov(d) => return Err(err(d.line, format!("markov `{}` missing end", d.name))),
        Section::Rbd(d) => return Err(err(d.line, format!("rbd `{}` missing end", d.name))),
        Section::Ftree(d) => return Err(err(d.line, format!("ftree `{}` missing end", d.name))),
    }

    ModelSet::build(bindings, markovs, rbds, ftrees)
}

/// Parses `exp(expr)`, `markov(name)` or `rbd(name)`.
fn parse_comp_ref(
    spec: &str,
    bindings: &BTreeMap<String, f64>,
    line: usize,
) -> Result<CompRef, LangError> {
    let spec = spec.trim();
    if let Some(inner) = spec.strip_prefix("exp(").and_then(|s| s.strip_suffix(')')) {
        let rate = eval_expr(inner, bindings, line)?;
        if !(rate >= 0.0 && rate.is_finite()) {
            return Err(err(line, format!("invalid rate {rate}")));
        }
        Ok(CompRef::Exp(rate))
    } else if let Some(inner) = spec
        .strip_prefix("markov(")
        .and_then(|s| s.strip_suffix(')'))
    {
        Ok(CompRef::Markov(inner.trim().to_string()))
    } else if let Some(inner) = spec.strip_prefix("rbd(").and_then(|s| s.strip_suffix(')')) {
        Ok(CompRef::Rbd(inner.trim().to_string()))
    } else {
        Err(err(
            line,
            format!("expected exp(…), markov(…) or rbd(…), got `{spec}`"),
        ))
    }
}

/// Parses a fixed probability expression, `markov(name)` or `rbd(name)`.
fn parse_basic_ref(
    spec: &str,
    bindings: &BTreeMap<String, f64>,
    line: usize,
) -> Result<BasicRef, LangError> {
    let spec = spec.trim();
    if let Some(inner) = spec
        .strip_prefix("markov(")
        .and_then(|s| s.strip_suffix(')'))
    {
        Ok(BasicRef::Markov(inner.trim().to_string()))
    } else if let Some(inner) = spec.strip_prefix("rbd(").and_then(|s| s.strip_suffix(')')) {
        Ok(BasicRef::Rbd(inner.trim().to_string()))
    } else {
        let p = eval_expr(spec, bindings, line)?;
        if !(0.0..=1.0).contains(&p) {
            return Err(err(line, format!("probability {p} outside [0,1]")));
        }
        Ok(BasicRef::Fixed(p))
    }
}

// ---------------------------------------------------------------------------
// Resolved model set.
// ---------------------------------------------------------------------------

/// A compiled model in the set.
#[derive(Clone)]
enum Compiled {
    Markov(Arc<CtmcReliability>),
    Rbd(Arc<Block>),
    /// Fault tree with per-event sources (fixed or model-backed).
    Ftree(Arc<CompiledFtree>),
}

struct CompiledFtree {
    tree: crate::faulttree::FaultTree,
    sources: Vec<FtSource>,
}

enum FtSource {
    Fixed(f64),
    Model(Arc<dyn ReliabilityModel + Send + Sync>),
}

impl CompiledFtree {
    fn top_probability(&self, t_hours: f64) -> f64 {
        let probs: Vec<f64> = self
            .sources
            .iter()
            .map(|s| match s {
                FtSource::Fixed(p) => *p,
                FtSource::Model(m) => m.unreliability(t_hours).clamp(0.0, 1.0),
            })
            .collect();
        self.tree.top_probability(&probs)
    }
}

/// A parsed, resolved model file.
pub struct ModelSet {
    bindings: BTreeMap<String, f64>,
    models: BTreeMap<String, Compiled>,
}

impl fmt::Debug for ModelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelSet")
            .field("bindings", &self.bindings.len())
            .field("models", &self.models.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ModelSet {
    fn build(
        bindings: BTreeMap<String, f64>,
        markovs: Vec<MarkovDef>,
        rbds: Vec<RbdDef>,
        ftrees: Vec<FtreeDef>,
    ) -> Result<ModelSet, LangError> {
        let mut models: BTreeMap<String, Compiled> = BTreeMap::new();

        for def in markovs {
            if models.contains_key(&def.name) {
                return Err(err(
                    def.line,
                    format!("duplicate model name `{}`", def.name),
                ));
            }
            let model = compile_markov(&def)?;
            models.insert(def.name.clone(), Compiled::Markov(Arc::new(model)));
        }
        // RBDs may reference markov models (and earlier RBDs).
        for def in rbds {
            if models.contains_key(&def.name) {
                return Err(err(
                    def.line,
                    format!("duplicate model name `{}`", def.name),
                ));
            }
            let block = compile_rbd(&def, &models)?;
            models.insert(def.name.clone(), Compiled::Rbd(Arc::new(block)));
        }
        for def in ftrees {
            if models.contains_key(&def.name) {
                return Err(err(
                    def.line,
                    format!("duplicate model name `{}`", def.name),
                ));
            }
            let ft = compile_ftree(&def, &models)?;
            models.insert(def.name.clone(), Compiled::Ftree(Arc::new(ft)));
        }

        Ok(ModelSet { bindings, models })
    }

    /// Value of a named binding.
    pub fn binding(&self, name: &str) -> Option<f64> {
        self.bindings.get(name).copied()
    }

    /// Names of all models, in definition-kind order.
    pub fn model_names(&self) -> Vec<&str> {
        self.models.keys().map(|s| s.as_str()).collect()
    }

    /// Evaluates a named model's reliability at `t_hours`.
    ///
    /// For fault trees this is `1 − P(top)`; time-independent trees (all
    /// fixed probabilities) are constant in `t`.
    pub fn reliability(&self, model: &str, t_hours: f64) -> Option<f64> {
        Some(match self.models.get(model)? {
            Compiled::Markov(m) => m.reliability(t_hours),
            Compiled::Rbd(b) => b.reliability(t_hours),
            Compiled::Ftree(ft) => 1.0 - ft.top_probability(t_hours),
        })
    }

    /// Exact MTTF for a named Markov model (hours).
    pub fn markov_mttf(&self, model: &str) -> Option<Result<f64, crate::ctmc::CtmcError>> {
        match self.models.get(model)? {
            Compiled::Markov(m) => Some(m.mttf()),
            _ => None,
        }
    }

    /// Borrow a named model as a [`ReliabilityModel`] trait object.
    pub fn as_model(&self, model: &str) -> Option<Arc<dyn ReliabilityModel + Send + Sync>> {
        Some(match self.models.get(model)? {
            Compiled::Markov(m) => m.clone(),
            Compiled::Rbd(b) => b.clone(),
            Compiled::Ftree(ft) => Arc::new(FtreeModel(ft.clone())),
        })
    }
}

struct FtreeModel(Arc<CompiledFtree>);

impl ReliabilityModel for FtreeModel {
    fn reliability(&self, t_hours: f64) -> f64 {
        1.0 - self.0.top_probability(t_hours)
    }
}

fn compile_markov(def: &MarkovDef) -> Result<CtmcReliability, LangError> {
    let mut builder = CtmcBuilder::new();
    let mut states: BTreeMap<String, StateId> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let intern = |name: &str,
                  b: &mut CtmcBuilder,
                  states: &mut BTreeMap<String, StateId>,
                  order: &mut Vec<String>| {
        *states.entry(name.to_string()).or_insert_with(|| {
            order.push(name.to_string());
            b.state(name)
        })
    };
    for (from, to, rate) in &def.transitions {
        let f = intern(from, &mut builder, &mut states, &mut order);
        let t = intern(to, &mut builder, &mut states, &mut order);
        builder
            .transition(f, t, *rate)
            .map_err(|e| err(def.line, format!("markov `{}`: {e}", def.name)))?;
    }
    for a in &def.absorbing {
        intern(a, &mut builder, &mut states, &mut order);
    }
    for (s, _) in &def.init {
        intern(s, &mut builder, &mut states, &mut order);
    }
    if states.is_empty() {
        return Err(err(
            def.line,
            format!("markov `{}` has no states", def.name),
        ));
    }
    let chain: Ctmc = builder.build();

    let mut pi0 = vec![0.0; chain.num_states()];
    if def.init.is_empty() {
        return Err(err(
            def.line,
            format!("markov `{}` needs an init line", def.name),
        ));
    }
    for (sname, p) in &def.init {
        pi0[states[sname].0] += *p;
    }
    if (pi0.iter().sum::<f64>() - 1.0).abs() > 1e-9 {
        return Err(err(
            def.line,
            format!("markov `{}`: init probabilities must sum to 1", def.name),
        ));
    }
    let absorbing: Vec<StateId> = def.absorbing.iter().map(|a| states[a]).collect();
    for &a in &absorbing {
        for j in 0..chain.num_states() {
            if j != a.0 && chain.generator().get(a.0, j) != 0.0 {
                return Err(err(
                    def.line,
                    format!(
                        "markov `{}`: declared absorbing state `{}` has outgoing transitions",
                        def.name,
                        chain.name(a)
                    ),
                ));
            }
        }
    }
    Ok(CtmcReliability::new(chain, pi0, absorbing))
}

fn compile_rbd(def: &RbdDef, models: &BTreeMap<String, Compiled>) -> Result<Block, LangError> {
    let mut built: BTreeMap<String, Block> = BTreeMap::new();
    for (name, node, line) in &def.nodes {
        let resolve_children = |children: &[String],
                                built: &BTreeMap<String, Block>|
         -> Result<Vec<Block>, LangError> {
            children
                .iter()
                .map(|c| {
                    built
                        .get(c)
                        .cloned()
                        .ok_or_else(|| err(*line, format!("unknown rbd node `{c}`")))
                })
                .collect()
        };
        let block = match node {
            RbdNodeDef::Comp(CompRef::Exp(rate)) => Block::component(Exponential::new(*rate)),
            RbdNodeDef::Comp(CompRef::Markov(m)) => match models.get(m) {
                Some(Compiled::Markov(model)) => Block::Component(model.clone()),
                _ => return Err(err(*line, format!("unknown markov model `{m}`"))),
            },
            RbdNodeDef::Comp(CompRef::Rbd(r)) => match models.get(r) {
                Some(Compiled::Rbd(b)) => (**b).clone(),
                _ => return Err(err(*line, format!("unknown rbd model `{r}`"))),
            },
            RbdNodeDef::Series(children) => Block::series(resolve_children(children, &built)?),
            RbdNodeDef::Parallel(children) => Block::parallel(resolve_children(children, &built)?),
            RbdNodeDef::KOfN(k, children) => {
                let blocks = resolve_children(children, &built)?;
                if *k < 1 || *k > blocks.len() {
                    return Err(err(*line, format!("kofn k={k} out of range")));
                }
                Block::k_of_n(*k, blocks)
            }
        };
        built.insert(name.clone(), block);
    }
    let (top, top_line) = def
        .top
        .clone()
        .ok_or_else(|| err(def.line, format!("rbd `{}` needs a top line", def.name)))?;
    built
        .remove(&top)
        .ok_or_else(|| err(top_line, format!("unknown top node `{top}`")))
}

fn compile_ftree(
    def: &FtreeDef,
    models: &BTreeMap<String, Compiled>,
) -> Result<CompiledFtree, LangError> {
    let mut builder = FaultTreeBuilder::new();
    let mut gates: BTreeMap<String, GateId> = BTreeMap::new();
    let mut sources: Vec<FtSource> = Vec::new();
    for (name, node, line) in &def.nodes {
        let resolve = |children: &[String],
                       gates: &BTreeMap<String, GateId>|
         -> Result<Vec<GateId>, LangError> {
            children
                .iter()
                .map(|c| {
                    gates
                        .get(c)
                        .copied()
                        .ok_or_else(|| err(*line, format!("unknown ftree node `{c}`")))
                })
                .collect()
        };
        let gate = match node {
            FtNodeDef::Basic(basic) => {
                let source = match basic {
                    BasicRef::Fixed(p) => FtSource::Fixed(*p),
                    BasicRef::Markov(m) => match models.get(m) {
                        Some(Compiled::Markov(model)) => FtSource::Model(model.clone()),
                        _ => return Err(err(*line, format!("unknown markov model `{m}`"))),
                    },
                    BasicRef::Rbd(r) => match models.get(r) {
                        Some(Compiled::Rbd(b)) => FtSource::Model(b.clone()),
                        _ => return Err(err(*line, format!("unknown rbd model `{r}`"))),
                    },
                };
                sources.push(source);
                builder.basic_event(name.clone())
            }
            FtNodeDef::And(children) => builder.and(resolve(children, &gates)?),
            FtNodeDef::Or(children) => builder.or(resolve(children, &gates)?),
            FtNodeDef::KOfN(k, children) => {
                let c = resolve(children, &gates)?;
                if *k < 1 || *k > c.len() {
                    return Err(err(*line, format!("kofn k={k} out of range")));
                }
                builder.k_of_n(*k, c)
            }
        };
        if gates.insert(name.clone(), gate).is_some() {
            return Err(err(*line, format!("duplicate ftree node `{name}`")));
        }
    }
    let (top, top_line) = def
        .top
        .clone()
        .ok_or_else(|| err(def.line, format!("ftree `{}` needs a top line", def.name)))?;
    let top_gate = *gates
        .get(&top)
        .ok_or_else(|| err(top_line, format!("unknown top node `{top}`")))?;
    Ok(CompiledFtree {
        tree: builder.build(top_gate),
        sources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn expressions_evaluate() {
        let mut b = BTreeMap::new();
        b.insert("x".to_string(), 2.0);
        assert_eq!(eval_expr("1 + 2 * 3", &b, 1).unwrap(), 7.0);
        assert_eq!(eval_expr("(1 + 2) * 3", &b, 1).unwrap(), 9.0);
        assert_eq!(eval_expr("10 * x", &b, 1).unwrap(), 20.0);
        assert_eq!(eval_expr("-x + 5", &b, 1).unwrap(), 3.0);
        assert_close(eval_expr("1.82e-5 * 10", &b, 1).unwrap(), 1.82e-4, 1e-18);
        assert!(eval_expr("1 / 0", &b, 1).is_err());
        assert!(eval_expr("unknown", &b, 1).is_err());
        assert!(eval_expr("1 +", &b, 1).is_err());
    }

    #[test]
    fn bindings_compose() {
        let set = parse("bind a 2\nbind b a * 3\nbind c a + b").unwrap();
        assert_eq!(set.binding("c"), Some(8.0));
        assert_eq!(set.binding("missing"), None);
    }

    #[test]
    fn markov_round_trips_closed_form() {
        let set = parse(
            "
            bind lam 0.01
            markov simple
              trans up down lam
              absorb down
              init up 1
            end
            ",
        )
        .unwrap();
        let t = 50.0;
        assert_close(
            set.reliability("simple", t).unwrap(),
            (-0.01f64 * t).exp(),
            1e-12,
        );
        assert_close(set.markov_mttf("simple").unwrap().unwrap(), 100.0, 1e-9);
    }

    #[test]
    fn rbd_with_markov_component() {
        let set = parse(
            "
            markov node
              trans up down 0.001
              absorb down
              init up 1
            end
            rbd pair
              comp a markov(node)
              comp b markov(node)
              parallel both a b
              top both
            end
            ",
        )
        .unwrap();
        let t = 100.0;
        let r1 = (-0.001f64 * t).exp();
        assert_close(
            set.reliability("pair", t).unwrap(),
            1.0 - (1.0 - r1) * (1.0 - r1),
            1e-12,
        );
    }

    #[test]
    fn full_bbw_file_reproduces_analytic_shape() {
        // The paper's system in the DSL: CU duplex markov + 3-of-4 wheel RBD
        // composed through the Fig. 5 fault tree.
        let set = parse(
            "
            bind lambda_p 1.82e-5
            bind lambda_t 10 * lambda_p
            bind cov 0.99
            bind mu_r 1.2e3

            markov cu
              trans up pdown 2 * lambda_p * cov
              trans up tdown 2 * lambda_t * cov
              trans up failed 2 * (lambda_p + lambda_t) * (1 - cov)
              trans tdown up mu_r
              trans pdown failed lambda_p + lambda_t
              trans tdown failed lambda_p + lambda_t
              absorb failed
              init up 1
            end

            rbd wheels
              comp node exp(lambda_p + lambda_t)
              kofn sub 3 node node node node
              top sub
            end

            ftree system
              basic cu_fail markov(cu)
              basic wn_fail rbd(wheels)
              or top_gate cu_fail wn_fail
              top top_gate
            end
            ",
        )
        .unwrap();
        let t = 8760.0;
        let r_sys = set.reliability("system", t).unwrap();
        let r_cu = set.reliability("cu", t).unwrap();
        let r_wn = set.reliability("wheels", t).unwrap();
        assert_close(r_sys, r_cu * r_wn, 1e-12);
        assert!(r_sys > 0.0 && r_sys < 1.0);
        // The DSL-built CU matches the native analytic FS central unit.
        let native = crate::model::ReliabilityModel::reliability(
            &{
                // Native equivalent built by hand:
                let mut b = CtmcBuilder::new();
                let up = b.state("up");
                let pd = b.state("pdown");
                let td = b.state("tdown");
                let f = b.state("failed");
                let (lp, lt, cov, mu) = (1.82e-5, 1.82e-4, 0.99, 1.2e3);
                b.transition(up, pd, 2.0 * lp * cov).unwrap();
                b.transition(up, td, 2.0 * lt * cov).unwrap();
                b.transition(up, f, 2.0 * (lp + lt) * (1.0 - cov)).unwrap();
                b.transition(td, up, mu).unwrap();
                b.transition(pd, f, lp + lt).unwrap();
                b.transition(td, f, lp + lt).unwrap();
                CtmcReliability::new(b.build(), vec![1.0, 0.0, 0.0, 0.0], vec![f])
            },
            t,
        );
        assert_close(r_cu, native, 1e-12);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let set = parse(
            "# header\n\nbind x 1 # trailing\nmarkov m\n trans a b x # rate\n absorb b\n init a 1\nend",
        )
        .unwrap();
        assert!(set.reliability("m", 1.0).is_some());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("bind x 1\nbogus y").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = parse("markov m\n trans a b not_a_binding\nend").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse("markov m\n trans a b 1\n absorb b\n init a 1").unwrap_err();
        assert!(e.message.contains("missing end"));
    }

    #[test]
    fn semantic_errors_detected() {
        // init doesn't sum to 1.
        assert!(parse("markov m\n trans a b 1\n init a 0.5\nend")
            .unwrap_err()
            .message
            .contains("sum to 1"));
        // absorbing state with outgoing edges.
        assert!(
            parse("markov m\n trans a b 1\n trans b a 1\n absorb b\n init a 1\nend")
                .unwrap_err()
                .message
                .contains("outgoing")
        );
        // dangling reference.
        assert!(parse("rbd r\n comp a markov(nope)\n top a\nend")
            .unwrap_err()
            .message
            .contains("unknown markov"));
        // missing top.
        assert!(parse("rbd r\n comp a exp(1)\nend")
            .unwrap_err()
            .message
            .contains("top"));
        // bad probability.
        assert!(parse("ftree f\n basic e 1.5\n top e\nend").is_err());
        // duplicate model names.
        assert!(parse(
            "markov m\n trans a b 1\n init a 1\nend\nrbd m\n comp a exp(1)\n top a\nend"
        )
        .unwrap_err()
        .message
        .contains("duplicate"));
    }

    #[test]
    fn ftree_with_fixed_probabilities_is_time_independent() {
        let set = parse(
            "
            ftree f
              basic a 0.1
              basic b 0.2
              and g a b
              top g
            end
            ",
        )
        .unwrap();
        let r0 = set.reliability("f", 0.0).unwrap();
        let r1 = set.reliability("f", 1e6).unwrap();
        assert_close(r0, 1.0 - 0.02, 1e-12);
        assert_eq!(r0, r1);
    }

    #[test]
    fn as_model_returns_usable_trait_object() {
        let set = parse("markov m\n trans a b 0.1\n absorb b\n init a 1\nend").unwrap();
        let model = set.as_model("m").unwrap();
        assert_close(model.reliability(10.0), (-1.0f64).exp(), 1e-12);
        assert!(set.as_model("missing").is_none());
    }

    #[test]
    fn kofn_bounds_checked_in_both_sections() {
        assert!(parse("rbd r\n comp a exp(1)\n kofn g 2 a\n top g\nend").is_err());
        assert!(parse("ftree f\n basic a 0.5\n kofn g 2 a\n top g\nend").is_err());
    }

    #[test]
    fn model_names_listed() {
        let set =
            parse("markov m\n trans a b 1\n init a 1\nend\nrbd r\n comp c exp(1)\n top c\nend")
                .unwrap();
        assert_eq!(set.model_names(), vec!["m", "r"]);
    }
}
