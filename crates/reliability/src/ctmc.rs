//! Continuous-time Markov chains (CTMC) — the Markov half of SHARPE.
//!
//! The paper's central-unit and wheel-node subsystem models (Figs 6, 7, 9,
//! 10, 11) are small CTMCs with an absorbing failure state. This module
//! provides:
//!
//! * a validated [`CtmcBuilder`];
//! * transient solution `π(t) = π(0)·e^{Qt}` via the Padé matrix
//!   exponential — robust for the stiff rate mixtures of the paper
//!   (repairs ~10³/h against faults ~10⁻⁴/h over a year);
//! * an independent **uniformization** solver used to cross-check the
//!   exponential on non-stiff cases;
//! * mean time to failure for absorbing chains (`MTTF = π₀·(-Q_TT)⁻¹·1`);
//! * steady-state distributions for ergodic chains.

use std::fmt;

use crate::linalg::{LinalgError, Matrix};

/// Index of a CTMC state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

/// Errors from CTMC construction or analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// A transition rate was not strictly positive and finite.
    InvalidRate(f64),
    /// A self-loop transition was specified.
    SelfLoop(StateId),
    /// An initial distribution does not sum to 1 (±1e-9) or has negatives.
    InvalidDistribution,
    /// The requested MTTF diverges (the absorbing set is unreachable from
    /// some initial state with positive probability).
    InfiniteMttf,
    /// An underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::InvalidRate(r) => write!(f, "invalid transition rate {r}"),
            CtmcError::SelfLoop(s) => write!(f, "self loop on state {}", s.0),
            CtmcError::InvalidDistribution => write!(f, "invalid initial distribution"),
            CtmcError::InfiniteMttf => write!(f, "mean time to failure is infinite"),
            CtmcError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for CtmcError {}

impl From<LinalgError> for CtmcError {
    fn from(e: LinalgError) -> Self {
        CtmcError::Linalg(e)
    }
}

/// Builder for a CTMC.
///
/// # Examples
///
/// ```
/// use nlft_reliability::ctmc::CtmcBuilder;
///
/// let mut b = CtmcBuilder::new();
/// let up = b.state("up");
/// let down = b.state("down");
/// b.transition(up, down, 1e-3)?;
/// b.transition(down, up, 1e-1)?;
/// let chain = b.build();
/// let pi = chain.transient(&[1.0, 0.0], 1000.0)?;
/// assert!((pi[0] - 0.990099).abs() < 1e-4); // ≈ μ/(λ+μ)
/// # Ok::<(), nlft_reliability::ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CtmcBuilder {
    names: Vec<String>,
    transitions: Vec<(usize, usize, f64)>,
}

impl CtmcBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CtmcBuilder::default()
    }

    /// Adds a state and returns its id.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        self.names.push(name.into());
        StateId(self.names.len() - 1)
    }

    /// Adds a transition with the given rate (per hour, by the paper's
    /// convention). Multiple transitions between the same pair accumulate.
    ///
    /// # Errors
    ///
    /// [`CtmcError::InvalidRate`] unless `rate` is strictly positive and
    /// finite; [`CtmcError::SelfLoop`] when `from == to`.
    ///
    /// # Panics
    ///
    /// Panics if either state id is out of range.
    pub fn transition(&mut self, from: StateId, to: StateId, rate: f64) -> Result<(), CtmcError> {
        assert!(
            from.0 < self.names.len() && to.0 < self.names.len(),
            "unknown state"
        );
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(CtmcError::InvalidRate(rate));
        }
        if from == to {
            return Err(CtmcError::SelfLoop(from));
        }
        self.transitions.push((from.0, to.0, rate));
        Ok(())
    }

    /// Finalises the chain.
    ///
    /// # Panics
    ///
    /// Panics if no states were added.
    pub fn build(self) -> Ctmc {
        let n = self.names.len();
        assert!(n > 0, "a CTMC needs at least one state");
        let mut q = Matrix::zeros(n, n);
        for (from, to, rate) in self.transitions {
            q.add_to(from, to, rate);
            q.add_to(from, from, -rate);
        }
        Ctmc {
            names: self.names,
            q,
        }
    }
}

/// A continuous-time Markov chain with generator `Q`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    names: Vec<String>,
    q: Matrix,
}

impl Ctmc {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.names.len()
    }

    /// Name of a state.
    pub fn name(&self, s: StateId) -> &str {
        &self.names[s.0]
    }

    /// The infinitesimal generator.
    pub fn generator(&self) -> &Matrix {
        &self.q
    }

    fn check_distribution(&self, pi0: &[f64]) -> Result<(), CtmcError> {
        if pi0.len() != self.num_states()
            || pi0.iter().any(|&p| !(0.0..=1.0 + 1e-12).contains(&p))
            || (pi0.iter().sum::<f64>() - 1.0).abs() > 1e-9
        {
            return Err(CtmcError::InvalidDistribution);
        }
        Ok(())
    }

    /// Transient state probabilities `π(t) = π(0)·e^{Qt}`.
    ///
    /// # Errors
    ///
    /// [`CtmcError::InvalidDistribution`] for a malformed `pi0`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or not finite.
    pub fn transient(&self, pi0: &[f64], t_hours: f64) -> Result<Vec<f64>, CtmcError> {
        assert!(
            t_hours >= 0.0 && t_hours.is_finite(),
            "time must be nonnegative"
        );
        self.check_distribution(pi0)?;
        if t_hours == 0.0 {
            return Ok(pi0.to_vec());
        }
        let e = self.q.scale(t_hours).expm();
        let mut pi = e.vec_mul(pi0);
        // Clamp tiny negative round-off and renormalise.
        for p in &mut pi {
            *p = p.max(0.0);
        }
        let sum: f64 = pi.iter().sum();
        if sum > 0.0 {
            for p in &mut pi {
                *p /= sum;
            }
        }
        Ok(pi)
    }

    /// Transient probabilities by uniformization, an independent algorithm
    /// for cross-checking [`Ctmc::transient`]. Truncates the Poisson sum at
    /// relative error `eps`.
    ///
    /// # Errors
    ///
    /// [`CtmcError::InvalidDistribution`] for malformed `pi0`.
    ///
    /// # Panics
    ///
    /// Panics when `q·t > 700` (Poisson weights underflow; use the matrix
    /// exponential there) or `t` is negative.
    pub fn transient_uniformized(
        &self,
        pi0: &[f64],
        t_hours: f64,
        eps: f64,
    ) -> Result<Vec<f64>, CtmcError> {
        assert!(
            t_hours >= 0.0 && t_hours.is_finite(),
            "time must be nonnegative"
        );
        self.check_distribution(pi0)?;
        let n = self.num_states();
        let rate = (0..n)
            .map(|i| -self.q.get(i, i))
            .fold(0.0, f64::max)
            .max(1e-300);
        let qt = rate * t_hours;
        assert!(
            qt <= 700.0,
            "uniformization underflows for q*t = {qt} > 700; use transient()"
        );
        // P = I + Q/rate.
        let mut p = self.q.scale(1.0 / rate);
        for i in 0..n {
            p.add_to(i, i, 1.0);
        }
        let mut weight = (-qt).exp();
        let mut acc_weight = weight;
        let mut term = pi0.to_vec();
        let mut result: Vec<f64> = term.iter().map(|&v| v * weight).collect();
        let mut k = 0u64;
        while 1.0 - acc_weight > eps && k < 100_000 {
            k += 1;
            term = p.vec_mul(&term);
            weight *= qt / k as f64;
            acc_weight += weight;
            for (r, &v) in result.iter_mut().zip(&term) {
                *r += weight * v;
            }
        }
        Ok(result)
    }

    /// Probability mass in a set of states.
    pub fn probability_in(&self, pi: &[f64], states: &[StateId]) -> f64 {
        states.iter().map(|s| pi[s.0]).sum()
    }

    /// Mean time to absorption into `absorbing`, starting from `pi0`.
    ///
    /// Solves `Q_TT·τ = -1` over the transient states; `MTTF = Σ π₀ᵢ τᵢ`.
    ///
    /// # Errors
    ///
    /// [`CtmcError::InfiniteMttf`] when the absorbing set cannot be reached
    /// (singular `Q_TT`), [`CtmcError::InvalidDistribution`] for a bad `pi0`.
    pub fn mttf(&self, pi0: &[f64], absorbing: &[StateId]) -> Result<f64, CtmcError> {
        self.check_distribution(pi0)?;
        let n = self.num_states();
        let transient: Vec<usize> = (0..n)
            .filter(|i| !absorbing.iter().any(|s| s.0 == *i))
            .collect();
        if transient.is_empty() {
            return Ok(0.0);
        }
        let m = transient.len();
        let mut qtt = Matrix::zeros(m, m);
        for (bi, &i) in transient.iter().enumerate() {
            for (bj, &j) in transient.iter().enumerate() {
                qtt.set(bi, bj, self.q.get(i, j));
            }
        }
        let mut neg_one = Matrix::zeros(m, 1);
        for i in 0..m {
            neg_one.set(i, 0, -1.0);
        }
        let tau = qtt.solve(&neg_one).map_err(|e| match e {
            LinalgError::Singular => CtmcError::InfiniteMttf,
            other => CtmcError::Linalg(other),
        })?;
        let mut mttf = 0.0;
        for (bi, &i) in transient.iter().enumerate() {
            let t = tau.get(bi, 0);
            if !t.is_finite() || t < 0.0 {
                return Err(CtmcError::InfiniteMttf);
            }
            mttf += pi0[i] * t;
        }
        Ok(mttf)
    }

    /// Steady-state distribution of an ergodic chain: solves `πQ = 0` with
    /// `Σπ = 1`.
    ///
    /// # Errors
    ///
    /// [`CtmcError::Linalg`] when the chain is reducible (no unique
    /// stationary distribution).
    pub fn steady_state(&self) -> Result<Vec<f64>, CtmcError> {
        let n = self.num_states();
        // Solve Qᵀ π = 0 with the last equation replaced by Σπ = 1.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, self.q.get(j, i));
            }
        }
        for j in 0..n {
            a.set(n - 1, j, 1.0);
        }
        let mut b = Matrix::zeros(n, 1);
        b.set(n - 1, 0, 1.0);
        let x = a.solve(&b)?;
        Ok((0..n).map(|i| x.get(i, 0).max(0.0)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    /// Two-state repairable system with closed-form availability.
    fn two_state(lam: f64, mu: f64) -> (Ctmc, StateId, StateId) {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, lam).unwrap();
        b.transition(down, up, mu).unwrap();
        (b.build(), up, down)
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let (c, _, _) = two_state(0.2, 3.0);
        for i in 0..2 {
            let sum: f64 = (0..2).map(|j| c.generator().get(i, j)).sum();
            assert_close(sum, 0.0, 1e-15);
        }
    }

    #[test]
    fn transient_matches_closed_form() {
        let (c, _, _) = two_state(0.5, 2.0);
        for &t in &[0.0, 0.1, 1.0, 10.0] {
            let pi = c.transient(&[1.0, 0.0], t).unwrap();
            let s = 0.5 + 2.0;
            let expect = 2.0 / s + 0.5 / s * (-s * t).exp();
            assert_close(pi[0], expect, 1e-10);
            assert_close(pi[0] + pi[1], 1.0, 1e-12);
        }
    }

    #[test]
    fn uniformization_agrees_with_expm() {
        let mut b = CtmcBuilder::new();
        let s0 = b.state("0");
        let s1 = b.state("1");
        let s2 = b.state("2");
        b.transition(s0, s1, 0.7).unwrap();
        b.transition(s1, s0, 0.2).unwrap();
        b.transition(s1, s2, 0.4).unwrap();
        b.transition(s2, s0, 0.1).unwrap();
        let c = b.build();
        let pi0 = [1.0, 0.0, 0.0];
        for &t in &[0.5, 2.0, 20.0] {
            let a = c.transient(&pi0, t).unwrap();
            let u = c.transient_uniformized(&pi0, t, 1e-12).unwrap();
            for (x, y) in a.iter().zip(&u) {
                assert_close(*x, *y, 1e-9);
            }
        }
    }

    #[test]
    fn absorbing_chain_mttf_closed_form() {
        // up → down (absorbing) at rate λ: MTTF = 1/λ.
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 0.01).unwrap();
        let c = b.build();
        let mttf = c.mttf(&[1.0, 0.0], &[down]).unwrap();
        assert_close(mttf, 100.0, 1e-9);
    }

    #[test]
    fn mttf_with_repair_before_absorption() {
        // 0 -λ→ 1 -ν→ F, 1 -μ→ 0. Closed form:
        // τ1 = 1/(ν+μ) + μ/(ν+μ)·τ0; τ0 = 1/λ + τ1.
        let (lam, mu, nu) = (0.01, 1.0, 0.1);
        let mut b = CtmcBuilder::new();
        let s0 = b.state("0");
        let s1 = b.state("1");
        let f = b.state("F");
        b.transition(s0, s1, lam).unwrap();
        b.transition(s1, s0, mu).unwrap();
        b.transition(s1, f, nu).unwrap();
        let c = b.build();
        let mttf = c.mttf(&[1.0, 0.0, 0.0], &[f]).unwrap();
        // Solve the two equations by hand:
        let tau0 = ((nu + mu) / lam + 1.0) / nu;
        assert_close(mttf, tau0, 1e-6);
    }

    #[test]
    fn mttf_infinite_when_absorbing_unreachable() {
        let (c, up, _) = two_state(0.5, 2.0);
        // Mark a state absorbing that has no inbound path... here both are
        // reachable, so instead test an isolated absorbing state.
        let mut b = CtmcBuilder::new();
        let a = b.state("a");
        let bb = b.state("b");
        let iso = b.state("isolated");
        b.transition(a, bb, 1.0).unwrap();
        b.transition(bb, a, 1.0).unwrap();
        let c2 = b.build();
        assert_eq!(
            c2.mttf(&[1.0, 0.0, 0.0], &[iso]),
            Err(CtmcError::InfiniteMttf)
        );
        drop((c, up));
    }

    #[test]
    fn steady_state_of_repairable_pair() {
        let (c, _, _) = two_state(0.5, 2.0);
        let pi = c.steady_state().unwrap();
        assert_close(pi[0], 0.8, 1e-12);
        assert_close(pi[1], 0.2, 1e-12);
    }

    #[test]
    fn stiff_paper_rates_are_handled() {
        // The paper's parameters: λT=1.82e-4, μR=1.2e3 over 8760 hours.
        let (c, _, down) = two_state(1.82e-4, 1.2e3);
        let pi = c.transient(&[1.0, 0.0], 8760.0).unwrap();
        let expect_down = 1.82e-4 / (1.82e-4 + 1.2e3);
        assert_close(pi[down.0], expect_down, 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut b = CtmcBuilder::new();
        let s = b.state("s");
        let t = b.state("t");
        assert_eq!(b.transition(s, t, 0.0), Err(CtmcError::InvalidRate(0.0)));
        assert_eq!(b.transition(s, t, -1.0), Err(CtmcError::InvalidRate(-1.0)));
        assert_eq!(b.transition(s, s, 1.0), Err(CtmcError::SelfLoop(s)));
        b.transition(s, t, 1.0).unwrap();
        let c = b.build();
        assert_eq!(
            c.transient(&[0.5, 0.4], 1.0),
            Err(CtmcError::InvalidDistribution)
        );
        assert_eq!(
            c.transient(&[2.0, -1.0], 1.0),
            Err(CtmcError::InvalidDistribution)
        );
    }

    #[test]
    fn parallel_transitions_accumulate() {
        let mut b = CtmcBuilder::new();
        let s = b.state("s");
        let t = b.state("t");
        b.transition(s, t, 1.0).unwrap();
        b.transition(s, t, 2.0).unwrap();
        let c = b.build();
        assert_close(c.generator().get(0, 1), 3.0, 1e-15);
        assert_close(c.generator().get(0, 0), -3.0, 1e-15);
    }

    #[test]
    fn transient_at_zero_is_initial() {
        let (c, _, _) = two_state(1.0, 1.0);
        assert_eq!(c.transient(&[0.25, 0.75], 0.0).unwrap(), vec![0.25, 0.75]);
    }
}
