//! Property tests for the diagnosis layer.
//!
//! The load-bearing one is `alpha_count_never_calls_transient_streams_permanent`:
//! 10 000 seeded pure-transient error streams at rates up to the tuned
//! bound, none of which may ever be classified `Permanent`. This is the
//! evidence behind [`nlft_core::diagnosis::FALSE_RETIREMENT_BOUND`].

use nlft_core::diagnosis::{AlphaCount, AlphaCountConfig, Diagnosis};
use nlft_testkit::prop::{CaseError, Suite};
use nlft_testkit::prop_assert;
use nlft_testkit::rng::TkRng;

const SUITE: Suite = Suite::new(0x5EED_A1FA);

/// A pure-transient stream: independent per-job errors at a fixed rate.
#[derive(Debug)]
struct TransientStream {
    rate: f64,
    jobs: Vec<bool>,
}

fn gen_stream(max_rate: f64) -> impl FnMut(&mut TkRng) -> TransientStream {
    move |r: &mut TkRng| {
        let rate = r.f64_range(0.0, max_rate);
        let len = r.usize_range(16, 256);
        let jobs = (0..len).map(|_| r.f64() < rate).collect();
        TransientStream { rate, jobs }
    }
}

#[test]
fn alpha_count_never_calls_transient_streams_permanent() {
    // 10k cases: streams at or below the tuned transient rate bound must
    // never cross the permanent threshold, at any point in the stream.
    SUITE.cases(10_000).check(
        "transient_streams_stay_below_permanent",
        gen_stream(AlphaCountConfig::TRANSIENT_RATE_BOUND),
        |stream| {
            let mut a = AlphaCount::new(AlphaCountConfig::default());
            for (i, &errored) in stream.jobs.iter().enumerate() {
                a.observe(errored);
                prop_assert!(
                    a.classify() != Diagnosis::Permanent,
                    "rate {:.4} stream reached permanent at job {} (alpha {:.3})",
                    stream.rate,
                    i,
                    a.value()
                );
            }
            Ok(())
        },
    );
}

#[test]
fn alpha_count_always_calls_solid_streams_permanent() {
    // The converse: an error-every-job stream must cross the permanent
    // threshold within ceil(threshold / increment) jobs.
    SUITE.check(
        "solid_streams_reach_permanent",
        |r: &mut TkRng| r.range(16, 64),
        |&len| {
            let cfg = AlphaCountConfig::default();
            let bound = (cfg.permanent_threshold / cfg.increment).ceil() as u64;
            if len < bound {
                return Err(CaseError::Reject("stream shorter than bound".into()));
            }
            let mut a = AlphaCount::new(cfg);
            let mut crossed_at = None;
            for job in 0..len {
                a.observe(true);
                if a.classify() == Diagnosis::Permanent {
                    crossed_at = Some(job + 1);
                    break;
                }
            }
            prop_assert!(
                crossed_at == Some(bound),
                "solid stream crossed at {:?}, expected {}",
                crossed_at,
                bound
            );
            Ok(())
        },
    );
}

#[test]
fn alpha_count_is_monotone_in_the_stream_prefix() {
    // Swapping a clean job for an errored one can only raise every later
    // alpha value (error dominance) — the discriminator never *benefits*
    // from extra errors.
    SUITE.check(
        "error_dominance",
        |r: &mut TkRng| {
            let len = r.usize_range(2, 64);
            let jobs: Vec<bool> = (0..len).map(|_| r.bool()).collect();
            let flip = r.usize_range(0, len);
            (jobs, flip)
        },
        |(jobs, flip)| {
            let mut base = AlphaCount::new(AlphaCountConfig::default());
            let mut flipped = AlphaCount::new(AlphaCountConfig::default());
            for (i, &errored) in jobs.iter().enumerate() {
                base.observe(errored);
                flipped.observe(errored || i == *flip);
                prop_assert!(
                    flipped.value() >= base.value() - 1e-12,
                    "extra error lowered alpha at job {i}"
                );
            }
            Ok(())
        },
    );
}
