//! Fault-injection campaigns.
//!
//! The paper's parameters — coverage `C_D` and the detected-transient split
//! `P_T`/`P_OM`/`P_FS` — came from fault-injection experiments on the
//! authors' kernel (refs. 7, 8). This module reproduces that methodology on
//! the simulated stack: inject transients into a node running real
//! workloads under a policy (fail-silent or NLFT/TEM), classify every
//! outcome against a golden run, and estimate the parameters with Wilson
//! confidence intervals. Campaigns are deterministic in their seed and
//! shard across threads without changing results.

use std::fmt;

use nlft_kernel::escalation::{EscalationEvent, EscalationPolicy, NodeHealth};
use nlft_kernel::tem::{InjectionPlan, JobFault, JobOutcome, TemConfig, TemExecutor};
use nlft_machine::edm::{DetectionMatrix, Edm};
use nlft_machine::fault::{
    run_with_injection, FaultModel, FaultPersistence, FaultSpace, TransientFault,
};
use nlft_machine::machine::{RunExit, NUM_PORTS};
use nlft_machine::workloads::Workload;
use nlft_sim::rng::RngStream;
use nlft_sim::stats::{OnlineStats, Proportion};

use crate::diagnosis::{AlphaCountConfig, NodeSupervisor};
use crate::policy::{NodeFailureMode, NodePolicy};

/// Classification of a single injection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Fault had no observable effect (overwritten, latent, or the task
    /// finished before the injection point).
    Benign,
    /// An error occurred, was detected, and TEM delivered a correct result.
    Masked {
        /// First mechanism that saw the error.
        detected_by: Edm,
    },
    /// An error was detected but no result could be delivered in time.
    Omission {
        /// The mechanism behind the final omission.
        detected_by: Edm,
    },
    /// An error was detected with no masking attempted (fail-silent node).
    Detected {
        /// The detecting mechanism.
        detected_by: Edm,
    },
    /// The fault struck while kernel code was running; kernel checks catch
    /// it and the node goes silent.
    KernelError,
    /// A wrong result was delivered with no detection — a coverage escape.
    UndetectedWrongOutput,
}

impl Verdict {
    /// The detecting mechanism, if any detection happened.
    pub fn detected_by(self) -> Option<Edm> {
        match self {
            Verdict::Masked { detected_by }
            | Verdict::Omission { detected_by }
            | Verdict::Detected { detected_by } => Some(detected_by),
            Verdict::KernelError => Some(Edm::DataIntegrity),
            Verdict::Benign | Verdict::UndetectedWrongOutput => None,
        }
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injections.
    pub trials: u64,
    /// Master seed; identical seeds reproduce identical campaigns.
    pub seed: u64,
    /// Node policy under test.
    pub policy: NodePolicy,
    /// The fault space sampled.
    pub space: FaultSpace,
    /// Workloads cycled through (one per trial, round-robin).
    pub workloads: Vec<Workload>,
    /// Fraction of CPU time in kernel code: faults landing there become
    /// kernel errors (the paper assumes ~5%, citing ref. 10).
    pub kernel_fraction: f64,
    /// Fraction of jobs whose deadline leaves no recovery slack (e.g. a
    /// second fault already consumed it, §2.5): a detected error in such a
    /// job becomes an omission instead of being masked.
    pub tight_deadline_fraction: f64,
    /// Run the node with ECC-protected memory (`true`, the default) or
    /// without (cheap-node ablation: memory faults escape to the program).
    pub ecc: bool,
    /// Number of worker threads (1 = sequential; results are identical
    /// regardless).
    pub threads: usize,
}

impl CampaignConfig {
    /// A standard campaign over the stock workloads.
    pub fn new(trials: u64, seed: u64, policy: NodePolicy) -> Self {
        CampaignConfig {
            trials,
            seed,
            policy,
            space: FaultSpace::cpu_only(),
            workloads: nlft_machine::workloads::standard_workloads(),
            kernel_fraction: 0.05,
            tight_deadline_fraction: 0.05,
            ecc: true,
            threads: 1,
        }
    }
}

/// Point estimates (with counts) of the paper's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParamCounts {
    /// Errors detected (masked + omission + fail-silent + FS detections).
    pub detected: u64,
    /// Errors that escaped detection.
    pub undetected: u64,
    /// Detected errors masked by TEM.
    pub masked: u64,
    /// Detected errors that became omissions.
    pub omissions: u64,
    /// Detected errors that silenced the node (kernel + FS policy).
    pub fail_silent: u64,
    /// Faults with no observable effect.
    pub benign: u64,
}

impl ParamCounts {
    /// Error-detection coverage `C_D` as a proportion.
    pub fn coverage(&self) -> Proportion {
        Proportion::from_counts(self.detected, self.detected + self.undetected)
    }

    /// `P_T`: detected errors masked.
    pub fn p_t(&self) -> Proportion {
        Proportion::from_counts(self.masked, self.detected)
    }

    /// `P_OM`: detected errors that became omissions.
    pub fn p_om(&self) -> Proportion {
        Proportion::from_counts(self.omissions, self.detected)
    }

    /// `P_FS`: detected errors that silenced the node.
    pub fn p_fs(&self) -> Proportion {
        Proportion::from_counts(self.fail_silent, self.detected)
    }
}

/// Full campaign result.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Trials run.
    pub trials: u64,
    /// Per-(fault class × EDM) detection matrix — the Table 1 artifact.
    pub matrix: DetectionMatrix,
    /// Aggregated parameter counts.
    pub counts: ParamCounts,
    /// Node-boundary failure modes, tallied.
    pub modes: ModeCounts,
    /// Corrupted memory reads served with ECC disabled, summed over all
    /// trials — the silent-corruption exposure of cheap-node (no-ECC)
    /// configurations. Always zero when ECC is on: a corrupted read is
    /// then either corrected or trapped, never served.
    pub ecc_escaped: u64,
}

/// Tally of node-boundary failure modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeCounts {
    /// No externally visible effect.
    pub masked: u64,
    /// Omission failures.
    pub omission: u64,
    /// Fail-silent failures.
    pub fail_silent: u64,
    /// Undetected wrong outputs.
    pub undetected: u64,
}

impl CampaignResult {
    fn merge(&mut self, other: &CampaignResult) {
        self.trials += other.trials;
        self.matrix.merge(&other.matrix);
        self.counts.detected += other.counts.detected;
        self.counts.undetected += other.counts.undetected;
        self.counts.masked += other.counts.masked;
        self.counts.omissions += other.counts.omissions;
        self.counts.fail_silent += other.counts.fail_silent;
        self.counts.benign += other.counts.benign;
        self.modes.masked += other.modes.masked;
        self.modes.omission += other.modes.omission;
        self.modes.fail_silent += other.modes.fail_silent;
        self.modes.undetected += other.modes.undetected;
        self.ecc_escaped += other.ecc_escaped;
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counts;
        writeln!(f, "campaign: {} trials", self.trials)?;
        writeln!(
            f,
            "  benign {} / detected {} / undetected {}",
            c.benign, c.detected, c.undetected
        )?;
        if self.ecc_escaped > 0 {
            writeln!(
                f,
                "  silent ECC escapes {} (corrupted reads served, no ECC)",
                self.ecc_escaped
            )?;
        }
        let pct = |p: Proportion| format!("{:.4}", p.estimate());
        writeln!(f, "  C_D  = {}", pct(c.coverage()))?;
        writeln!(f, "  P_T  = {}", pct(c.p_t()))?;
        writeln!(f, "  P_OM = {}", pct(c.p_om()))?;
        write!(f, "  P_FS = {}", pct(c.p_fs()))
    }
}

/// Runs a campaign.
///
/// # Panics
///
/// Panics if the configuration has no trials, no workloads, or an invalid
/// kernel fraction.
pub fn run_campaign(config: &CampaignConfig) -> CampaignResult {
    assert!(config.trials > 0, "campaign needs trials");
    assert!(!config.workloads.is_empty(), "campaign needs workloads");
    assert!(
        (0.0..1.0).contains(&config.kernel_fraction),
        "kernel fraction must be in [0,1)"
    );
    assert!(
        (0.0..=1.0).contains(&config.tight_deadline_fraction),
        "tight-deadline fraction must be in [0,1]"
    );
    // Every trial forks its own stream from (seed, trial index) and the
    // engine folds block partials in block order regardless of worker
    // count, so parallelism only decides which worker runs a trial.
    let c = config.clone();
    let campaign = nlft_engine::indexed_campaign(
        "core-fault-injection",
        "trial",
        config.trials,
        CampaignResult::default,
        move |trial, _ctx, result: &mut CampaignResult| {
            let mut rng = RngStream::new(c.seed).fork_indexed("trial", trial);
            let workload = &c.workloads[(trial % c.workloads.len() as u64) as usize];
            let verdict = run_trial(&c, workload, &mut rng);
            record(result, c.policy, verdict, &mut rng, workload, &c);
        },
        |into, from| into.merge(&from),
    );
    let engine = nlft_engine::EngineConfig::with_workers(config.threads.max(1));
    nlft_engine::run_trials(campaign, &engine).acc
}

fn run_trial(config: &CampaignConfig, workload: &Workload, rng: &mut RngStream) -> TrialOutcome {
    // Random inputs in sensor range keep campaigns from over-fitting one
    // data point.
    let inputs: Vec<u32> = workload
        .input_ports
        .iter()
        .map(|_| rng.uniform_range(0, 4096) as u32)
        .collect();
    let (golden, clean_cycles) = workload.golden_run(&inputs);

    // Does the fault land in kernel code?
    if rng.bernoulli(config.kernel_fraction) {
        return TrialOutcome {
            verdict: Verdict::KernelError,
            fault: None,
            ecc_escaped: 0,
        };
    }

    let fault = config.space.sample(rng);
    let at_cycle = rng.uniform_range(1, clean_cycles.max(2));

    match config.policy {
        NodePolicy::LightweightNlft => {
            let copy = rng.uniform_range(0, 2) as u32;
            let mut tem_config = TemConfig::with_budget(clean_cycles * 2 + 50);
            if rng.bernoulli(config.tight_deadline_fraction) {
                // No recovery slack this period: two copies and the
                // comparison must fit, nothing more (§2.5's "enough time
                // may not be available").
                tem_config.deadline_cycles = tem_config.copy_budget * 2 + tem_config.compare_cycles;
            }
            let tem = TemExecutor::new(tem_config);
            let mut machine = instantiate(workload, config.ecc);
            let plan = InjectionPlan {
                copy,
                at_cycle,
                fault,
            };
            let report = tem.run_job(&mut machine, workload, &inputs, Some(plan));
            let verdict = match report.outcome {
                JobOutcome::DeliveredClean => {
                    if report.outputs == Some(golden) {
                        Verdict::Benign
                    } else {
                        Verdict::UndetectedWrongOutput
                    }
                }
                JobOutcome::DeliveredMasked { detected_by } => {
                    if report.outputs == Some(golden) {
                        Verdict::Masked { detected_by }
                    } else {
                        Verdict::UndetectedWrongOutput
                    }
                }
                JobOutcome::Omission { detected_by } => Verdict::Omission { detected_by },
            };
            TrialOutcome {
                verdict,
                fault: Some(fault),
                ecc_escaped: machine.mem.ecc_stats().escaped,
            }
        }
        NodePolicy::FailSilent => {
            let mut machine = instantiate(workload, config.ecc);
            for (&port, &v) in workload.input_ports.iter().zip(&inputs) {
                machine.set_input(port, v);
            }
            let budget = clean_cycles * 2 + 50;
            let (outcome, _) = run_with_injection(&mut machine, budget, at_cycle, fault);
            let verdict = match outcome.exit {
                RunExit::Halted => {
                    if outputs_match(machine.outputs(), &golden) {
                        Verdict::Benign
                    } else {
                        Verdict::UndetectedWrongOutput
                    }
                }
                RunExit::Exception(e) => Verdict::Detected {
                    detected_by: Edm::from_exception(&e),
                },
                RunExit::BudgetExhausted => Verdict::Detected {
                    detected_by: Edm::ExecutionTimeMonitor,
                },
            };
            TrialOutcome {
                verdict,
                fault: Some(fault),
                ecc_escaped: machine.mem.ecc_stats().escaped,
            }
        }
    }
}

fn outputs_match(actual: &[Option<u32>; NUM_PORTS], golden: &[Option<u32>; NUM_PORTS]) -> bool {
    actual == golden
}

/// Builds a fresh machine for the trial, with or without ECC memory.
fn instantiate(workload: &Workload, ecc: bool) -> nlft_machine::machine::Machine {
    if ecc {
        workload.instantiate()
    } else {
        let mut m = nlft_machine::machine::Machine::new_without_ecc(
            nlft_machine::workloads::MEM_BYTES,
            workload.map.clone(),
        );
        m.load_program(0, &workload.image.words)
            .expect("workload image fits standard memory");
        m.reset(0, nlft_machine::workloads::STACK_TOP);
        m
    }
}

struct TrialOutcome {
    verdict: Verdict,
    fault: Option<TransientFault>,
    /// Corrupted reads served during the trial (ECC-off machines only).
    ecc_escaped: u64,
}

fn record(
    result: &mut CampaignResult,
    policy: NodePolicy,
    outcome: TrialOutcome,
    _rng: &mut RngStream,
    _workload: &Workload,
    _config: &CampaignConfig,
) {
    result.trials += 1;
    result.ecc_escaped += outcome.ecc_escaped;
    let class = outcome.fault.map(|f| f.target.class());
    match outcome.verdict {
        Verdict::Benign => {
            result.counts.benign += 1;
            if let Some(c) = class {
                result.matrix.record_benign(c);
            }
        }
        Verdict::Masked { detected_by } => {
            result.counts.detected += 1;
            result.counts.masked += 1;
            if let Some(c) = class {
                result.matrix.record_detection(c, detected_by);
            }
        }
        Verdict::Omission { detected_by } => {
            result.counts.detected += 1;
            result.counts.omissions += 1;
            if let Some(c) = class {
                result.matrix.record_detection(c, detected_by);
            }
        }
        Verdict::Detected { detected_by } => {
            result.counts.detected += 1;
            result.counts.fail_silent += 1;
            if let Some(c) = class {
                result.matrix.record_detection(c, detected_by);
            }
        }
        Verdict::KernelError => {
            result.counts.detected += 1;
            result.counts.fail_silent += 1;
        }
        Verdict::UndetectedWrongOutput => {
            result.counts.undetected += 1;
            if let Some(c) = class {
                result.matrix.record_undetected(c);
            }
        }
    }
    match NodeFailureMode::classify(policy, outcome.verdict) {
        NodeFailureMode::Masked => result.modes.masked += 1,
        NodeFailureMode::Omission => result.modes.omission += 1,
        NodeFailureMode::FailSilent => result.modes.fail_silent += 1,
        NodeFailureMode::Undetected => result.modes.undetected += 1,
    }
}

// ---------------------------------------------------------------------------
// Recovery campaigns: multi-job, recurrence-aware trials.
// ---------------------------------------------------------------------------

/// Classification of a whole multi-job recovery trial, judged against the
/// ground-truth persistence of the injected fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryVerdict {
    /// A one-shot transient was handled in place: node healthy at trial
    /// end with zero restarts spent.
    MaskedTransient,
    /// The node escalated (suspicion and/or restarts) and returned to
    /// `Healthy` — the intended outcome for an intermittent fault.
    Recovered,
    /// A permanent fault was correctly retired.
    Retired,
    /// A non-permanent fault ended in retirement — the misclassification
    /// the α-count tuning bounds.
    FalseRetirement,
    /// A permanent fault was still in service at trial end. This includes
    /// latent stuck-ats that never trip an EDM: time redundancy compares
    /// two identically-wrong copies, so a silent permanent fault is
    /// invisible to TEM — the known blind spot of the technique.
    MissedPermanent,
    /// The trial ended mid-ladder (suspect, silent or restarting).
    Unresolved,
}

/// Configuration of a recovery campaign.
#[derive(Debug, Clone)]
pub struct RecoveryCampaignConfig {
    /// Number of multi-job trials.
    pub trials: u64,
    /// Master seed; identical seeds reproduce identical campaigns.
    pub seed: u64,
    /// Job slots per trial. Must leave room for the full ladder: the
    /// default escalation policy needs 25 slots from first error to
    /// budget-exhausted retirement.
    pub jobs_per_trial: u32,
    /// Fault space sampled once per trial (use
    /// [`FaultSpace::with_intermittent`] / [`FaultSpace::with_stuck_at`]
    /// to give the diagnosis real signal).
    pub space: FaultSpace,
    /// Workloads cycled through (one per trial, round-robin).
    pub workloads: Vec<Workload>,
    /// α-count tuning.
    pub alpha: AlphaCountConfig,
    /// Escalation-ladder thresholds and restart budget.
    pub escalation: EscalationPolicy,
    /// Number of worker threads (results identical regardless).
    pub threads: usize,
}

impl RecoveryCampaignConfig {
    /// A standard recovery campaign: 30% intermittent (recurrence 0.85,
    /// burst 10 jobs), 20% stuck-at, remainder one-shot transients.
    pub fn new(trials: u64, seed: u64) -> Self {
        RecoveryCampaignConfig {
            trials,
            seed,
            jobs_per_trial: 48,
            space: FaultSpace::cpu_only()
                .with_intermittent(0.3, 0.85, 10)
                .with_stuck_at(0.2),
            workloads: nlft_machine::workloads::standard_workloads(),
            alpha: AlphaCountConfig::default(),
            escalation: EscalationPolicy::default(),
            threads: 1,
        }
    }
}

/// Verdict tallies of a recovery campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// One-shot transients handled without escalation.
    pub masked_transient: u64,
    /// Nodes that escalated and returned to service.
    pub recovered: u64,
    /// Permanent faults correctly retired.
    pub retired: u64,
    /// Non-permanent faults wrongly retired.
    pub false_retirement: u64,
    /// Permanent faults still in service at trial end.
    pub missed_permanent: u64,
    /// Trials ending mid-ladder.
    pub unresolved: u64,
}

impl RecoveryCounts {
    /// Total trials tallied.
    pub fn total(&self) -> u64 {
        self.masked_transient
            + self.recovered
            + self.retired
            + self.false_retirement
            + self.missed_permanent
            + self.unresolved
    }

    fn record(&mut self, v: RecoveryVerdict) {
        match v {
            RecoveryVerdict::MaskedTransient => self.masked_transient += 1,
            RecoveryVerdict::Recovered => self.recovered += 1,
            RecoveryVerdict::Retired => self.retired += 1,
            RecoveryVerdict::FalseRetirement => self.false_retirement += 1,
            RecoveryVerdict::MissedPermanent => self.missed_permanent += 1,
            RecoveryVerdict::Unresolved => self.unresolved += 1,
        }
    }
}

/// Full result of a recovery campaign, with the diagnosis metrics the
/// issue asks for: misclassification rate, detection latency in jobs, and
/// restart counts.
#[derive(Debug, Clone, Default)]
pub struct RecoveryCampaignResult {
    /// Trials run.
    pub trials: u64,
    /// Verdict tallies.
    pub counts: RecoveryCounts,
    /// False retirements over non-permanent trials (the misclassification
    /// rate; its Wilson upper bound must stay below
    /// [`crate::diagnosis::FALSE_RETIREMENT_BOUND`]).
    pub false_retirement: Proportion,
    /// Jobs from fault onset to the first fail-silent or retirement, over
    /// trials with a recurring fault that escalated.
    pub detection_latency_jobs: OnlineStats,
    /// Jobs from fault onset to retirement, over correctly retired
    /// permanent trials (compared against the analytic escalation chain).
    pub retirement_latency_jobs: OnlineStats,
    /// Restarts scheduled across all trials.
    pub restarts_total: u64,
    /// Per-active-job error rate measured during intermittent bursts —
    /// the `p_err` a matching analytic [`crate::diagnosis::escalation_chain`]
    /// should be built with.
    pub intermittent_error_rate: Proportion,
    /// Jobs that delivered a wrong result with no detection.
    pub undetected_wrong_jobs: u64,
}

impl RecoveryCampaignResult {
    fn merge(&mut self, other: &RecoveryCampaignResult) {
        self.trials += other.trials;
        let o = other.counts;
        self.counts.masked_transient += o.masked_transient;
        self.counts.recovered += o.recovered;
        self.counts.retired += o.retired;
        self.counts.false_retirement += o.false_retirement;
        self.counts.missed_permanent += o.missed_permanent;
        self.counts.unresolved += o.unresolved;
        self.false_retirement.merge(&other.false_retirement);
        self.detection_latency_jobs
            .merge(&other.detection_latency_jobs);
        self.retirement_latency_jobs
            .merge(&other.retirement_latency_jobs);
        self.restarts_total += other.restarts_total;
        self.intermittent_error_rate
            .merge(&other.intermittent_error_rate);
        self.undetected_wrong_jobs += other.undetected_wrong_jobs;
    }
}

impl fmt::Display for RecoveryCampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counts;
        writeln!(f, "recovery campaign: {} trials", self.trials)?;
        writeln!(
            f,
            "  masked {} / recovered {} / retired {} / false-retired {} / missed {} / unresolved {}",
            c.masked_transient,
            c.recovered,
            c.retired,
            c.false_retirement,
            c.missed_permanent,
            c.unresolved
        )?;
        let (lo, hi) = self
            .false_retirement
            .wilson_interval(nlft_sim::stats::Confidence::C95);
        writeln!(
            f,
            "  false-retirement rate = {:.4} (95% Wilson [{:.4}, {:.4}])",
            self.false_retirement.estimate(),
            lo,
            hi
        )?;
        writeln!(
            f,
            "  detection latency = {:.2} jobs (n={})",
            self.detection_latency_jobs.mean(),
            self.detection_latency_jobs.count()
        )?;
        write!(f, "  restarts = {}", self.restarts_total)
    }
}

/// Runs a multi-job recovery campaign: each trial samples one fault model
/// (transient / intermittent / stuck-at), drives a TEM node through
/// `jobs_per_trial` job slots under a [`NodeSupervisor`], and judges the
/// supervisor's verdict against the ground truth. Deterministic in the
/// seed and invariant under `threads`.
///
/// # Panics
///
/// Panics if the configuration has no trials, no workloads, or too few
/// jobs per trial to fit the escalation ladder.
pub fn run_recovery_campaign(config: &RecoveryCampaignConfig) -> RecoveryCampaignResult {
    assert!(config.trials > 0, "campaign needs trials");
    assert!(!config.workloads.is_empty(), "campaign needs workloads");
    assert!(
        config.jobs_per_trial >= 8,
        "recovery trials need room for the ladder"
    );
    let c = config.clone();
    let campaign = nlft_engine::indexed_campaign(
        "core-recovery",
        "recovery-trial",
        config.trials,
        RecoveryCampaignResult::default,
        move |trial, _ctx, result: &mut RecoveryCampaignResult| {
            let mut rng = RngStream::new(c.seed).fork_indexed("recovery-trial", trial);
            let workload = &c.workloads[(trial % c.workloads.len() as u64) as usize];
            run_recovery_trial(&c, workload, &mut rng, result);
        },
        |into, from| into.merge(&from),
    );
    let engine = nlft_engine::EngineConfig::with_workers(config.threads.max(1));
    nlft_engine::run_trials(campaign, &engine).acc
}

fn run_recovery_trial(
    config: &RecoveryCampaignConfig,
    workload: &Workload,
    rng: &mut RngStream,
    result: &mut RecoveryCampaignResult,
) {
    let inputs: Vec<u32> = workload
        .input_ports
        .iter()
        .map(|_| rng.uniform_range(0, 4096) as u32)
        .collect();
    let (golden, clean_cycles) = workload.golden_run(&inputs);
    let model = config.space.sample_model(rng);
    let onset = rng.uniform_range(1, (config.jobs_per_trial as u64 / 4).max(2)) as u32;

    let mut supervisor = NodeSupervisor::new(config.alpha, config.escalation);
    let mut restarts: u64 = 0;
    let mut first_silent: Option<u32> = None;
    let mut retired_at: Option<u32> = None;

    for job in 0..config.jobs_per_trial {
        if !supervisor.jobs_active() {
            for e in supervisor.tick_silent() {
                match e {
                    EscalationEvent::RestartScheduled { .. } => restarts += 1,
                    EscalationEvent::Retired => {
                        retired_at.get_or_insert(job);
                    }
                    _ => {}
                }
            }
            continue;
        }
        let fault = job_fault(&model, job, onset, clean_cycles, rng);
        let mut tem_config = TemConfig::with_budget(clean_cycles * 2 + 50);
        if supervisor.tem_triples() {
            tem_config.min_results = 3;
        }
        let tem = TemExecutor::new(tem_config);
        let mut machine = instantiate(workload, true);
        let report = tem.run_job_with_fault(&mut machine, workload, &inputs, fault);
        let errored = matches!(
            report.outcome,
            JobOutcome::DeliveredMasked { .. } | JobOutcome::Omission { .. }
        );
        if report.outcome.delivered() && report.outputs.as_ref() != Some(&golden) {
            result.undetected_wrong_jobs += 1;
        }
        if let FaultModel::Intermittent(f) = &model {
            if job >= onset && job - onset < f.burst_jobs {
                result.intermittent_error_rate.record(errored);
            }
        }
        for e in supervisor.observe_job(errored) {
            match e {
                EscalationEvent::WentSilent => {
                    first_silent.get_or_insert(job);
                }
                EscalationEvent::RestartScheduled { .. } => restarts += 1,
                EscalationEvent::Retired => {
                    retired_at.get_or_insert(job);
                }
                _ => {}
            }
        }
    }

    let healthy_at_end = supervisor.health() == NodeHealth::Healthy;
    let verdict = match model.persistence() {
        FaultPersistence::Permanent => {
            if retired_at.is_some() {
                RecoveryVerdict::Retired
            } else {
                RecoveryVerdict::MissedPermanent
            }
        }
        FaultPersistence::Transient => {
            if retired_at.is_some() {
                RecoveryVerdict::FalseRetirement
            } else if healthy_at_end && restarts == 0 {
                RecoveryVerdict::MaskedTransient
            } else if healthy_at_end {
                RecoveryVerdict::Recovered
            } else {
                RecoveryVerdict::Unresolved
            }
        }
        FaultPersistence::Intermittent => {
            if retired_at.is_some() {
                RecoveryVerdict::FalseRetirement
            } else if healthy_at_end {
                RecoveryVerdict::Recovered
            } else {
                RecoveryVerdict::Unresolved
            }
        }
    };

    result.trials += 1;
    result.counts.record(verdict);
    result.restarts_total += restarts;
    if model.persistence() != FaultPersistence::Permanent {
        result
            .false_retirement
            .record(verdict == RecoveryVerdict::FalseRetirement);
    }
    if model.persistence() != FaultPersistence::Transient {
        if let Some(at) = first_silent.or(retired_at) {
            result
                .detection_latency_jobs
                .record((at.saturating_sub(onset)) as f64);
        }
    }
    if verdict == RecoveryVerdict::Retired {
        if let Some(at) = retired_at {
            result
                .retirement_latency_jobs
                .record((at.saturating_sub(onset)) as f64);
        }
    }
}

/// The fault (if any) manifesting in this job slot, given the trial's
/// fault model and onset.
fn job_fault(
    model: &FaultModel,
    job: u32,
    onset: u32,
    clean_cycles: u64,
    rng: &mut RngStream,
) -> Option<JobFault> {
    if job < onset {
        return None;
    }
    match model {
        FaultModel::Transient(f) => {
            if job == onset {
                Some(JobFault::Transient(transient_plan(*f, clean_cycles, rng)))
            } else {
                None
            }
        }
        FaultModel::Intermittent(f) => {
            if f.manifests(job - onset, rng) {
                Some(JobFault::Transient(transient_plan(
                    f.fault,
                    clean_cycles,
                    rng,
                )))
            } else {
                None
            }
        }
        FaultModel::StuckAt(s) => Some(JobFault::StuckAt(*s)),
    }
}

fn transient_plan(fault: TransientFault, clean_cycles: u64, rng: &mut RngStream) -> InjectionPlan {
    InjectionPlan {
        copy: rng.uniform_range(0, 2) as u32,
        at_cycle: rng.uniform_range(1, clean_cycles.max(2)),
        fault,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(policy: NodePolicy, trials: u64) -> CampaignConfig {
        let mut c = CampaignConfig::new(trials, 0xBBC0FFEE, policy);
        c.workloads = vec![
            nlft_machine::workloads::sum_series(),
            nlft_machine::workloads::pid_controller(),
        ];
        c
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = quick_config(NodePolicy::LightweightNlft, 120);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.modes, b.modes);
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut cfg = quick_config(NodePolicy::LightweightNlft, 100);
        let seq = run_campaign(&cfg);
        cfg.threads = 4;
        let par = run_campaign(&cfg);
        assert_eq!(seq.counts, par.counts);
        assert_eq!(seq.modes, par.modes);
        assert_eq!(seq.matrix, par.matrix);
    }

    #[test]
    fn nlft_masks_most_detected_errors() {
        let cfg = quick_config(NodePolicy::LightweightNlft, 400);
        let r = run_campaign(&cfg);
        assert!(r.counts.detected > 0, "some faults must activate");
        let p_t = r.counts.p_t().estimate();
        assert!(
            p_t > 0.6,
            "TEM should mask the majority of detected transients, got {p_t}"
        );
        // Conditional probabilities partition.
        let total =
            r.counts.p_t().estimate() + r.counts.p_om().estimate() + r.counts.p_fs().estimate();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fs_policy_never_masks() {
        let cfg = quick_config(NodePolicy::FailSilent, 300);
        let r = run_campaign(&cfg);
        assert_eq!(r.counts.masked, 0);
        assert_eq!(r.counts.omissions, 0);
        assert_eq!(r.modes.omission, 0);
        assert!(r.modes.fail_silent > 0);
    }

    #[test]
    fn fs_policy_has_undetected_escapes() {
        // Without TEM, silent data corruption reaches the outputs.
        let cfg = quick_config(NodePolicy::FailSilent, 600);
        let r = run_campaign(&cfg);
        assert!(
            r.counts.undetected > 0,
            "a plain run must let some wrong outputs through"
        );
        let c_d = r.counts.coverage().estimate();
        assert!(c_d < 1.0);
    }

    #[test]
    fn nlft_coverage_exceeds_fs_coverage() {
        let nlft = run_campaign(&quick_config(NodePolicy::LightweightNlft, 600));
        let fs = run_campaign(&quick_config(NodePolicy::FailSilent, 600));
        let c_nlft = nlft.counts.coverage().estimate();
        let c_fs = fs.counts.coverage().estimate();
        assert!(
            c_nlft > c_fs,
            "TEM comparison must add coverage: {c_nlft} vs {c_fs}"
        );
    }

    #[test]
    fn kernel_fraction_produces_fail_silent() {
        let mut cfg = quick_config(NodePolicy::LightweightNlft, 400);
        cfg.kernel_fraction = 0.5;
        let r = run_campaign(&cfg);
        let p_fs = r.counts.p_fs().estimate();
        assert!(p_fs > 0.3, "half the faults hit the kernel, p_fs = {p_fs}");
    }

    #[test]
    fn matrix_populated_for_detections() {
        let cfg = quick_config(NodePolicy::LightweightNlft, 300);
        let r = run_campaign(&cfg);
        let any: u64 = nlft_machine::fault::TargetClass::ALL
            .iter()
            .map(|&c| r.matrix.total(c))
            .sum();
        assert!(any > 0);
        assert!(!r.matrix.render_table().is_empty());
    }

    #[test]
    fn display_summarises() {
        let cfg = quick_config(NodePolicy::LightweightNlft, 50);
        let r = run_campaign(&cfg);
        let text = r.to_string();
        assert!(text.contains("C_D"));
        assert!(text.contains("P_T"));
    }

    #[test]
    fn tight_deadlines_produce_omissions() {
        let mut cfg = quick_config(NodePolicy::LightweightNlft, 800);
        cfg.tight_deadline_fraction = 1.0; // every job slack-free
        let r = run_campaign(&cfg);
        assert!(
            r.counts.omissions > 0,
            "without slack, some detected errors must become omissions"
        );
        // Early EDM kills still get masked — the killed copy's unused time
        // is reclaimed (§2.5) — but expensive detections (budget overruns)
        // can no longer fit a recovery, so omissions appear alongside.
        assert!(r.counts.p_om().estimate() > 0.01);
    }

    #[test]
    fn omission_rate_tracks_slack_pressure() {
        let mut relaxed = quick_config(NodePolicy::LightweightNlft, 800);
        relaxed.tight_deadline_fraction = 0.0;
        let mut pressed = quick_config(NodePolicy::LightweightNlft, 800);
        pressed.tight_deadline_fraction = 0.3;
        let r0 = run_campaign(&relaxed);
        let r1 = run_campaign(&pressed);
        assert_eq!(r0.counts.omissions, 0);
        assert!(r1.counts.p_om().estimate() > r0.counts.p_om().estimate());
    }

    #[test]
    fn ecc_ablation_lowers_coverage_with_memory_faults() {
        use nlft_machine::fault::FaultSpace;
        let mk = |ecc: bool| {
            let mut cfg = quick_config(NodePolicy::FailSilent, 1200);
            cfg.space = FaultSpace::seu(nlft_machine::workloads::MEM_BYTES);
            cfg.ecc = ecc;
            run_campaign(&cfg)
        };
        let with_ecc = mk(true);
        let without = mk(false);
        // Memory faults under ECC are corrected (benign) or detected; with
        // ECC off, more of them land as activated errors or escapes.
        let benign_with = with_ecc.counts.benign;
        let benign_without = without.counts.benign;
        assert!(
            benign_without <= benign_with,
            "ECC-off cannot make more faults benign: {benign_without} vs {benign_with}"
        );
    }

    #[test]
    #[should_panic(expected = "needs trials")]
    fn zero_trials_rejected() {
        let cfg = quick_config(NodePolicy::FailSilent, 1);
        let mut cfg = cfg;
        cfg.trials = 0;
        run_campaign(&cfg);
    }

    fn quick_recovery(trials: u64) -> RecoveryCampaignConfig {
        let mut c = RecoveryCampaignConfig::new(trials, 0xD1A6_0515);
        c.workloads = vec![
            nlft_machine::workloads::sum_series(),
            nlft_machine::workloads::pid_controller(),
        ];
        c
    }

    #[test]
    fn recovery_campaign_is_deterministic() {
        let cfg = quick_recovery(60);
        let a = run_recovery_campaign(&cfg);
        let b = run_recovery_campaign(&cfg);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.restarts_total, b.restarts_total);
    }

    #[test]
    fn recovery_campaign_thread_invariant() {
        let mut cfg = quick_recovery(50);
        let seq = run_recovery_campaign(&cfg);
        cfg.threads = 2;
        let two = run_recovery_campaign(&cfg);
        cfg.threads = 5;
        let five = run_recovery_campaign(&cfg);
        assert_eq!(seq.counts, two.counts);
        assert_eq!(seq.counts, five.counts);
        assert_eq!(seq.restarts_total, two.restarts_total);
        assert_eq!(seq.restarts_total, five.restarts_total);
        assert_eq!(
            seq.detection_latency_jobs.count(),
            five.detection_latency_jobs.count()
        );
    }

    #[test]
    fn recovery_campaign_produces_all_regimes() {
        let r = run_recovery_campaign(&quick_recovery(150));
        assert!(r.counts.masked_transient > 0, "transients must be masked");
        assert!(r.counts.recovered > 0, "intermittents must recover");
        assert!(r.counts.retired > 0, "stuck-ats must retire");
        assert!(r.restarts_total > 0, "recovery must spend restarts");
        assert_eq!(r.counts.total(), r.trials);
    }

    #[test]
    fn recovery_false_retirement_stays_below_bound() {
        let r = run_recovery_campaign(&quick_recovery(200));
        let (_, hi) = r
            .false_retirement
            .wilson_interval(nlft_sim::stats::Confidence::C95);
        assert!(
            hi < crate::diagnosis::FALSE_RETIREMENT_BOUND,
            "false-retirement Wilson upper bound {hi} exceeds {}",
            crate::diagnosis::FALSE_RETIREMENT_BOUND
        );
    }

    #[test]
    fn recovery_display_summarises() {
        let r = run_recovery_campaign(&quick_recovery(30));
        let text = r.to_string();
        assert!(text.contains("false-retirement rate"));
        assert!(text.contains("restarts"));
    }

    #[test]
    fn transient_only_space_never_restarts() {
        let mut cfg = quick_recovery(80);
        cfg.space = FaultSpace::cpu_only();
        let r = run_recovery_campaign(&cfg);
        assert_eq!(r.counts.retired, 0);
        assert_eq!(r.counts.false_retirement, 0);
        assert_eq!(r.counts.missed_permanent, 0);
        assert_eq!(
            r.counts.masked_transient + r.counts.recovered + r.counts.unresolved,
            r.trials
        );
    }
}
