//! Fault-injection campaigns.
//!
//! The paper's parameters — coverage `C_D` and the detected-transient split
//! `P_T`/`P_OM`/`P_FS` — came from fault-injection experiments on the
//! authors' kernel ([7], [8]). This module reproduces that methodology on
//! the simulated stack: inject transients into a node running real
//! workloads under a policy (fail-silent or NLFT/TEM), classify every
//! outcome against a golden run, and estimate the parameters with Wilson
//! confidence intervals. Campaigns are deterministic in their seed and
//! shard across threads without changing results.

use std::fmt;

use nlft_kernel::tem::{InjectionPlan, JobOutcome, TemConfig, TemExecutor};
use nlft_machine::edm::{DetectionMatrix, Edm};
use nlft_machine::fault::{run_with_injection, FaultSpace, TransientFault};
use nlft_machine::machine::{RunExit, NUM_PORTS};
use nlft_machine::workloads::Workload;
use nlft_sim::rng::RngStream;
use nlft_sim::stats::Proportion;

use crate::policy::{NodeFailureMode, NodePolicy};

/// Classification of a single injection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Fault had no observable effect (overwritten, latent, or the task
    /// finished before the injection point).
    Benign,
    /// An error occurred, was detected, and TEM delivered a correct result.
    Masked {
        /// First mechanism that saw the error.
        detected_by: Edm,
    },
    /// An error was detected but no result could be delivered in time.
    Omission {
        /// The mechanism behind the final omission.
        detected_by: Edm,
    },
    /// An error was detected with no masking attempted (fail-silent node).
    Detected {
        /// The detecting mechanism.
        detected_by: Edm,
    },
    /// The fault struck while kernel code was running; kernel checks catch
    /// it and the node goes silent.
    KernelError,
    /// A wrong result was delivered with no detection — a coverage escape.
    UndetectedWrongOutput,
}

impl Verdict {
    /// The detecting mechanism, if any detection happened.
    pub fn detected_by(self) -> Option<Edm> {
        match self {
            Verdict::Masked { detected_by }
            | Verdict::Omission { detected_by }
            | Verdict::Detected { detected_by } => Some(detected_by),
            Verdict::KernelError => Some(Edm::DataIntegrity),
            Verdict::Benign | Verdict::UndetectedWrongOutput => None,
        }
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injections.
    pub trials: u64,
    /// Master seed; identical seeds reproduce identical campaigns.
    pub seed: u64,
    /// Node policy under test.
    pub policy: NodePolicy,
    /// The fault space sampled.
    pub space: FaultSpace,
    /// Workloads cycled through (one per trial, round-robin).
    pub workloads: Vec<Workload>,
    /// Fraction of CPU time in kernel code: faults landing there become
    /// kernel errors (the paper assumes ~5%, citing [10]).
    pub kernel_fraction: f64,
    /// Fraction of jobs whose deadline leaves no recovery slack (e.g. a
    /// second fault already consumed it, §2.5): a detected error in such a
    /// job becomes an omission instead of being masked.
    pub tight_deadline_fraction: f64,
    /// Run the node with ECC-protected memory (`true`, the default) or
    /// without (cheap-node ablation: memory faults escape to the program).
    pub ecc: bool,
    /// Number of worker threads (1 = sequential; results are identical
    /// regardless).
    pub threads: usize,
}

impl CampaignConfig {
    /// A standard campaign over the stock workloads.
    pub fn new(trials: u64, seed: u64, policy: NodePolicy) -> Self {
        CampaignConfig {
            trials,
            seed,
            policy,
            space: FaultSpace::cpu_only(),
            workloads: nlft_machine::workloads::standard_workloads(),
            kernel_fraction: 0.05,
            tight_deadline_fraction: 0.05,
            ecc: true,
            threads: 1,
        }
    }
}

/// Point estimates (with counts) of the paper's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParamCounts {
    /// Errors detected (masked + omission + fail-silent + FS detections).
    pub detected: u64,
    /// Errors that escaped detection.
    pub undetected: u64,
    /// Detected errors masked by TEM.
    pub masked: u64,
    /// Detected errors that became omissions.
    pub omissions: u64,
    /// Detected errors that silenced the node (kernel + FS policy).
    pub fail_silent: u64,
    /// Faults with no observable effect.
    pub benign: u64,
}

impl ParamCounts {
    /// Error-detection coverage `C_D` as a proportion.
    pub fn coverage(&self) -> Proportion {
        Proportion::from_counts(self.detected, self.detected + self.undetected)
    }

    /// `P_T`: detected errors masked.
    pub fn p_t(&self) -> Proportion {
        Proportion::from_counts(self.masked, self.detected)
    }

    /// `P_OM`: detected errors that became omissions.
    pub fn p_om(&self) -> Proportion {
        Proportion::from_counts(self.omissions, self.detected)
    }

    /// `P_FS`: detected errors that silenced the node.
    pub fn p_fs(&self) -> Proportion {
        Proportion::from_counts(self.fail_silent, self.detected)
    }
}

/// Full campaign result.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Trials run.
    pub trials: u64,
    /// Per-(fault class × EDM) detection matrix — the Table 1 artifact.
    pub matrix: DetectionMatrix,
    /// Aggregated parameter counts.
    pub counts: ParamCounts,
    /// Node-boundary failure modes, tallied.
    pub modes: ModeCounts,
}

/// Tally of node-boundary failure modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeCounts {
    /// No externally visible effect.
    pub masked: u64,
    /// Omission failures.
    pub omission: u64,
    /// Fail-silent failures.
    pub fail_silent: u64,
    /// Undetected wrong outputs.
    pub undetected: u64,
}

impl CampaignResult {
    fn merge(&mut self, other: &CampaignResult) {
        self.trials += other.trials;
        self.matrix.merge(&other.matrix);
        self.counts.detected += other.counts.detected;
        self.counts.undetected += other.counts.undetected;
        self.counts.masked += other.counts.masked;
        self.counts.omissions += other.counts.omissions;
        self.counts.fail_silent += other.counts.fail_silent;
        self.counts.benign += other.counts.benign;
        self.modes.masked += other.modes.masked;
        self.modes.omission += other.modes.omission;
        self.modes.fail_silent += other.modes.fail_silent;
        self.modes.undetected += other.modes.undetected;
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counts;
        writeln!(f, "campaign: {} trials", self.trials)?;
        writeln!(
            f,
            "  benign {} / detected {} / undetected {}",
            c.benign, c.detected, c.undetected
        )?;
        let pct = |p: Proportion| format!("{:.4}", p.estimate());
        writeln!(f, "  C_D  = {}", pct(c.coverage()))?;
        writeln!(f, "  P_T  = {}", pct(c.p_t()))?;
        writeln!(f, "  P_OM = {}", pct(c.p_om()))?;
        write!(f, "  P_FS = {}", pct(c.p_fs()))
    }
}

/// Runs a campaign.
///
/// # Panics
///
/// Panics if the configuration has no trials, no workloads, or an invalid
/// kernel fraction.
pub fn run_campaign(config: &CampaignConfig) -> CampaignResult {
    assert!(config.trials > 0, "campaign needs trials");
    assert!(!config.workloads.is_empty(), "campaign needs workloads");
    assert!(
        (0.0..1.0).contains(&config.kernel_fraction),
        "kernel fraction must be in [0,1)"
    );
    assert!(
        (0.0..=1.0).contains(&config.tight_deadline_fraction),
        "tight-deadline fraction must be in [0,1]"
    );
    let threads = config.threads.max(1);
    if threads == 1 {
        return run_shard(config, 0, config.trials);
    }
    let chunk = config.trials.div_ceil(threads as u64);
    // Every trial forks its own stream from (seed, trial index), so the
    // shard boundaries — and hence the thread count — cannot perturb any
    // drawn value; parallelism only decides which worker runs a trial.
    let mut shards: Vec<CampaignResult> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|i| {
                let start = i * chunk;
                let end = ((i + 1) * chunk).min(config.trials);
                scope.spawn(move || {
                    if start < end {
                        run_shard(config, start, end)
                    } else {
                        CampaignResult::default()
                    }
                })
            })
            .collect();
        for h in handles {
            shards.push(h.join().expect("campaign shard panicked"));
        }
    });
    let mut total = CampaignResult::default();
    for s in &shards {
        total.merge(s);
    }
    total
}

fn run_shard(config: &CampaignConfig, start: u64, end: u64) -> CampaignResult {
    let root = RngStream::new(config.seed);
    let mut result = CampaignResult::default();
    // Pre-compute goldens per workload per canonical input set.
    for trial in start..end {
        let mut rng = root.fork_indexed("trial", trial);
        let workload = &config.workloads[(trial % config.workloads.len() as u64) as usize];
        let verdict = run_trial(config, workload, &mut rng);
        record(&mut result, config.policy, verdict, &mut rng, workload, config);
    }
    result
}

fn run_trial(config: &CampaignConfig, workload: &Workload, rng: &mut RngStream) -> TrialOutcome {
    // Random inputs in sensor range keep campaigns from over-fitting one
    // data point.
    let inputs: Vec<u32> = workload
        .input_ports
        .iter()
        .map(|_| rng.uniform_range(0, 4096) as u32)
        .collect();
    let (golden, clean_cycles) = workload.golden_run(&inputs);

    // Does the fault land in kernel code?
    if rng.bernoulli(config.kernel_fraction) {
        return TrialOutcome {
            verdict: Verdict::KernelError,
            fault: None,
        };
    }

    let fault = config.space.sample(rng);
    let at_cycle = rng.uniform_range(1, clean_cycles.max(2));

    match config.policy {
        NodePolicy::LightweightNlft => {
            let copy = rng.uniform_range(0, 2) as u32;
            let mut tem_config = TemConfig::with_budget(clean_cycles * 2 + 50);
            if rng.bernoulli(config.tight_deadline_fraction) {
                // No recovery slack this period: two copies and the
                // comparison must fit, nothing more (§2.5's "enough time
                // may not be available").
                tem_config.deadline_cycles =
                    tem_config.copy_budget * 2 + tem_config.compare_cycles;
            }
            let tem = TemExecutor::new(tem_config);
            let mut machine = instantiate(workload, config.ecc);
            let plan = InjectionPlan {
                copy,
                at_cycle,
                fault,
            };
            let report = tem.run_job(&mut machine, workload, &inputs, Some(plan));
            let verdict = match report.outcome {
                JobOutcome::DeliveredClean => {
                    if report.outputs == Some(golden) {
                        Verdict::Benign
                    } else {
                        Verdict::UndetectedWrongOutput
                    }
                }
                JobOutcome::DeliveredMasked { detected_by } => {
                    if report.outputs == Some(golden) {
                        Verdict::Masked { detected_by }
                    } else {
                        Verdict::UndetectedWrongOutput
                    }
                }
                JobOutcome::Omission { detected_by } => Verdict::Omission { detected_by },
            };
            TrialOutcome {
                verdict,
                fault: Some(fault),
            }
        }
        NodePolicy::FailSilent => {
            let mut machine = instantiate(workload, config.ecc);
            for (&port, &v) in workload.input_ports.iter().zip(&inputs) {
                machine.set_input(port, v);
            }
            let budget = clean_cycles * 2 + 50;
            let (outcome, _) = run_with_injection(&mut machine, budget, at_cycle, fault);
            let verdict = match outcome.exit {
                RunExit::Halted => {
                    if outputs_match(machine.outputs(), &golden) {
                        Verdict::Benign
                    } else {
                        Verdict::UndetectedWrongOutput
                    }
                }
                RunExit::Exception(e) => Verdict::Detected {
                    detected_by: Edm::from_exception(&e),
                },
                RunExit::BudgetExhausted => Verdict::Detected {
                    detected_by: Edm::ExecutionTimeMonitor,
                },
            };
            TrialOutcome {
                verdict,
                fault: Some(fault),
            }
        }
    }
}

fn outputs_match(actual: &[Option<u32>; NUM_PORTS], golden: &[Option<u32>; NUM_PORTS]) -> bool {
    actual == golden
}

/// Builds a fresh machine for the trial, with or without ECC memory.
fn instantiate(workload: &Workload, ecc: bool) -> nlft_machine::machine::Machine {
    if ecc {
        workload.instantiate()
    } else {
        let mut m = nlft_machine::machine::Machine::new_without_ecc(
            nlft_machine::workloads::MEM_BYTES,
            workload.map.clone(),
        );
        m.load_program(0, &workload.image.words)
            .expect("workload image fits standard memory");
        m.reset(0, nlft_machine::workloads::STACK_TOP);
        m
    }
}

struct TrialOutcome {
    verdict: Verdict,
    fault: Option<TransientFault>,
}

fn record(
    result: &mut CampaignResult,
    policy: NodePolicy,
    outcome: TrialOutcome,
    _rng: &mut RngStream,
    _workload: &Workload,
    _config: &CampaignConfig,
) {
    result.trials += 1;
    let class = outcome.fault.map(|f| f.target.class());
    match outcome.verdict {
        Verdict::Benign => {
            result.counts.benign += 1;
            if let Some(c) = class {
                result.matrix.record_benign(c);
            }
        }
        Verdict::Masked { detected_by } => {
            result.counts.detected += 1;
            result.counts.masked += 1;
            if let Some(c) = class {
                result.matrix.record_detection(c, detected_by);
            }
        }
        Verdict::Omission { detected_by } => {
            result.counts.detected += 1;
            result.counts.omissions += 1;
            if let Some(c) = class {
                result.matrix.record_detection(c, detected_by);
            }
        }
        Verdict::Detected { detected_by } => {
            result.counts.detected += 1;
            result.counts.fail_silent += 1;
            if let Some(c) = class {
                result.matrix.record_detection(c, detected_by);
            }
        }
        Verdict::KernelError => {
            result.counts.detected += 1;
            result.counts.fail_silent += 1;
        }
        Verdict::UndetectedWrongOutput => {
            result.counts.undetected += 1;
            if let Some(c) = class {
                result.matrix.record_undetected(c);
            }
        }
    }
    match NodeFailureMode::classify(policy, outcome.verdict) {
        NodeFailureMode::Masked => result.modes.masked += 1,
        NodeFailureMode::Omission => result.modes.omission += 1,
        NodeFailureMode::FailSilent => result.modes.fail_silent += 1,
        NodeFailureMode::Undetected => result.modes.undetected += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(policy: NodePolicy, trials: u64) -> CampaignConfig {
        let mut c = CampaignConfig::new(trials, 0xBBC0FFEE, policy);
        c.workloads = vec![
            nlft_machine::workloads::sum_series(),
            nlft_machine::workloads::pid_controller(),
        ];
        c
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = quick_config(NodePolicy::LightweightNlft, 120);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.modes, b.modes);
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut cfg = quick_config(NodePolicy::LightweightNlft, 100);
        let seq = run_campaign(&cfg);
        cfg.threads = 4;
        let par = run_campaign(&cfg);
        assert_eq!(seq.counts, par.counts);
        assert_eq!(seq.modes, par.modes);
        assert_eq!(seq.matrix, par.matrix);
    }

    #[test]
    fn nlft_masks_most_detected_errors() {
        let cfg = quick_config(NodePolicy::LightweightNlft, 400);
        let r = run_campaign(&cfg);
        assert!(r.counts.detected > 0, "some faults must activate");
        let p_t = r.counts.p_t().estimate();
        assert!(
            p_t > 0.6,
            "TEM should mask the majority of detected transients, got {p_t}"
        );
        // Conditional probabilities partition.
        let total = r.counts.p_t().estimate() + r.counts.p_om().estimate()
            + r.counts.p_fs().estimate();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fs_policy_never_masks() {
        let cfg = quick_config(NodePolicy::FailSilent, 300);
        let r = run_campaign(&cfg);
        assert_eq!(r.counts.masked, 0);
        assert_eq!(r.counts.omissions, 0);
        assert_eq!(r.modes.omission, 0);
        assert!(r.modes.fail_silent > 0);
    }

    #[test]
    fn fs_policy_has_undetected_escapes() {
        // Without TEM, silent data corruption reaches the outputs.
        let cfg = quick_config(NodePolicy::FailSilent, 600);
        let r = run_campaign(&cfg);
        assert!(
            r.counts.undetected > 0,
            "a plain run must let some wrong outputs through"
        );
        let c_d = r.counts.coverage().estimate();
        assert!(c_d < 1.0);
    }

    #[test]
    fn nlft_coverage_exceeds_fs_coverage() {
        let nlft = run_campaign(&quick_config(NodePolicy::LightweightNlft, 600));
        let fs = run_campaign(&quick_config(NodePolicy::FailSilent, 600));
        let c_nlft = nlft.counts.coverage().estimate();
        let c_fs = fs.counts.coverage().estimate();
        assert!(
            c_nlft > c_fs,
            "TEM comparison must add coverage: {c_nlft} vs {c_fs}"
        );
    }

    #[test]
    fn kernel_fraction_produces_fail_silent() {
        let mut cfg = quick_config(NodePolicy::LightweightNlft, 400);
        cfg.kernel_fraction = 0.5;
        let r = run_campaign(&cfg);
        let p_fs = r.counts.p_fs().estimate();
        assert!(p_fs > 0.3, "half the faults hit the kernel, p_fs = {p_fs}");
    }

    #[test]
    fn matrix_populated_for_detections() {
        let cfg = quick_config(NodePolicy::LightweightNlft, 300);
        let r = run_campaign(&cfg);
        let any: u64 = nlft_machine::fault::TargetClass::ALL
            .iter()
            .map(|&c| r.matrix.total(c))
            .sum();
        assert!(any > 0);
        assert!(!r.matrix.render_table().is_empty());
    }

    #[test]
    fn display_summarises() {
        let cfg = quick_config(NodePolicy::LightweightNlft, 50);
        let r = run_campaign(&cfg);
        let text = r.to_string();
        assert!(text.contains("C_D"));
        assert!(text.contains("P_T"));
    }

    #[test]
    fn tight_deadlines_produce_omissions() {
        let mut cfg = quick_config(NodePolicy::LightweightNlft, 800);
        cfg.tight_deadline_fraction = 1.0; // every job slack-free
        let r = run_campaign(&cfg);
        assert!(
            r.counts.omissions > 0,
            "without slack, some detected errors must become omissions"
        );
        // Early EDM kills still get masked — the killed copy's unused time
        // is reclaimed (§2.5) — but expensive detections (budget overruns)
        // can no longer fit a recovery, so omissions appear alongside.
        assert!(r.counts.p_om().estimate() > 0.01);
    }

    #[test]
    fn omission_rate_tracks_slack_pressure() {
        let mut relaxed = quick_config(NodePolicy::LightweightNlft, 800);
        relaxed.tight_deadline_fraction = 0.0;
        let mut pressed = quick_config(NodePolicy::LightweightNlft, 800);
        pressed.tight_deadline_fraction = 0.3;
        let r0 = run_campaign(&relaxed);
        let r1 = run_campaign(&pressed);
        assert_eq!(r0.counts.omissions, 0);
        assert!(r1.counts.p_om().estimate() > r0.counts.p_om().estimate());
    }

    #[test]
    fn ecc_ablation_lowers_coverage_with_memory_faults() {
        use nlft_machine::fault::FaultSpace;
        let mk = |ecc: bool| {
            let mut cfg = quick_config(NodePolicy::FailSilent, 1200);
            cfg.space = FaultSpace::seu(nlft_machine::workloads::MEM_BYTES);
            cfg.ecc = ecc;
            run_campaign(&cfg)
        };
        let with_ecc = mk(true);
        let without = mk(false);
        // Memory faults under ECC are corrected (benign) or detected; with
        // ECC off, more of them land as activated errors or escapes.
        let benign_with = with_ecc.counts.benign;
        let benign_without = without.counts.benign;
        assert!(
            benign_without <= benign_with,
            "ECC-off cannot make more faults benign: {benign_without} vs {benign_with}"
        );
    }

    #[test]
    #[should_panic(expected = "needs trials")]
    fn zero_trials_rejected() {
        let cfg = quick_config(NodePolicy::FailSilent, 1);
        let mut cfg = cfg;
        cfg.trials = 0;
        run_campaign(&cfg);
    }
}
