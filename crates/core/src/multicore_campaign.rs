//! The core-death campaign: lock-based vs LEFT-RS resource sharing on a
//! multicore NLFT node, under adversarial in-section core-death placement.
//!
//! Every trial forks its own labelled RNG stream, samples one
//! [`CoreDeathFault`] (victim core, arming tick, crash vs escalated
//! fail-silence), and runs the *same* placement through two otherwise
//! identical 2-core executives — one sharing state through per-resource
//! locks, one through LEFT-RS lock-free retry-bounded sections. The
//! campaign demonstrates the robustness claim end to end:
//!
//! * every hard crash inside a critical section leaves the lock-based
//!   node with at least one deadlocked or deadline-missed peer job, while
//!   the LEFT-RS node records zero misses and zero deadlocks;
//! * an *escalated* death (the PR 3 ladder silences the core, revoking
//!   held resources) is survivable even by the lock-based node — the
//!   escalation/resource fix in action;
//! * the worst observed CAS retry re-execution cost never exceeds the
//!   retry term certified offline by
//!   [`nlft_kernel::analysis::response_time_with_blocking`].
//!
//! Results are bit-identical at any thread count (golden-pinned at
//! 1/2/5 threads alongside the other campaign families).

use nlft_kernel::multicore::MulticoreExecutive;
use nlft_kernel::resources::{certify, left_rs_retry_term, ProtocolKind};
use nlft_kernel::EscalationPolicy;
use nlft_machine::fault::CoreDeathFault;
use nlft_sim::rng::RngStream;

/// Configuration of [`run_multicore_campaign`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulticoreCampaignConfig {
    /// Monte Carlo trials.
    pub trials: u64,
    /// Root RNG seed; each trial forks `("multicore-trial", index)`.
    pub seed: u64,
    /// Cores per node (≥ 2 so sections actually contend).
    pub cores: u32,
    /// Executive horizon in ticks (µs).
    pub horizon: u64,
    /// Probability a sampled death is escalated fail-silence rather than
    /// a hard crash.
    pub escalated_p: f64,
    /// Worker threads (results identical regardless).
    pub threads: usize,
}

impl MulticoreCampaignConfig {
    /// The nominal campaign: 2-core reference node, 4 ms horizon, one
    /// quarter of deaths escalated.
    pub fn new(trials: u64, seed: u64) -> Self {
        MulticoreCampaignConfig {
            trials,
            seed,
            cores: 2,
            horizon: 4_000,
            escalated_p: 0.25,
            threads: 1,
        }
    }
}

/// Aggregated campaign outcome. All counters are integers so golden pins
/// are bit-exact across platforms and thread counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MulticoreCampaignResult {
    /// Trials executed.
    pub trials: u64,
    /// Trials whose death was a hard crash.
    pub crash_trials: u64,
    /// Trials whose death was escalated fail-silence.
    pub escalated_trials: u64,
    /// Crash trials where the lock-based node recorded ≥ 1 deadlock or
    /// deadline miss — the claim requires this to equal `crash_trials`.
    pub lock_failed_crash_trials: u64,
    /// Crash trials the lock-based node survived clean (claim: zero).
    pub lock_clean_crash_trials: u64,
    /// Escalated trials the lock-based node survived clean (claim: all —
    /// the ladder's revocation saves it).
    pub lock_clean_escalated_trials: u64,
    /// Total deadlocked jobs across all lock-based runs.
    pub lock_deadlocks: u64,
    /// Total missed deadlines across all lock-based runs.
    pub lock_misses: u64,
    /// Total missed deadlines across all LEFT-RS runs (claim: zero).
    pub leftrs_misses: u64,
    /// Total deadlocks across all LEFT-RS runs (claim: zero).
    pub leftrs_deadlocks: u64,
    /// Trials the LEFT-RS node survived clean (claim: all).
    pub leftrs_clean_trials: u64,
    /// Worst per-job CAS retry count observed in any LEFT-RS run.
    pub leftrs_max_retries: u32,
    /// Worst per-job retry re-execution cost observed, in µs.
    pub leftrs_max_retry_cost_us: u64,
    /// Trials whose observed retry cost exceeded the certified retry
    /// term (claim: zero — the certification is sound).
    pub retry_bound_breaches: u64,
    /// Escalation-ladder events recorded across both executives.
    pub escalation_events: u64,
    /// Tasks of the reference node that certify under LEFT-RS
    /// (`response_time_with_blocking` returns a bound). Filled once
    /// after merging, not per shard.
    pub certified_tasks: u64,
    /// Tasks that fail certification (claim: zero on the 2-core node).
    pub uncertified_tasks: u64,
    /// The certified worst-case retry term, in µs.
    pub certified_retry_term_us: u64,
}

impl MulticoreCampaignResult {
    fn merge(&mut self, other: &MulticoreCampaignResult) {
        self.trials += other.trials;
        self.crash_trials += other.crash_trials;
        self.escalated_trials += other.escalated_trials;
        self.lock_failed_crash_trials += other.lock_failed_crash_trials;
        self.lock_clean_crash_trials += other.lock_clean_crash_trials;
        self.lock_clean_escalated_trials += other.lock_clean_escalated_trials;
        self.lock_deadlocks += other.lock_deadlocks;
        self.lock_misses += other.lock_misses;
        self.leftrs_misses += other.leftrs_misses;
        self.leftrs_deadlocks += other.leftrs_deadlocks;
        self.leftrs_clean_trials += other.leftrs_clean_trials;
        self.leftrs_max_retries = self.leftrs_max_retries.max(other.leftrs_max_retries);
        self.leftrs_max_retry_cost_us = self
            .leftrs_max_retry_cost_us
            .max(other.leftrs_max_retry_cost_us);
        self.retry_bound_breaches += other.retry_bound_breaches;
        self.escalation_events += other.escalation_events;
    }

    /// `true` when every robustness claim held: all crashes broke the
    /// lock-based node, nothing broke LEFT-RS, the ladder saved the
    /// escalated lock-based runs, and the retry bound was never
    /// breached.
    pub fn claims_hold(&self) -> bool {
        self.lock_failed_crash_trials == self.crash_trials
            && self.lock_clean_crash_trials == 0
            && self.lock_clean_escalated_trials == self.escalated_trials
            && self.leftrs_clean_trials == self.trials
            && self.leftrs_misses == 0
            && self.leftrs_deadlocks == 0
            && self.retry_bound_breaches == 0
            && self.uncertified_tasks == 0
    }
}

/// The certified worst-case LEFT-RS retry term for the reference node,
/// in µs: the maximum over tasks of `longest section × (cores − 1)`.
fn certified_retry_term_us(cores: u32) -> u64 {
    let (set, map) = MulticoreExecutive::reference_workload(cores as usize);
    set.iter()
        .map(|t| left_rs_retry_term(&map, t, cores).as_micros())
        .max()
        .unwrap_or(0)
}

fn run_multicore_trial(
    config: &MulticoreCampaignConfig,
    certified_term: u64,
    trial: u64,
    result: &mut MulticoreCampaignResult,
) {
    let mut rng = RngStream::new(config.seed).fork_indexed("multicore-trial", trial);
    let death = CoreDeathFault::sample(
        &mut rng,
        config.cores,
        (config.horizon / 2).max(2),
        config.escalated_p,
    );
    result.trials += 1;
    if death.escalated {
        result.escalated_trials += 1;
    } else {
        result.crash_trials += 1;
    }

    let run = |kind: ProtocolKind| {
        let mut exec = MulticoreExecutive::reference(config.cores as usize, kind);
        if death.escalated {
            exec.supervise(death.core as usize, EscalationPolicy::default());
        }
        exec.inject(death);
        exec.run(config.horizon)
    };

    let lock = run(ProtocolKind::LockBased);
    result.lock_deadlocks += lock.deadlocks;
    result.lock_misses += lock.missed;
    result.escalation_events += lock.escalations.len() as u64;
    if death.escalated {
        if lock.clean() {
            result.lock_clean_escalated_trials += 1;
        }
    } else if lock.clean() {
        result.lock_clean_crash_trials += 1;
    } else {
        result.lock_failed_crash_trials += 1;
    }

    let cas = run(ProtocolKind::LeftRs);
    result.leftrs_misses += cas.missed;
    result.leftrs_deadlocks += cas.deadlocks;
    result.escalation_events += cas.escalations.len() as u64;
    if cas.clean() {
        result.leftrs_clean_trials += 1;
    }
    result.leftrs_max_retries = result.leftrs_max_retries.max(cas.max_retries);
    let cost = cas.max_retry_cost.as_micros();
    result.leftrs_max_retry_cost_us = result.leftrs_max_retry_cost_us.max(cost);
    if cost > certified_term {
        result.retry_bound_breaches += 1;
    }
}

/// Runs the campaign, sharded over `config.threads` workers; results are
/// a pure function of the seed and invariant under the thread count.
pub fn run_multicore_campaign(config: &MulticoreCampaignConfig) -> MulticoreCampaignResult {
    assert!(config.trials > 0, "campaign needs trials");
    assert!(config.cores >= 2, "core-death needs a surviving peer core");
    assert!(config.horizon >= 4, "horizon too short to arm a death");
    // Every trial forks its own stream from (seed, trial index), so the
    // engine's work distribution cannot perturb any drawn value;
    // parallelism only decides which worker runs a trial.
    let c = *config;
    let certified_term = certified_retry_term_us(config.cores);
    let campaign = nlft_engine::indexed_campaign(
        "core-multicore",
        "multicore-trial",
        config.trials,
        MulticoreCampaignResult::default,
        move |trial, _ctx, result: &mut MulticoreCampaignResult| {
            run_multicore_trial(&c, certified_term, trial, result);
        },
        |into, from| into.merge(&from),
    );
    let engine = nlft_engine::EngineConfig::with_workers(config.threads.max(1));
    let mut total = nlft_engine::run_trials(campaign, &engine).acc;
    let (set, map) = MulticoreExecutive::reference_workload(config.cores as usize);
    for c in certify(&set, &map, ProtocolKind::LeftRs, config.cores, 1) {
        if c.response.is_some() {
            total.certified_tasks += 1;
        } else {
            total.uncertified_tasks += 1;
        }
    }
    total.certified_retry_term_us = certified_retry_term_us(config.cores);
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_claims_hold_on_the_nominal_config() {
        let result = run_multicore_campaign(&MulticoreCampaignConfig::new(40, 0x2005_0a01));
        assert_eq!(result.trials, 40);
        assert!(result.crash_trials > 0, "{result:?}");
        assert!(result.escalated_trials > 0, "{result:?}");
        assert!(result.claims_hold(), "{result:?}");
        assert!(result.lock_deadlocks > 0);
        assert!(result.escalation_events > 0);
        assert_eq!(result.certified_tasks, 4);
        assert_eq!(result.certified_retry_term_us, 40);
        assert!(result.leftrs_max_retry_cost_us <= result.certified_retry_term_us);
    }

    #[test]
    fn campaign_golden_pin_identical_at_1_2_5_threads() {
        let mut config = MulticoreCampaignConfig::new(24, 0x5708_c0de);
        let one = run_multicore_campaign(&config);
        config.threads = 2;
        let two = run_multicore_campaign(&config);
        config.threads = 5;
        let five = run_multicore_campaign(&config);
        assert_eq!(one, two, "thread count must not change results");
        assert_eq!(one, five, "thread count must not change results");
        // Golden pin: any drift in the RNG stream, the fault sampler, or
        // the executive's tick semantics moves these exact counts.
        assert_eq!(
            (
                one.crash_trials,
                one.escalated_trials,
                one.lock_failed_crash_trials,
                one.lock_deadlocks,
                one.lock_misses,
                one.escalation_events,
            ),
            (18, 6, 18, 122, 142, 24),
            "{one:?}"
        );
        assert_eq!(
            (
                one.leftrs_clean_trials,
                one.leftrs_max_retries,
                one.leftrs_max_retry_cost_us,
                one.retry_bound_breaches,
            ),
            (24, 1, 40, 0),
            "{one:?}"
        );
    }

    #[test]
    fn claims_hold_rejects_any_breach() {
        let mut r = MulticoreCampaignResult {
            trials: 2,
            crash_trials: 1,
            escalated_trials: 1,
            lock_failed_crash_trials: 1,
            lock_clean_escalated_trials: 1,
            leftrs_clean_trials: 2,
            certified_tasks: 4,
            ..MulticoreCampaignResult::default()
        };
        assert!(r.claims_hold());
        r.retry_bound_breaches = 1;
        assert!(!r.claims_hold());
    }
}
